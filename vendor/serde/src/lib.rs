//! Offline stand-in for the `serde` crate.
//!
//! The workspace builds in environments with no crates.io access, so the
//! serialization layer is vendored: a JSON-only [`Serialize`]/[`Deserialize`]
//! pair with `#[derive(Serialize, Deserialize)]` support (see the companion
//! `serde_derive` proc-macro crate) covering exactly the shapes the
//! experiments persist — named-field structs, newtype/tuple structs, and
//! unit-variant enums. The JSON encoding matches real serde_json for those
//! shapes (structs as objects, newtypes transparently, unit variants as
//! strings), so swapping the real crates back in is a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// A value that can write itself as compact JSON.
pub trait Serialize {
    /// Append this value's JSON encoding to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// A value that can reconstruct itself from a parsed [`json::JsonValue`].
pub trait Deserialize: Sized {
    /// Build the value, or explain why the JSON doesn't fit.
    fn deserialize_json(v: &json::JsonValue) -> Result<Self, json::JsonError>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &json::JsonValue) -> Result<Self, json::JsonError> {
                match v {
                    json::JsonValue::Num(s) => s
                        .parse::<$t>()
                        .map_err(|_| json::JsonError::msg(format!(
                            "number {s:?} does not fit {}", stringify!($t)
                        ))),
                    other => Err(json::JsonError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // Matches serde_json's behavior of refusing non-finite
                    // floats; null keeps the document well-formed.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &json::JsonValue) -> Result<Self, json::JsonError> {
                match v {
                    json::JsonValue::Num(s) => s
                        .parse::<$t>()
                        .map_err(|_| json::JsonError::msg(format!("bad float {s:?}"))),
                    other => Err(json::JsonError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(v: &json::JsonValue) -> Result<Self, json::JsonError> {
        match v {
            json::JsonValue::Bool(b) => Ok(*b),
            other => Err(json::JsonError::expected("bool", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        json::write_escaped(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        json::write_escaped(self, out);
    }
}

impl Deserialize for String {
    fn deserialize_json(v: &json::JsonValue) -> Result<Self, json::JsonError> {
        match v {
            json::JsonValue::Str(s) => Ok(s.clone()),
            other => Err(json::JsonError::expected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(v: &json::JsonValue) -> Result<Self, json::JsonError> {
        match v {
            json::JsonValue::Arr(items) => items.iter().map(T::deserialize_json).collect(),
            other => Err(json::JsonError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(v: &json::JsonValue) -> Result<Self, json::JsonError> {
        match v {
            json::JsonValue::Null => Ok(None),
            other => T::deserialize_json(other).map(Some),
        }
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_escaped(k.as_ref(), out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}
