//! The JSON data model behind the vendored serde stand-in: a parsed value
//! tree, a recursive-descent parser, string escaping, and a pretty printer.
//!
//! Numbers keep their source text (`Num(String)`) so `u64` round-trips are
//! exact — a lossy `f64` intermediate would corrupt cycle counts above 2^53.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its literal text for lossless integer round-trips.
    Num(String),
    /// A string (already unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }

    /// Write this value as indented JSON (two spaces per level).
    pub fn write_pretty(&self, depth: usize, out: &mut String) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(s) => out.push_str(s),
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Arr(items) if items.is_empty() => out.push_str("[]"),
            JsonValue::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.write_pretty(depth + 1, out);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            JsonValue::Obj(entries) if entries.is_empty() => out.push_str("{}"),
            JsonValue::Obj(entries) => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    pad(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(depth + 1, out);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
        }
    }
}

/// A JSON encode/decode error.
#[derive(Debug, Clone)]
pub struct JsonError(String);

impl JsonError {
    /// An error with a preformatted message.
    pub fn msg(m: impl Into<String>) -> JsonError {
        JsonError(m.into())
    }

    /// "expected X, found Y" for a mismatched value shape.
    pub fn expected(what: &str, found: &JsonValue) -> JsonError {
        JsonError(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// Deserialize one named field out of an object value.
pub fn field<T: crate::Deserialize>(v: &JsonValue, key: &str) -> Result<T, JsonError> {
    match v.get(key) {
        Some(fv) => {
            T::deserialize_json(fv).map_err(|e| JsonError(format!("field {key:?}: {}", e.0)))
        }
        None => match v {
            JsonValue::Obj(_) => Err(JsonError(format!("missing field {key:?}"))),
            other => Err(JsonError::expected("object", other)),
        },
    }
}

/// Append `s` to `out` as a quoted, escaped JSON string.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document.
pub fn parse(s: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::msg(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::msg(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError::msg(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::msg(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::msg("invalid utf-8 in number"))?;
        if text.is_empty() || text == "-" {
            return Err(JsonError::msg(format!("bad number at byte {start}")));
        }
        Ok(JsonValue::Num(text.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError::msg("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| JsonError::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::msg("invalid utf-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(JsonError::msg(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(entries));
                }
                _ => return Err(JsonError::msg(format!("bad object at byte {}", self.pos))),
            }
        }
    }
}
