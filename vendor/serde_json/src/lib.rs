//! Offline stand-in for `serde_json`, backed by the vendored `serde`.
//!
//! Provides the three entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`] — with the same output format as the
//! real crate for the supported shapes.

pub use serde::json::{JsonError as Error, JsonValue as Value};

/// A `serde_json`-compatible result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serialize `value` to an indented JSON string (two-space indent).
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    let compact = to_string(value)?;
    let parsed = serde::json::parse(&compact)?;
    let mut out = String::new();
    parsed.write_pretty(0, &mut out);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let v = serde::json::parse(s)?;
    T::deserialize_json(&v)
}
