//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset the workspace's benches use: [`Criterion`] with
//! `bench_function` and `sample_size`, [`Bencher::iter`], the
//! `criterion_group!`/`criterion_main!` macros, and [`black_box`]. Timing is
//! plain wall-clock sampling — median of `sample_size` samples, each sample
//! auto-scaled to run for at least ~2 ms — with no statistics machinery.
//!
//! CLI compatibility: `--test` runs every benchmark body exactly once (the
//! CI smoke mode, mirroring real criterion), a trailing free argument
//! filters benchmarks by substring, and all other harness flags are
//! accepted and ignored.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                a if a.starts_with('-') => {} // accept-and-ignore harness flags
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            sample_size: 20,
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut b);
        match b.report {
            None => println!("{name}: no measurement (bencher never iterated)"),
            Some(ns) if self.test_mode => {
                println!("{name}: ok (ran once in --test mode, {ns:.0} ns)");
            }
            Some(ns) => {
                println!(
                    "{name}: {} /iter (median of {} samples)",
                    fmt_ns(ns),
                    self.sample_size
                );
            }
        }
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Passed to each benchmark body; runs and times the measured closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    report: Option<f64>,
}

impl Bencher {
    /// Measure `f`, reporting median nanoseconds per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            let start = Instant::now();
            black_box(f());
            self.report = Some(start.elapsed().as_nanos() as f64);
            return;
        }
        // Calibrate: how many iterations fill ~2 ms?
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = start.elapsed();
            if dt >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.report = Some(samples[samples.len() / 2]);
    }
}

/// Group benchmark functions, with an optional shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
