//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use — the
//! [`Strategy`] trait with `prop_map`/`prop_recursive`/`boxed`, range and
//! tuple strategies, [`collection::vec`], [`any`], [`Just`], `prop_oneof!`,
//! and the `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! macros — over a deterministic per-test RNG. Differences from real
//! proptest, deliberately accepted:
//!
//! - **No shrinking**: a failing case reports the generated inputs verbatim.
//! - **Deterministic seeding**: cases derive from a hash of the test's path,
//!   so every run explores the same inputs (a feature for this repo, where
//!   reproducibility is the whole point).

use std::rc::Rc;

/// Deterministic splitmix64 generator, seeded per test and case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the test identified by `path`.
    pub fn for_case(path: &str, case: u32) -> TestRng {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection sampling to remove modulo bias.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// How a property-test case ends early.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the run aborts with this message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Execution settings for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.generate(rng)))
    }

    /// Build a recursive strategy: `f` maps a strategy for the inner value
    /// to a strategy for one more level of structure. `depth` bounds the
    /// recursion; `_size`/`_branch` are accepted for proptest signature
    /// compatibility but unused (no shrinking, so no size accounting).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = f(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                // Half leaves, half deeper structure at each level keeps
                // generated trees bounded and varied.
                if rng.below(2) == 0 {
                    l.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }));
        }
        cur
    }
}

/// A cloneable, type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `choices`; must be non-empty.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].generate(rng)
    }
}

/// Full-domain generation for primitive types (the `any::<T>()` entry).
pub trait ArbitraryValue {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced, wide dynamic range; full bit-pattern
        // generation would mostly produce NaNs and infinities.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — full-domain strategy for a primitive type.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String strategies from regex-like patterns, as in real proptest
/// (`src in ".{0,400}"`). Supports the subset the workspace uses: `.`,
/// literal characters, `\x` escapes, `[...]` character classes with ranges,
/// and `{m,n}` / `{n}` / `*` / `+` / `?` repetition.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;

    enum Atom {
        Dot,
        Class(Vec<(char, char)>),
        Lit(char),
    }

    pub fn generate(pat: &str, rng: &mut TestRng) -> String {
        let mut chars = pat.chars().peekable();
        let mut out = String::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Dot,
                '\\' => Atom::Lit(chars.next().expect("dangling escape in pattern")),
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let c = chars.next().expect("unterminated character class");
                        let c = match c {
                            ']' => break,
                            '\\' => chars.next().expect("dangling escape in class"),
                            c => c,
                        };
                        // `a-z` range when a dash follows and isn't the
                        // closing bracket; a literal otherwise.
                        if chars.peek() == Some(&'-') {
                            let mut ahead = chars.clone();
                            ahead.next();
                            match ahead.peek() {
                                Some(&end) if end != ']' => {
                                    chars.next();
                                    chars.next();
                                    ranges.push((c, end));
                                    continue;
                                }
                                _ => {}
                            }
                        }
                        ranges.push((c, c));
                    }
                    Atom::Class(ranges)
                }
                c => Atom::Lit(c),
            };
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad repetition"),
                            n.trim().parse().expect("bad repetition"),
                        ),
                        None => {
                            let n: u32 = spec.trim().parse().expect("bad repetition");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as u32;
            for _ in 0..n {
                out.push(pick(&atom, rng));
            }
        }
        out
    }

    fn pick(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Lit(c) => *c,
            Atom::Dot => {
                // Mostly printable ASCII, sometimes arbitrary code points —
                // enough hostile variety for parser-robustness properties.
                if rng.below(10) < 9 {
                    char::from_u32(0x20 + rng.below(0x5f) as u32).expect("printable ascii")
                } else {
                    loop {
                        if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                            return c;
                        }
                    }
                }
            }
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(a, b)| (*b as u64).saturating_sub(*a as u64) + 1)
                    .sum();
                let mut i = rng.below(total.max(1));
                for (a, b) in ranges {
                    let span = (*b as u64) - (*a as u64) + 1;
                    if i < span {
                        return char::from_u32(*a as u32 + i as u32).expect("class code point");
                    }
                    i -= span;
                }
                ranges.first().map(|(a, _)| *a).unwrap_or('?')
            }
        }
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};

    /// Anything usable as a length specification for [`vec`].
    pub trait SizeRange {
        /// Pick a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.generate(rng)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.generate(rng)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `sizes`.
    pub struct VecStrategy<S, R> {
        element: S,
        sizes: R,
    }

    /// A vector of values from `element`, sized by `sizes`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, sizes: R) -> VecStrategy<S, R> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.sizes.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test needs, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ArbitraryValue, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
        Union,
    };

    /// The `prop::` module alias used by `prop::collection::vec(..)`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform choice across strategy arms of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert inside a property; failure aborts the case with the inputs shown.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Define property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` header, then `#[test]` functions whose
/// arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let mut __inputs = ::std::string::String::new();
                    $(
                        let __value = $crate::Strategy::generate(&{ $strat }, &mut __rng);
                        __inputs.push_str(&format!(
                            "  {} = {:?}\n",
                            stringify!($pat),
                            &__value
                        ));
                        let $pat = __value;
                    )+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "proptest case {case} failed: {msg}\ninputs:\n{__inputs}"
                        ),
                    }
                }
            }
        )*
    };
}
