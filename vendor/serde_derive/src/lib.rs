//! Derive macros for the vendored serde stand-in.
//!
//! Supports exactly the item shapes the workspace serializes:
//!
//! - structs with named fields → JSON objects,
//! - tuple structs → transparent for one field (newtype), arrays otherwise,
//! - enums whose variants are all unit → JSON strings of the variant name.
//!
//! The parser walks the raw `proc_macro::TokenStream` directly (no `syn`),
//! which is enough because the supported grammar is small; unsupported
//! shapes (generics, data-carrying enum variants) produce a compile error
//! naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named { name: String, fields: Vec<String> },
    Tuple { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Skip `#[...]` attribute groups; returns the next significant token.
fn skip_attrs(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The bracket group of the attribute.
                iter.next();
            }
            _ => return,
        }
    }
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs(&mut iter);
        skip_vis(&mut iter);
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("serde_derive stub: expected field name, found {tt}");
        };
        fields.push(name.to_string());
        // Expect ':', then consume the type up to a top-level comma
        // (tracking angle-bracket depth so `Vec<(A, B)>` style types with
        // commas inside generics don't split early).
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stub: expected ':', found {other:?}"),
        }
        let mut angle = 0i32;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn parse_tuple_arity(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut segments = 0usize;
    let mut seen_tokens = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                seen_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                seen_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                segments += 1;
                seen_tokens = false;
            }
            _ => seen_tokens = true,
        }
    }
    if seen_tokens {
        segments += 1;
    }
    segments
}

fn parse_unit_variants(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut iter);
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("serde_derive stub: expected variant name, found {tt}");
        };
        variants.push(name.to_string());
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive stub: data-carrying enum variants are not supported \
                 (variant {name})"
            ),
            Some(other) => panic!("serde_derive stub: unexpected token {other}"),
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    loop {
        skip_attrs(&mut iter);
        skip_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => {
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("serde_derive stub: expected struct name, found {other:?}"),
                };
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Shape::Named {
                            name,
                            fields: parse_named_fields(g.stream()),
                        };
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        return Shape::Tuple {
                            name,
                            arity: parse_tuple_arity(g.stream()),
                        };
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        panic!("serde_derive stub: generic types are not supported ({name})")
                    }
                    other => {
                        panic!("serde_derive stub: unsupported struct body for {name}: {other:?}")
                    }
                }
            }
            Some(TokenTree::Ident(kw)) if kw.to_string() == "enum" => {
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("serde_derive stub: expected enum name, found {other:?}"),
                };
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Shape::UnitEnum {
                            name,
                            variants: parse_unit_variants(g.stream()),
                        };
                    }
                    other => {
                        panic!("serde_derive stub: unsupported enum body for {name}: {other:?}")
                    }
                }
            }
            Some(_) => continue,
            None => panic!("serde_derive stub: no struct or enum found"),
        }
    }
}

/// `#[derive(Serialize)]` — JSON-writing impl for the vendored serde.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let code = match shape {
        Shape::Named { name, fields } => {
            let mut body = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n\
                     ::serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            body.push_str("out.push('}');");
            impl_serialize(&name, &body)
        }
        Shape::Tuple { name, arity: 1 } => {
            impl_serialize(&name, "::serde::Serialize::serialize_json(&self.0, out);")
        }
        Shape::Tuple { name, arity } => {
            let mut body = String::from("out.push('[');\n");
            for i in 0..arity {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "::serde::Serialize::serialize_json(&self.{i}, out);\n"
                ));
            }
            body.push_str("out.push(']');");
            impl_serialize(&name, &body)
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => out.push_str(\"\\\"{v}\\\"\"),\n"))
                .collect();
            impl_serialize(&name, &format!("match self {{ {arms} }}"))
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// `#[derive(Deserialize)]` — JSON-reading impl for the vendored serde.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let code = match shape {
        Shape::Named { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::json::field(v, \"{f}\")?,\n"))
                .collect();
            impl_deserialize(&name, &format!("Ok({name} {{ {inits} }})"))
        }
        Shape::Tuple { name, arity: 1 } => impl_deserialize(
            &name,
            &format!("Ok({name}(::serde::Deserialize::deserialize_json(v)?))"),
        ),
        Shape::Tuple { name, arity } => {
            let elems: String = (0..arity)
                .map(|i| format!("::serde::Deserialize::deserialize_json(&items[{i}])?,\n"))
                .collect();
            impl_deserialize(
                &name,
                &format!(
                    "match v {{\n\
                       ::serde::json::JsonValue::Arr(items) if items.len() == {arity} =>\n\
                         Ok({name}({elems})),\n\
                       other => Err(::serde::json::JsonError::expected(\"array of {arity}\", other)),\n\
                     }}"
                ),
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Some(\"{v}\") => Ok({name}::{v}),\n"))
                .collect();
            impl_deserialize(
                &name,
                &format!(
                    "match v.as_str() {{\n\
                       {arms}\n\
                       _ => Err(::serde::json::JsonError::expected(\"variant of {name}\", v)),\n\
                     }}"
                ),
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
           fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
             {body}\n\
           }}\n\
         }}"
    )
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
           fn deserialize_json(v: &::serde::json::JsonValue)\n\
             -> ::std::result::Result<Self, ::serde::json::JsonError> {{\n\
             {body}\n\
           }}\n\
         }}"
    )
}
