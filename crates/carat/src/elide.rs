//! Guard elision: remove guards made redundant by an earlier guard.
//!
//! §IV-A: "modern code analysis techniques can provide the information
//! necessary to aggregate and hoist protection and tracking code, thus
//! taking it out of the critical path in most instances."
//!
//! A guard of register `r` is redundant when, on *every* path reaching it,
//! an equivalent guard of `r` has executed with no intervening redefinition
//! of `r`, no free, and no call (frees/calls may invalidate any guarantee).
//! This is a forward must-dataflow: the per-block state is the pair of
//! register sets (guarded-for-read, guarded-for-write); joins intersect.
//! A write guard implies readability (tracked allocations are readable
//! unless protected read-only — and protection changes are modelled as
//! calls).

use crate::guards::flag_value;
use interweave_ir::analysis::{Cfg, DefInfo};
use interweave_ir::inst::{Inst, Intrinsic};
use interweave_ir::passes::{Pass, PassStats};
use interweave_ir::Module;

/// The elision pass. Run after injection (and hoisting, if enabled).
#[derive(Debug, Default, Clone)]
pub struct ElideGuards;

#[derive(Clone, PartialEq)]
struct GuardSet {
    read: Vec<bool>,
    write: Vec<bool>,
}

impl GuardSet {
    fn empty(n: usize) -> GuardSet {
        GuardSet {
            read: vec![false; n],
            write: vec![false; n],
        }
    }

    fn intersect(&mut self, other: &GuardSet) {
        for (a, b) in self.read.iter_mut().zip(&other.read) {
            *a &= b;
        }
        for (a, b) in self.write.iter_mut().zip(&other.write) {
            *a &= b;
        }
    }

    fn clear(&mut self) {
        self.read.iter_mut().for_each(|b| *b = false);
        self.write.iter_mut().for_each(|b| *b = false);
    }

    fn kill(&mut self, r: u32) {
        self.read[r as usize] = false;
        self.write[r as usize] = false;
    }
}

impl Pass for ElideGuards {
    fn name(&self) -> &'static str {
        "carat-elide"
    }

    fn run(&mut self, m: &mut Module) -> PassStats {
        let mut stats = PassStats::default();
        for f in &mut m.funcs {
            let n = f.n_regs;
            if n == 0 || f.blocks.is_empty() {
                continue;
            }
            let cfg = Cfg::build(f);
            let defs = DefInfo::compute(f);

            // Transfer function over one block from a given entry state.
            // When `elide` is set, redundant guards are recorded in `kill`.
            let apply = |state: &mut GuardSet,
                         bi: usize,
                         f: &interweave_ir::Function,
                         mut on_elide: Option<&mut Vec<usize>>| {
                for (ii, inst) in f.blocks[bi].insts.iter().enumerate() {
                    match inst {
                        Inst::Intr(_, Intrinsic::CaratGuard, args)
                        | Inst::Intr(_, Intrinsic::CaratGuardRange, args) => {
                            let a = args[0];
                            // A guard only provides a *lasting* guarantee if
                            // its register has a single static definition;
                            // otherwise another def may change the value on
                            // some path this analysis folded together.
                            let single = defs.is_single_def(a);
                            let is_write = flag_value(f, &defs, args[1]) == Some(1);
                            let covered = if is_write {
                                state.write[a.0 as usize]
                            } else {
                                state.read[a.0 as usize]
                            };
                            if covered {
                                if let Some(kill) = on_elide.as_deref_mut() {
                                    kill.push(ii);
                                }
                            } else if single {
                                state.read[a.0 as usize] = true;
                                if is_write {
                                    state.write[a.0 as usize] = true;
                                }
                            }
                        }
                        Inst::Intr(_, Intrinsic::CaratTrackFree, _) | Inst::Free(_) => {
                            state.clear();
                        }
                        Inst::Call(d, _, _) => {
                            state.clear();
                            if let Some(d) = d {
                                state.kill(d.0);
                            }
                        }
                        _ => {
                            if let Some(d) = inst.def() {
                                state.kill(d.0);
                            }
                        }
                    }
                }
            };

            // Fixpoint over reachable blocks in RPO. `outs[b] = None` means
            // "not yet computed" (⊤ for the must-intersection).
            let mut outs: Vec<Option<GuardSet>> = vec![None; f.blocks.len()];
            let mut changed = true;
            while changed {
                changed = false;
                for &b in &cfg.rpo {
                    let bi = b.index();
                    let mut state = if bi == 0 {
                        GuardSet::empty(n)
                    } else {
                        // Intersect over computed predecessors; if none are
                        // computed yet, skip (state unknown).
                        let mut acc: Option<GuardSet> = None;
                        for &p in &cfg.preds[bi] {
                            if let Some(o) = &outs[p.index()] {
                                match &mut acc {
                                    None => acc = Some(o.clone()),
                                    Some(a) => a.intersect(o),
                                }
                            }
                        }
                        match acc {
                            Some(a) => a,
                            None => continue,
                        }
                    };
                    apply(&mut state, bi, f, None);
                    if outs[bi].as_ref() != Some(&state) {
                        outs[bi] = Some(state);
                        changed = true;
                    }
                }
            }

            // Rewrite: recompute each block's entry state from final outs
            // and drop redundant guards.
            for &b in &cfg.rpo {
                let bi = b.index();
                let mut state = if bi == 0 {
                    GuardSet::empty(n)
                } else {
                    let mut acc: Option<GuardSet> = None;
                    for &p in &cfg.preds[bi] {
                        if let Some(o) = &outs[p.index()] {
                            match &mut acc {
                                None => acc = Some(o.clone()),
                                Some(a) => a.intersect(o),
                            }
                        }
                    }
                    match acc {
                        Some(a) => a,
                        None => continue,
                    }
                };
                let mut kills = Vec::new();
                apply(&mut state, bi, f, Some(&mut kills));
                if !kills.is_empty() {
                    stats.bump("guards_elided", kills.len() as u64);
                    let kill_set: std::collections::HashSet<usize> = kills.into_iter().collect();
                    let mut idx = 0;
                    f.blocks[bi].insts.retain(|_| {
                        let keep = !kill_set.contains(&idx);
                        idx += 1;
                        keep
                    });
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guards::InjectGuards;
    use interweave_ir::verify::assert_valid;
    use interweave_ir::{CmpOp, FunctionBuilder};

    fn guards_in(m: &Module) -> usize {
        m.funcs
            .iter()
            .map(|f| f.count_insts(|i| matches!(i, Inst::Intr(_, Intrinsic::CaratGuard, _))))
            .sum()
    }

    #[test]
    fn second_guard_on_same_register_elided() {
        // load p; load p+8 — both guard `p`; the second is redundant.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        let _a = fb.load(p, 0);
        let _b = fb.load(p, 8);
        fb.ret(None);
        m.add(fb.finish());
        InjectGuards.run(&mut m);
        assert_eq!(guards_in(&m), 2);
        let stats = ElideGuards.run(&mut m);
        assert_valid(&m);
        assert_eq!(stats.get("guards_elided"), 1);
        assert_eq!(guards_in(&m), 1);
    }

    #[test]
    fn write_guard_covers_subsequent_read() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        let k = fb.const_i(3);
        fb.store(p, 0, k); // write guard
        let _v = fb.load(p, 0); // read covered by write guard
        fb.ret(None);
        m.add(fb.finish());
        InjectGuards.run(&mut m);
        ElideGuards.run(&mut m);
        assert_eq!(guards_in(&m), 1);
    }

    #[test]
    fn read_guard_does_not_cover_write() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        let v = fb.load(p, 0); // read guard
        fb.store(p, 8, v); // write guard must survive
        fb.ret(None);
        m.add(fb.finish());
        InjectGuards.run(&mut m);
        ElideGuards.run(&mut m);
        assert_eq!(guards_in(&m), 2);
    }

    #[test]
    fn redefinition_kills_the_guarantee() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        let q = fb.alloc(sz);
        let cur = fb.mov(p);
        let _a = fb.load(cur, 0);
        fb.mov_to(cur, q); // redefinition
        let _b = fb.load(cur, 0); // must be re-guarded
        fb.ret(None);
        m.add(fb.finish());
        InjectGuards.run(&mut m);
        let stats = ElideGuards.run(&mut m);
        assert_eq!(stats.get("guards_elided"), 0);
        assert_eq!(guards_in(&m), 2);
    }

    #[test]
    fn free_invalidates_guards() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        let q = fb.alloc(sz);
        let _a = fb.load(p, 0);
        fb.free(q); // any free clears the guarantee (conservative)
        let _b = fb.load(p, 0);
        fb.ret(None);
        m.add(fb.finish());
        InjectGuards.run(&mut m);
        let stats = ElideGuards.run(&mut m);
        assert_eq!(stats.get("guards_elided"), 0);
    }

    #[test]
    fn joins_intersect_across_diamond() {
        // Guard only on one arm → join must NOT treat p as guarded.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 1);
        let c = fb.param(0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        let zero = fb.const_i(0);
        let cond = fb.cmp(CmpOp::Gt, c, zero);
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        fb.cond_br(cond, t, e);
        fb.switch_to(t);
        let _a = fb.load(p, 0); // guarded here only
        fb.br(j);
        fb.switch_to(e);
        fb.br(j);
        fb.switch_to(j);
        let _b = fb.load(p, 0); // must keep its guard
        fb.ret(None);
        m.add(fb.finish());
        InjectGuards.run(&mut m);
        let stats = ElideGuards.run(&mut m);
        assert_eq!(stats.get("guards_elided"), 0);
        assert_eq!(guards_in(&m), 2);
    }

    #[test]
    fn guard_survives_across_loop_iterations_when_invariant() {
        // Guard before the loop (both arms of the backedge carry it) —
        // the in-loop guard of the same single-def register elides.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 1);
        let n = fb.param(0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        let _warm = fb.load(p, 0); // guard established in entry
        let zero = fb.const_i(0);
        let i = fb.mov(zero);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::Lt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let _v = fb.load(p, 0); // elidable: p guarded on all paths
        let one = fb.const_i(1);
        fb.bin_to(i, interweave_ir::BinOp::Add, i, one);
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(None);
        m.add(fb.finish());
        InjectGuards.run(&mut m);
        let stats = ElideGuards.run(&mut m);
        assert_valid(&m);
        assert_eq!(stats.get("guards_elided"), 1);
        assert_eq!(guards_in(&m), 1);
    }
}
