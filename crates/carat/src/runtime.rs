//! The CARAT tracking/protection runtime.
//!
//! The transformed code calls into this runtime: guards validate accesses
//! against the allocation map, tracking calls keep the map current, and
//! escape tracking records which memory words hold pointers. All of it runs
//! with *physical* addresses — there is no translation hardware in the loop,
//! which is the point (§IV-A: "all code runs using physical addresses ...
//! frees hardware architects from constraints").

use interweave_ir::interp::{Allocation, HookAction, Memory, RuntimeHooks, Trap};
use interweave_ir::types::Val;
use interweave_ir::Intrinsic;
use std::cell::Cell;
use std::collections::BTreeMap;

/// Cycle costs of the runtime's entry points (the numbers the overhead
/// table ultimately measures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardCosts {
    /// One object guard: region-table lookup, usually cache-hot.
    pub guard: u64,
    /// One hoisted range/object check in a preheader.
    pub guard_range: u64,
    /// Recording a new allocation.
    pub track_alloc: u64,
    /// Recording a free.
    pub track_free: u64,
    /// Recording a pointer escape.
    pub track_escape: u64,
}

impl Default for GuardCosts {
    fn default() -> GuardCosts {
        GuardCosts {
            guard: 3,
            guard_range: 5,
            track_alloc: 40,
            track_free: 20,
            track_escape: 4,
        }
    }
}

/// One tracked allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Tracked {
    size: u64,
    writable: bool,
}

/// Counters the experiments report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CaratStats {
    /// Object guards executed.
    pub guards: u64,
    /// Range guards executed.
    pub range_guards: u64,
    /// Allocations tracked.
    pub allocs: u64,
    /// Frees tracked.
    pub frees: u64,
    /// Escapes recorded.
    pub escapes: u64,
    /// Protection faults raised.
    pub faults: u64,
    /// Escape audits performed ([`CaratRuntime::audit_escapes`]).
    pub audits: u64,
    /// Corrupted escape words the audits found.
    pub corruptions: u64,
}

/// One corrupted escape word found by [`CaratRuntime::audit_escapes`]: the
/// runtime's record of what `holder` stores disagrees with memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EscapeCorruption {
    /// Address of the word holding the escaped pointer.
    pub holder: u64,
    /// The pointer value the runtime recorded at escape time.
    pub expected: u64,
    /// The value actually in memory now.
    pub found: u64,
}

/// The runtime: allocation map, permissions, escape records.
#[derive(Debug, Clone, Default)]
pub struct CaratRuntime {
    table: BTreeMap<u64, Tracked>,
    /// Last allocation a guard resolved, checked before the tree (guards
    /// are strongly repetitive: a loop typically hammers one allocation).
    /// Invalidated whenever the cached entry could go stale: free,
    /// relocation, and permission changes. The costs charged per guard are
    /// fixed, so the cache changes wall-clock only, never simulated cycles.
    last_hit: Cell<Option<(u64, Tracked)>>,
    /// Escape records: holder-word address → stored pointer value (the
    /// runtime's view; defragmentation cross-checks it against interpreter
    /// provenance).
    escapes: BTreeMap<u64, u64>,
    /// Quarantined regions `(base, size)`: frames a corruption was detected
    /// in, withdrawn from service. Guards deny access to them. Empty in a
    /// healthy run, so the per-guard check is a single `is_empty` branch.
    quarantined: Vec<(u64, u64)>,
    /// Costs charged per entry point.
    pub costs: GuardCosts,
    /// Execution counters.
    pub stats: CaratStats,
}

impl CaratRuntime {
    /// A fresh runtime with default costs.
    pub fn new() -> CaratRuntime {
        CaratRuntime::default()
    }

    /// The tracked allocation containing `addr` (last-hit cache first).
    fn containing(&self, addr: u64) -> Option<(u64, Tracked)> {
        if let Some((b, t)) = self.last_hit.get() {
            if addr.wrapping_sub(b) < t.size {
                return Some((b, t));
            }
        }
        let hit = self
            .table
            .range(..=addr)
            .next_back()
            .map(|(&b, &t)| (b, t))
            .filter(|&(b, t)| addr < b + t.size);
        if hit.is_some() {
            self.last_hit.set(hit);
        }
        hit
    }

    /// Number of tracked allocations.
    pub fn n_tracked(&self) -> usize {
        self.table.len()
    }

    /// Mark the allocation based at `base` read-only (protection, e.g. for
    /// attested code or kernel data). Returns false if untracked.
    pub fn protect_readonly(&mut self, base: u64) -> bool {
        match self.table.get_mut(&base) {
            Some(t) => {
                t.writable = false;
                self.invalidate_cached(base);
                true
            }
            None => false,
        }
    }

    /// Restore write permission.
    pub fn unprotect(&mut self, base: u64) -> bool {
        match self.table.get_mut(&base) {
            Some(t) => {
                t.writable = true;
                self.invalidate_cached(base);
                true
            }
            None => false,
        }
    }

    /// Drop the guard cache if it holds the entry based at `base`.
    fn invalidate_cached(&self, base: u64) {
        if self.last_hit.get().is_some_and(|(b, _)| b == base) {
            self.last_hit.set(None);
        }
    }

    /// Relocate tracking state after a defragmentation move.
    pub fn relocate(&mut self, old_base: u64, new_base: u64) {
        self.invalidate_cached(old_base);
        if let Some(t) = self.table.remove(&old_base) {
            // Escape records whose *stored value* pointed into the moved
            // allocation are updated (mirrors the patching the memory layer
            // performed).
            let size = t.size;
            for (_, v) in self.escapes.iter_mut() {
                if *v >= old_base && *v < old_base + size {
                    *v = new_base + (*v - old_base);
                }
            }
            // Holder words inside the moved allocation also move.
            let holders: Vec<(u64, u64)> = self
                .escapes
                .range(old_base..old_base + size)
                .map(|(&k, &v)| (k, v))
                .collect();
            for (k, v) in holders {
                self.escapes.remove(&k);
                self.escapes.insert(new_base + (k - old_base), v);
            }
            self.table.insert(new_base, t);
        }
    }

    /// Escape records (for tests and defragmentation validation).
    pub fn escape_count(&self) -> usize {
        self.escapes.len()
    }

    /// Holder-word addresses of all escape records, in address order
    /// (deterministic — the fault plane picks bit-flip sites from this).
    pub fn escape_holders(&self) -> Vec<u64> {
        self.escapes.keys().copied().collect()
    }

    /// Cross-check every escape record against memory: the runtime knows
    /// what pointer each holder word stores, so a silent corruption (a
    /// bit-flip that hardware ECC missed) shows up as a mismatch. This is
    /// CARAT's software-managed-memory advantage (§IV-A): the layered stack
    /// has no record of what memory *should* contain, the interwoven
    /// runtime does. Deterministic: records are visited in address order.
    pub fn audit_escapes(&mut self, mem: &Memory) -> Vec<EscapeCorruption> {
        self.stats.audits += 1;
        let mut found = Vec::new();
        for (&holder, &expected) in self.escapes.iter() {
            let actual = match mem.load(holder) {
                Ok((v, _prov)) => v.as_ptr(),
                Err(_) => continue, // holder itself unmapped; frees race audits
            };
            if actual != expected {
                found.push(EscapeCorruption {
                    holder,
                    expected,
                    found: actual,
                });
            }
        }
        self.stats.corruptions += found.len() as u64;
        found
    }

    /// Withdraw `(base, size)` from service: subsequent guards covering any
    /// part of it fault. Used after a corrupted allocation is relocated so
    /// the damaged frame is never handed out or validated again.
    pub fn quarantine(&mut self, base: u64, size: u64) {
        self.invalidate_cached(base);
        self.quarantined.push((base, size));
    }

    /// Number of quarantined regions.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// Publish this runtime's counters into `sink`'s registry as gauges
    /// (idempotent: re-publishing overwrites with current values).
    pub fn publish_telemetry(&self, sink: &interweave_core::telemetry::Sink) {
        use interweave_core::telemetry::{Key, Layer, Unit};
        const KEYS: [Key; 9] = [
            Key::new("carat.guards", Layer::Runtime, Unit::Count),
            Key::new("carat.range_guards", Layer::Runtime, Unit::Count),
            Key::new("carat.allocs", Layer::Runtime, Unit::Count),
            Key::new("carat.frees", Layer::Runtime, Unit::Count),
            Key::new("carat.escapes", Layer::Runtime, Unit::Count),
            Key::new("carat.faults", Layer::Runtime, Unit::Count),
            Key::new("carat.audits", Layer::Runtime, Unit::Count),
            Key::new("carat.corruptions", Layer::Runtime, Unit::Count),
            Key::new("carat.quarantined", Layer::Runtime, Unit::Count),
        ];
        let s = &self.stats;
        let vals = [
            s.guards,
            s.range_guards,
            s.allocs,
            s.frees,
            s.escapes,
            s.faults,
            s.audits,
            s.corruptions,
            self.quarantined.len() as u64,
        ];
        for (key, v) in KEYS.iter().zip(vals) {
            sink.gauge(key, 0, v);
        }
    }

    fn check(&mut self, addr: u64, write: bool) -> Result<(), Trap> {
        // Healthy runs take one not-taken branch here; only after a
        // quarantine does the scan run at all.
        if !self.quarantined.is_empty()
            && self
                .quarantined
                .iter()
                .any(|&(b, s)| addr.wrapping_sub(b) < s)
        {
            self.stats.faults += 1;
            return Err(Trap::ProtectionFault { addr });
        }
        match self.containing(addr) {
            Some((_, t)) if !write || t.writable => Ok(()),
            _ => {
                self.stats.faults += 1;
                Err(Trap::ProtectionFault { addr })
            }
        }
    }
}

impl RuntimeHooks for CaratRuntime {
    fn intrinsic(
        &mut self,
        which: Intrinsic,
        args: &[Val],
        mem: &mut Memory,
        now: u64,
    ) -> HookAction {
        match which {
            Intrinsic::CaratGuard => {
                self.stats.guards += 1;
                let addr = args[0].as_ptr();
                let write = args.get(1).map(|v| v.as_i() == 1).unwrap_or(false);
                match self.check(addr, write) {
                    Ok(()) => HookAction::Continue {
                        value: None,
                        cycles: self.costs.guard,
                    },
                    Err(t) => HookAction::Trap(t),
                }
            }
            Intrinsic::CaratGuardRange => {
                self.stats.range_guards += 1;
                let base = args[0].as_ptr();
                let write = args.get(1).map(|v| v.as_i() == 1).unwrap_or(false);
                match self.check(base, write) {
                    Ok(()) => HookAction::Continue {
                        value: None,
                        cycles: self.costs.guard_range,
                    },
                    Err(t) => HookAction::Trap(t),
                }
            }
            Intrinsic::CaratTrackAlloc => {
                self.stats.allocs += 1;
                // The on_alloc hook already recorded ground truth; the
                // intrinsic charges the runtime's bookkeeping cost.
                HookAction::Continue {
                    value: None,
                    cycles: self.costs.track_alloc,
                }
            }
            Intrinsic::CaratTrackFree => {
                self.stats.frees += 1;
                HookAction::Continue {
                    value: None,
                    cycles: self.costs.track_free,
                }
            }
            Intrinsic::CaratTrackEscape => {
                self.stats.escapes += 1;
                let value = args[0].as_ptr();
                // The instrumentation hands us the holder's *base* register;
                // the store itself may have landed at base + offset. The
                // store has already executed when this intrinsic runs, so
                // locate the exact word now holding `value` within the
                // holder allocation and key the ledger by that address
                // (falling back to the base for out-of-map holders).
                let base = args[1].as_ptr();
                let holder = mem
                    .containing(base)
                    .and_then(|a| {
                        (a.base..a.base + a.size).step_by(8).find(|&addr| {
                            matches!(mem.load(addr),
                                     Ok((Val::I(v), _)) if v as u64 == value)
                        })
                    })
                    .unwrap_or(base);
                self.escapes.insert(holder, value);
                HookAction::Continue {
                    value: None,
                    cycles: self.costs.track_escape,
                }
            }
            Intrinsic::Yield => HookAction::Yield { cycles: 0 },
            Intrinsic::ReadTimer => HookAction::Continue {
                value: Some(Val::I(now as i64)),
                cycles: 1,
            },
            _ => HookAction::Continue {
                value: None,
                cycles: 0,
            },
        }
    }

    fn on_alloc(&mut self, a: Allocation) {
        let t = Tracked {
            size: a.size,
            writable: true,
        };
        self.table.insert(a.base, t);
        // The guards most likely to run next target the fresh allocation.
        self.last_hit.set(Some((a.base, t)));
    }

    fn on_free(&mut self, a: Allocation) {
        self.invalidate_cached(a.base);
        self.table.remove(&a.base);
        // Drop escape records held inside the freed region.
        let keys: Vec<u64> = self
            .escapes
            .range(a.base..a.base + a.size)
            .map(|(&k, _)| k)
            .collect();
        for k in keys {
            self.escapes.remove(&k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument;
    use interweave_ir::interp::{ExecStatus, Interp, InterpConfig};
    use interweave_ir::{FunctionBuilder, Module};

    #[test]
    fn guard_passes_on_tracked_memory_and_counts() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        let _ = fb.load(p, 0);
        fb.ret(None);
        m.add(fb.finish());
        instrument(&mut m, false);

        let mut rt = CaratRuntime::new();
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, interweave_ir::FuncId(0), &[]);
        it.run_to_completion(&m, &mut rt);
        assert_eq!(rt.stats.guards, 1);
        assert_eq!(rt.stats.allocs, 1);
        assert_eq!(rt.stats.faults, 0);
    }

    #[test]
    fn guard_faults_on_wild_pointer_before_the_access() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 0);
        let bogus = fb.const_i(0x6666_6666);
        let _ = fb.load(bogus, 0);
        fb.ret(None);
        m.add(fb.finish());
        instrument(&mut m, false);

        let mut rt = CaratRuntime::new();
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, interweave_ir::FuncId(0), &[]);
        match it.run(&m, &mut rt, u64::MAX / 4) {
            ExecStatus::Trapped(Trap::ProtectionFault { addr }) => {
                assert_eq!(addr, 0x6666_6666)
            }
            other => panic!("expected guard fault, got {other:?}"),
        }
        assert_eq!(rt.stats.faults, 1);
        // Zero loads executed: the guard fired *before* the access.
        assert_eq!(it.stats.loads, 0);
    }

    #[test]
    fn readonly_protection_blocks_writes_but_not_reads() {
        // Program: read a[0]; write a[0] — with `a` protected read-only the
        // write guard must fault.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 1);
        let a = fb.param(0);
        let v = fb.load(a, 0);
        fb.store(a, 0, v);
        fb.ret(None);
        m.add(fb.finish());
        instrument(&mut m, false);

        let mut rt = CaratRuntime::new();
        let mut it = Interp::new(InterpConfig::default());
        // Pre-create the allocation through the interpreter's memory so the
        // runtime tracks it, then protect it.
        let alloc = it.mem.alloc(64).unwrap();
        rt.on_alloc(alloc);
        assert!(rt.protect_readonly(alloc.base));

        it.start(&m, interweave_ir::FuncId(0), &[Val::I(alloc.base as i64)]);
        match it.run(&m, &mut rt, u64::MAX / 4) {
            ExecStatus::Trapped(Trap::ProtectionFault { addr }) => {
                assert_eq!(addr, alloc.base)
            }
            other => panic!("expected write fault, got {other:?}"),
        }
        // The read executed; the write did not.
        assert_eq!(it.stats.loads, 1);
        assert_eq!(it.stats.stores, 0);

        // Unprotect and re-run: completes.
        assert!(rt.unprotect(alloc.base));
        it.start(&m, interweave_ir::FuncId(0), &[Val::I(alloc.base as i64)]);
        assert!(matches!(
            it.run(&m, &mut rt, u64::MAX / 4),
            ExecStatus::Done(None)
        ));
    }

    #[test]
    fn escape_records_accumulate_and_die_with_frees() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 0);
        let sz = fb.const_i(64);
        let holder = fb.alloc(sz);
        let target = fb.alloc(sz);
        fb.store(holder, 0, target); // escape
        fb.free(holder);
        fb.ret(None);
        m.add(fb.finish());
        instrument(&mut m, false);

        let mut rt = CaratRuntime::new();
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, interweave_ir::FuncId(0), &[]);
        it.run_to_completion(&m, &mut rt);
        assert_eq!(rt.stats.escapes, 1);
        // The holder was freed, so the record is gone.
        assert_eq!(rt.escape_count(), 0);
    }

    #[test]
    fn guard_cache_respects_permission_changes_and_relocation() {
        let mut rt = CaratRuntime::new();
        let mut it = Interp::new(InterpConfig::default());
        let a = it.mem.alloc(64).unwrap();
        rt.on_alloc(a);

        // Warm the cache with a passing write check, then flip permissions:
        // the cached entry must not mask the change.
        assert!(rt.check(a.base, true).is_ok());
        assert!(rt.protect_readonly(a.base));
        assert!(rt.check(a.base, true).is_err());
        assert!(rt.check(a.base, false).is_ok());
        assert!(rt.unprotect(a.base));
        assert!(rt.check(a.base, true).is_ok());

        // Relocation: the old base stops validating immediately, the new
        // base validates.
        let (old, new) = it.mem.move_allocation(a.id).expect("live");
        rt.relocate(old, new);
        assert!(rt.check(old, false).is_err());
        assert!(rt.check(new, false).is_ok());
    }

    #[test]
    fn escape_audit_detects_silent_bit_flip() {
        let mut rt = CaratRuntime::new();
        let mut it = Interp::new(InterpConfig::default());
        let holder = it.mem.alloc(64).unwrap();
        let target = it.mem.alloc(64).unwrap();
        rt.on_alloc(holder);
        rt.on_alloc(target);
        // Record the escape both in memory and in the runtime's ledger.
        it.mem
            .store(holder.base, Val::I(target.base as i64), Some(target.id))
            .unwrap();
        rt.escapes.insert(holder.base, target.base);
        // A clean audit finds nothing.
        assert!(rt.audit_escapes(&it.mem).is_empty());
        // Flip a bit under the runtime's feet: the next audit pinpoints the
        // holder, the recorded value, and the corrupted one.
        let (old, new) = it.mem.flip_bit(holder.base, 5).unwrap();
        let bad = rt.audit_escapes(&it.mem);
        assert_eq!(
            bad,
            vec![EscapeCorruption {
                holder: holder.base,
                expected: old as u64,
                found: new as u64,
            }]
        );
        assert_eq!(rt.stats.audits, 2);
        assert_eq!(rt.stats.corruptions, 1);
    }

    #[test]
    fn quarantined_region_faults_all_guards() {
        let mut rt = CaratRuntime::new();
        let mut it = Interp::new(InterpConfig::default());
        let a = it.mem.alloc(64).unwrap();
        rt.on_alloc(a);
        assert!(rt.check(a.base + 8, false).is_ok());
        rt.quarantine(a.base, 64);
        assert!(rt.check(a.base + 8, false).is_err());
        assert!(rt.check(a.base, true).is_err());
        assert_eq!(rt.quarantined_count(), 1);
    }

    #[test]
    fn stale_pointer_after_free_faults() {
        // p freed, then accessed → the guard (not the hardware) catches it.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        fb.free(p);
        let _ = fb.load(p, 0);
        fb.ret(None);
        m.add(fb.finish());
        instrument(&mut m, false);

        let mut rt = CaratRuntime::new();
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, interweave_ir::FuncId(0), &[]);
        assert!(matches!(
            it.run(&m, &mut rt, u64::MAX / 4),
            ExecStatus::Trapped(Trap::ProtectionFault { .. })
        ));
    }
}
