//! PIK: process-in-kernel via separate compilation and attestation.
//!
//! §IV-A (enhanced CARAT): "a Linux user-level program can be compiled,
//! transformed, linked, and cryptographically attested such that it can run
//! as a part of Nautilus, at kernel-level, using physical addresses, in a
//! simulacrum of a process." The kernel has no hardware protection, so
//! admission rests on two checks: the module's content hash matches an
//! attestation produced by the trusted compiler (no post-compilation
//! tampering), and the module is fully instrumented (defence in depth: all
//! memory operations are guarded/tracked).

use crate::instrument;
use crate::runtime::CaratRuntime;
use interweave_ir::inst::{Inst, Intrinsic};
use interweave_ir::interp::{ExecStatus, Interp, InterpConfig};
use interweave_ir::types::{FuncId, Val};
use interweave_ir::Module;
use std::collections::HashSet;

/// The attestation token accompanying a compiled module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attestation {
    /// Content hash of the transformed module, signed (by construction) by
    /// the trusted compiler.
    pub hash: u64,
}

/// Why admission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The module's hash does not match the presented attestation
    /// (tampered after attestation).
    HashMismatch,
    /// The attestation is not from this system's trusted compiler.
    NotAttested,
    /// The module is not fully instrumented (an unguarded memory operation
    /// exists).
    NotInstrumented,
}

/// Static check: every memory access sits in a function that carries
/// guards, and every allocation/free is tracked.
pub fn is_fully_instrumented(m: &Module) -> bool {
    for f in &m.funcs {
        let has_access = f
            .blocks
            .iter()
            .any(|b| b.insts.iter().any(|i| i.is_mem_access()));
        let has_guard = f.blocks.iter().any(|b| {
            b.insts.iter().any(|i| {
                matches!(
                    i,
                    Inst::Intr(_, Intrinsic::CaratGuard | Intrinsic::CaratGuardRange, _)
                )
            })
        });
        if has_access && !has_guard {
            return false;
        }
        // Every Alloc must be immediately followed by tracking of the same
        // register; every Free immediately preceded by tracking.
        for b in &f.blocks {
            for (i, inst) in b.insts.iter().enumerate() {
                match inst {
                    Inst::Alloc(d, _) => {
                        let ok = matches!(
                            b.insts.get(i + 1),
                            Some(Inst::Intr(_, Intrinsic::CaratTrackAlloc, args))
                                if args.first() == Some(d)
                        );
                        if !ok {
                            return false;
                        }
                    }
                    Inst::Free(p) => {
                        let ok = i > 0
                            && matches!(
                                &b.insts[i - 1],
                                Inst::Intr(_, Intrinsic::CaratTrackFree, args)
                                    if args.first() == Some(p)
                            );
                        if !ok {
                            return false;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    true
}

/// A PIK "process": an admitted module plus its execution state. It runs in
/// kernel mode on physical addresses; isolation comes entirely from its
/// instrumentation and the CARAT runtime.
pub struct PikProcess {
    /// The admitted (transformed) module.
    pub module: Module,
    /// Interpreter state (registers, memory, statistics).
    pub interp: Interp,
    /// This process's CARAT runtime (allocation map, permissions).
    pub runtime: CaratRuntime,
    entry: FuncId,
    started: bool,
    args: Vec<Val>,
}

impl PikProcess {
    /// Run one scheduling slice of at most `fuel` cycles.
    pub fn run_slice(&mut self, fuel: u64) -> ExecStatus {
        if !self.started {
            self.interp.start(&self.module, self.entry, &self.args);
            self.started = true;
        }
        self.interp.run(&self.module, &mut self.runtime, fuel)
    }

    /// Defragment this process's memory at the current quiescent point.
    pub fn defrag(&mut self) -> crate::defrag::DefragReport {
        crate::defrag::compact(&mut self.interp, &mut self.runtime)
    }
}

/// The PIK system: trusted compiler registry + admitted processes.
#[derive(Default)]
pub struct PikSystem {
    registry: HashSet<u64>,
    /// Admitted processes.
    pub processes: Vec<PikProcess>,
}

impl PikSystem {
    /// A fresh system with an empty trust registry.
    pub fn new() -> PikSystem {
        PikSystem::default()
    }

    /// The trusted compiler: transform (full CARAT pipeline) and attest.
    pub fn compile(&mut self, mut m: Module) -> (Module, Attestation) {
        instrument(&mut m, true);
        let hash = m.content_hash();
        self.registry.insert(hash);
        (m, Attestation { hash })
    }

    /// Kernel admission: verify the attestation and instrumentation, then
    /// install the module as a process. Returns its index.
    pub fn admit(
        &mut self,
        module: Module,
        att: Attestation,
        entry: FuncId,
        args: Vec<Val>,
    ) -> Result<usize, AdmitError> {
        if module.content_hash() != att.hash {
            return Err(AdmitError::HashMismatch);
        }
        if !self.registry.contains(&att.hash) {
            return Err(AdmitError::NotAttested);
        }
        if !is_fully_instrumented(&module) {
            return Err(AdmitError::NotInstrumented);
        }
        // Defence in depth: statically prove every access is covered by a
        // guard on every path (crate::coverage), not just that guards exist.
        if !crate::coverage::verify_coverage(&module).is_empty() {
            return Err(AdmitError::NotInstrumented);
        }
        self.processes.push(PikProcess {
            module,
            interp: Interp::new(InterpConfig::default()),
            runtime: CaratRuntime::new(),
            entry,
            started: false,
            args,
        });
        Ok(self.processes.len() - 1)
    }
}

/// A PIK kernel with a *shared* physical address space: all admitted
/// processes' allocations live in one [`Memory`], exactly as §IV-A
/// describes ("run as a part of Nautilus, at kernel-level, using physical
/// addresses"). Isolation between processes is enforced purely by their
/// guards: each process's CARAT runtime tracks only its own allocations,
/// so a cross-process access — however the address was forged — faults at
/// the guard.
pub struct SharedPikKernel {
    sys: PikSystem,
    /// The single shared physical memory, lent to the running process.
    memory: Option<interweave_ir::interp::Memory>,
}

impl Default for SharedPikKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedPikKernel {
    /// A kernel with an empty shared space.
    pub fn new() -> SharedPikKernel {
        SharedPikKernel {
            sys: PikSystem::new(),
            memory: Some(interweave_ir::interp::Memory::new(&InterpConfig::default())),
        }
    }

    /// Compile + attest (trusted toolchain).
    pub fn compile(&mut self, m: Module) -> (Module, Attestation) {
        self.sys.compile(m)
    }

    /// Admit a process into the shared space.
    pub fn admit(
        &mut self,
        module: Module,
        att: Attestation,
        entry: FuncId,
        args: Vec<Val>,
    ) -> Result<usize, AdmitError> {
        self.sys.admit(module, att, entry, args)
    }

    /// Run one slice of process `pid` inside the shared memory.
    pub fn run_slice(&mut self, pid: usize, fuel: u64) -> ExecStatus {
        let shared = self.memory.take().expect("memory present between slices");
        let proc = &mut self.sys.processes[pid];
        let placeholder = proc.interp.swap_memory(shared);
        let status = proc.run_slice(fuel);
        let shared = proc.interp.swap_memory(placeholder);
        self.memory = Some(shared);
        status
    }

    /// Whole-system defragmentation (§IV-A: the enhanced in-kernel CARAT
    /// "can perform per-'process' and whole system memory defragmentation").
    /// Compacts the single shared space at a quiescent point; every move
    /// patches *all* admitted processes — registers via provenance, runtime
    /// tracking tables via [`CaratRuntime::relocate`] (a no-op for
    /// processes that do not own the moved allocation).
    pub fn defrag_all(&mut self) -> crate::defrag::DefragReport {
        let mut shared = self.memory.take().expect("memory present between slices");
        let mut report = crate::defrag::DefragReport {
            holes_before: shared.free_holes(),
            ..Default::default()
        };
        while let Some(a) = crate::defrag::compaction_candidate(&shared) {
            let (old, new) = shared
                .move_allocation(a.id)
                .expect("moving a live allocation cannot fail");
            debug_assert_eq!(shared.base_of(a.id), Some(new));
            for proc in &mut self.sys.processes {
                // Register patching touches only frames, so it is safe (and
                // required) while each process holds a placeholder memory.
                report.regs_patched += proc.interp.patch_provenance(a.id, old, new);
                proc.runtime.relocate(old, new);
            }
            report.moves += 1;
            report.bytes_moved += a.size;
        }
        report.holes_after = shared.free_holes();
        self.memory = Some(shared);
        report
    }

    /// Direct access to an admitted process (inspection).
    pub fn process(&mut self, pid: usize) -> &mut PikProcess {
        &mut self.sys.processes[pid]
    }

    /// Live allocations in the shared space.
    pub fn shared_allocations(&self) -> usize {
        self.memory.as_ref().map(|m| m.n_allocs()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interweave_ir::programs;

    #[test]
    fn compile_admit_run_roundtrip() {
        let prog = programs::stream_triad(32);
        let mut sys = PikSystem::new();
        let (m, att) = sys.compile(prog.module.clone());
        let pid = sys
            .admit(m, att, prog.entry, prog.args.clone())
            .expect("admission");
        let st = sys.processes[pid].run_slice(u64::MAX / 4);
        // Same checksum as a plain run: 7 * n(n-1)/2.
        assert_eq!(
            st,
            ExecStatus::Done(Some(Val::F(7.0 * (31.0 * 32.0 / 2.0))))
        );
    }

    #[test]
    fn tampered_module_is_rejected() {
        let prog = programs::stream_triad(8);
        let mut sys = PikSystem::new();
        let (mut m, att) = sys.compile(prog.module.clone());
        // Attacker strips a guard after attestation.
        for f in &mut m.funcs {
            for b in &mut f.blocks {
                if let Some(pos) = b.insts.iter().position(|i| {
                    matches!(
                        i,
                        Inst::Intr(_, Intrinsic::CaratGuard | Intrinsic::CaratGuardRange, _)
                    )
                }) {
                    b.insts.remove(pos);
                    let err = sys
                        .admit(m, att, prog.entry, prog.args.clone())
                        .unwrap_err();
                    assert_eq!(err, AdmitError::HashMismatch);
                    return;
                }
            }
        }
        panic!("no guard found to strip");
    }

    #[test]
    fn unattested_module_is_rejected_even_if_instrumented() {
        let prog = programs::stream_triad(8);
        let mut sys = PikSystem::new();
        // Instrument outside the trusted compiler (identical transformation,
        // but no registry entry).
        let mut m = prog.module.clone();
        crate::instrument(&mut m, true);
        let att = Attestation {
            hash: m.content_hash(),
        };
        let err = sys.admit(m, att, prog.entry, prog.args).unwrap_err();
        assert_eq!(err, AdmitError::NotAttested);
    }

    #[test]
    fn partially_stripped_but_rehashed_module_fails_coverage() {
        // An attacker who strips one guard AND re-registers the hash (e.g.
        // via a compromised-but-registry-writing toolchain) is still caught
        // by the coverage verifier.
        let prog = programs::stream_triad(8);
        let mut sys = PikSystem::new();
        let (mut m, _) = sys.compile(prog.module.clone());
        'strip: for f in &mut m.funcs {
            for b in &mut f.blocks {
                if let Some(pos) = b.insts.iter().position(|i| {
                    matches!(
                        i,
                        Inst::Intr(_, Intrinsic::CaratGuard | Intrinsic::CaratGuardRange, _)
                    )
                }) {
                    b.insts.remove(pos);
                    break 'strip;
                }
            }
        }
        // Re-attest the tampered module through the trusted path (worst
        // case for the hash check).
        let att = Attestation {
            hash: m.content_hash(),
        };
        sys.registry.insert(att.hash);
        let err = sys
            .admit(m, att, prog.entry, prog.args.clone())
            .unwrap_err();
        assert_eq!(err, AdmitError::NotInstrumented);
    }

    #[test]
    fn uninstrumented_module_fails_the_static_check() {
        let prog = programs::stream_triad(8);
        assert!(!is_fully_instrumented(&prog.module));
        let mut m = prog.module.clone();
        crate::instrument(&mut m, true);
        assert!(is_fully_instrumented(&m));
    }

    #[test]
    fn shared_space_holds_every_processes_allocations() {
        let mut kern = SharedPikKernel::new();
        let mut pids = Vec::new();
        for n in [64i64, 96] {
            let prog = programs::histogram(200, 16);
            let (m, att) = kern.compile(prog.module.clone());
            let pid = kern
                .admit(m, att, prog.entry, vec![Val::I(200), Val::I(n)])
                .expect("admits");
            pids.push(pid);
        }
        // Interleave slices: both processes allocate in the one space.
        let mut done = [false; 2];
        while !done.iter().all(|&d| d) {
            for (i, &pid) in pids.iter().enumerate() {
                if done[i] {
                    continue;
                }
                match kern.run_slice(pid, 10_000) {
                    ExecStatus::Done(_) => done[i] = true,
                    ExecStatus::OutOfFuel | ExecStatus::Yielded => {}
                    ExecStatus::Trapped(t) => panic!("trapped: {t:?}"),
                }
            }
        }
    }

    #[test]
    fn guards_isolate_processes_within_one_address_space() {
        use interweave_ir::interp::Trap;
        use interweave_ir::{BinOp, CmpOp, FunctionBuilder};

        let mut kern = SharedPikKernel::new();

        // Process A: allocates, writes a secret, then spins at yields.
        let mut fb = FunctionBuilder::new("victim", 0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        let secret = fb.const_i(12345);
        fb.store(p, 0, secret);
        let head = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        fb.intr_void(interweave_ir::Intrinsic::Yield, &[]);
        fb.br(head);
        let mut m_a = Module::new();
        m_a.add(fb.finish());
        let (m_a, att_a) = kern.compile(m_a);
        let a = kern.admit(m_a, att_a, FuncId(0), vec![]).unwrap();

        // Run A until it has allocated (first yield).
        assert_eq!(kern.run_slice(a, u64::MAX / 4), ExecStatus::Yielded);
        assert_eq!(kern.shared_allocations(), 1);

        // Process B: scans the low heap looking for someone else's data —
        // a forged-pointer attack inside the shared physical space.
        let mut fb = FunctionBuilder::new("attacker", 0);
        let base = fb.const_i(0x10_000); // the shared heap base
        let zero = fb.const_i(0);
        let i = fb.mov(zero);
        let limit = fb.const_i(64);
        let one = fb.const_i(1);
        let h = fb.new_block();
        let b = fb.new_block();
        let exit = fb.new_block();
        fb.br(h);
        fb.switch_to(h);
        let c = fb.cmp(CmpOp::Lt, i, limit);
        fb.cond_br(c, b, exit);
        fb.switch_to(b);
        let addr = fb.gep(base, i, 8, 0);
        let _v = fb.load(addr, 0); // guarded: must fault on A's memory
        fb.bin_to(i, BinOp::Add, i, one);
        fb.br(h);
        fb.switch_to(exit);
        fb.ret(None);
        let mut m_b = Module::new();
        m_b.add(fb.finish());
        let (m_b, att_b) = kern.compile(m_b);
        let bpid = kern.admit(m_b, att_b, FuncId(0), vec![]).unwrap();

        // B's very first probe into A's allocation faults at the guard —
        // same physical space, zero hardware protection, full isolation.
        match kern.run_slice(bpid, u64::MAX / 4) {
            ExecStatus::Trapped(Trap::ProtectionFault { addr }) => {
                assert_eq!(addr, 0x10_000);
            }
            other => panic!("expected cross-process fault, got {other:?}"),
        }
        // A is unharmed and still scheduled (it parks at its next yield).
        assert!(matches!(
            kern.run_slice(a, 5_000),
            ExecStatus::Yielded | ExecStatus::OutOfFuel
        ));
    }

    #[test]
    fn whole_system_defrag_patches_every_process_in_the_shared_space() {
        use crate::defrag::fragmentation_demo;

        // Two processes fragment the one shared physical space, park at
        // their yields, and the kernel compacts the whole system at once.
        let mut kern = SharedPikKernel::new();
        let mut pids = Vec::new();
        for n in [8i64, 12] {
            let (m, entry) = fragmentation_demo("n");
            let (m, att) = kern.compile(m);
            let pid = kern.admit(m, att, entry, vec![Val::I(n)]).expect("admits");
            pids.push((pid, n));
        }
        for &(pid, _) in &pids {
            assert_eq!(kern.run_slice(pid, u64::MAX / 4), ExecStatus::Yielded);
        }

        let report = kern.defrag_all();
        assert!(report.moves >= 1, "shared space had holes to repair");
        assert!(
            report.regs_patched >= 1,
            "some process held a register into a moved allocation"
        );
        assert!(report.holes_after <= report.holes_before);

        // Both processes resume through patched pointers and produce the
        // same sums as an undisturbed run: n(n-1)/2.
        for &(pid, n) in &pids {
            match kern.run_slice(pid, u64::MAX / 4) {
                ExecStatus::Done(Some(Val::I(v))) => assert_eq!(v, n * (n - 1) / 2),
                other => panic!("process {pid} ended with {other:?}"),
            }
        }
    }

    #[test]
    fn kernel_can_defrag_a_process_mid_run() {
        // Run a process with a slice budget so the kernel gets control, then
        // defragment; the process must still complete correctly.
        let prog = programs::histogram(200, 16);
        let mut sys = PikSystem::new();
        let (m, att) = sys.compile(prog.module.clone());
        let pid = sys.admit(m, att, prog.entry, prog.args.clone()).unwrap();

        let mut result = None;
        for _ in 0..10_000 {
            match sys.processes[pid].run_slice(5_000) {
                ExecStatus::Done(v) => {
                    result = v;
                    break;
                }
                ExecStatus::OutOfFuel | ExecStatus::Yielded => {
                    sys.processes[pid].defrag();
                }
                ExecStatus::Trapped(t) => panic!("trapped: {t:?}"),
            }
        }
        // Compare against an uninstrumented run.
        use interweave_ir::interp::NullHooks;
        let mut base = Interp::new(InterpConfig::default());
        base.start(&prog.module, prog.entry, &prog.args);
        let expected = base.run_to_completion(&prog.module, &mut NullHooks);
        assert_eq!(result, expected);
    }
}
