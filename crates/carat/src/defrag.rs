//! Memory defragmentation by compaction.
//!
//! §IV-A: with CARAT, "memory can be managed at arbitrary granularity,
//! instead of being restricted to page sizes", and the enhanced in-kernel
//! version "can perform per-'process' and whole system memory
//! defragmentation". Compaction here moves live allocations *downward* into
//! free holes; the memory layer patches every stored pointer (tracked by
//! provenance) and [`compact`] patches every live register, so the program
//! resumes as if nothing happened — the property test in `tests/` proves it
//! by comparing final results with and without mid-run compaction.

use crate::runtime::{CaratRuntime, EscapeCorruption};
use interweave_ir::interp::{Allocation, Interp, Memory};
use interweave_ir::types::Val;
use std::collections::BTreeSet;

/// What a compaction pass accomplished.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DefragReport {
    /// Allocations moved.
    pub moves: usize,
    /// Bytes relocated.
    pub bytes_moved: u64,
    /// Live registers patched across all frames.
    pub regs_patched: usize,
    /// Free holes before compaction.
    pub holes_before: usize,
    /// Free holes after compaction.
    pub holes_after: usize,
}

/// The next allocation a compaction pass would move: the first allocation
/// (ascending base) with a strictly lower free hole that fits it. `None`
/// means the heap is fully compacted. Shared by per-process [`compact`] and
/// the PIK kernel's whole-system defragmentation.
pub fn compaction_candidate(mem: &Memory) -> Option<Allocation> {
    let holes = mem.free_blocks();
    mem.allocations().into_iter().find(|a| {
        holes
            .iter()
            .any(|&(hb, hs)| hb + a.size <= a.base && hs >= a.size)
    })
}

/// Compact the interpreter's heap: repeatedly move the lowest allocation
/// that can migrate into a strictly lower free hole. Runs at a quiescent
/// point (between [`Interp::run`] slices). The runtime's tracking table is
/// relocated alongside.
pub fn compact(it: &mut Interp, rt: &mut CaratRuntime) -> DefragReport {
    let mut report = DefragReport {
        holes_before: it.mem.free_holes(),
        ..DefragReport::default()
    };
    while let Some(a) = compaction_candidate(&it.mem) {
        let (old, new) = it
            .mem
            .move_allocation(a.id)
            .expect("moving a live allocation cannot fail");
        debug_assert!(new < old, "compaction must move downward");
        debug_assert_eq!(
            it.mem.base_of(a.id),
            Some(new),
            "the id index must track the move"
        );
        report.regs_patched += it.patch_provenance(a.id, old, new);
        rt.relocate(old, new);
        report.moves += 1;
        report.bytes_moved += a.size;
    }
    report.holes_after = it.mem.free_holes();
    report
}

/// What a corruption-recovery pass accomplished.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Corrupted words rewritten from the runtime's escape records.
    pub repaired_words: usize,
    /// Damaged allocations relocated to fresh frames.
    pub relocations: usize,
    /// Bytes moved by those relocations.
    pub bytes_moved: u64,
    /// Live registers patched across all frames.
    pub regs_patched: usize,
    /// Bytes of damaged frame withdrawn from service.
    pub quarantined_bytes: u64,
}

/// Recover from memory corruption the escape audit found: repair each
/// corrupted word from the runtime's record, then move every allocation
/// that held a corrupted word to a fresh frame — reusing the compaction
/// machinery ([`Memory::move_allocation`] + provenance/register patching +
/// [`CaratRuntime::relocate`]) — and quarantine the suspect old frame on
/// both sides (free list and guard table) so it is never handed out again.
///
/// This is the §IV-A claim inverted: because the interwoven runtime manages
/// memory in software, a fault that the layered stack could only handle by
/// killing the process (or scrubbing whole pages) is repaired at allocation
/// granularity while the program keeps running.
pub fn quarantine_and_relocate(
    it: &mut Interp,
    rt: &mut CaratRuntime,
    corruptions: &[EscapeCorruption],
) -> RecoveryReport {
    let mut report = RecoveryReport::default();
    // 1. Repair each corrupted word back to the recorded pointer value,
    //    restoring its provenance from the allocation it points into.
    for c in corruptions {
        let prov = it.mem.containing(c.expected).map(|a| a.id);
        if it
            .mem
            .store(c.holder, Val::I(c.expected as i64), prov)
            .is_ok()
        {
            report.repaired_words += 1;
        }
    }
    // 2. The frames that held corrupted words are suspect (whatever flipped
    //    one bit may flip more): relocate each damaged allocation once,
    //    deterministically ordered by id.
    let damaged: BTreeSet<_> = corruptions
        .iter()
        .filter_map(|c| it.mem.containing(c.holder).map(|a| a.id))
        .collect();
    for id in damaged {
        let Some(a) = it.mem.base_of(id).and_then(|b| it.mem.containing(b)) else {
            continue;
        };
        let size = a.size;
        let Ok((old, new)) = it.mem.move_allocation(id) else {
            continue;
        };
        report.regs_patched += it.patch_provenance(id, old, new);
        rt.relocate(old, new);
        report.relocations += 1;
        report.bytes_moved += size;
        // 3. Withdraw the damaged frame on both sides: the memory layer
        //    stops reusing it, the guard table denies access to it.
        if it.mem.quarantine_range(old, size) {
            rt.quarantine(old, size);
            report.quarantined_bytes += size;
        }
    }
    report
}

/// Build a deliberately fragmenting program for demonstrations and tests:
/// a linked list interleaved with padding allocations; the pads are freed
/// in a second pass (leaving holes between the surviving nodes), the
/// program yields (the compaction point), then walks the list summing
/// values — through pointers that compaction must have patched. Returns
/// `(module, entry)`; call with one argument `n` (list length ≥ 2); the
/// final sum is `n(n-1)/2`.
pub fn fragmentation_demo(n_hint: &str) -> (interweave_ir::Module, interweave_ir::FuncId) {
    use interweave_ir::{BinOp, CmpOp, FunctionBuilder, Intrinsic, Module};
    let _ = n_hint;
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("frag_demo", 1);
    let n = fb.param(0);
    let node_sz = fb.const_i(24);
    let pad_sz = fb.const_i(64);
    let zero = fb.const_i(0);
    let one = fb.const_i(1);

    let head = fb.alloc(node_sz);
    fb.store(head, 8, zero);
    let pad0 = fb.alloc(pad_sz);
    fb.store(head, 16, pad0);
    let prev = fb.mov(head);
    let i = fb.mov(one);
    let lh = fb.new_block();
    let lb = fb.new_block();
    let free_pre = fb.new_block();
    fb.br(lh);
    fb.switch_to(lh);
    let c = fb.cmp(CmpOp::Lt, i, n);
    fb.cond_br(c, lb, free_pre);
    fb.switch_to(lb);
    let node = fb.alloc(node_sz);
    fb.store(node, 8, i);
    let pad = fb.alloc(pad_sz);
    fb.store(node, 16, pad);
    fb.store(prev, 0, node);
    fb.mov_to(prev, node);
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(lh);

    fb.switch_to(free_pre);
    let fcur = fb.mov(head);
    let fk = fb.mov(zero);
    let fh = fb.new_block();
    let fbod = fb.new_block();
    let walk_pre = fb.new_block();
    fb.br(fh);
    fb.switch_to(fh);
    let fc = fb.cmp(CmpOp::Lt, fk, n);
    fb.cond_br(fc, fbod, walk_pre);
    fb.switch_to(fbod);
    let fpad = fb.load(fcur, 16);
    fb.free(fpad);
    let fnxt = fb.load(fcur, 0);
    fb.mov_to(fcur, fnxt);
    fb.bin_to(fk, BinOp::Add, fk, one);
    fb.br(fh);

    fb.switch_to(walk_pre);
    fb.intr_void(Intrinsic::Yield, &[]);
    let cur = fb.mov(head);
    let sum = fb.mov(zero);
    let k = fb.mov(zero);
    let wh = fb.new_block();
    let wb = fb.new_block();
    let exit = fb.new_block();
    fb.br(wh);
    fb.switch_to(wh);
    let c2 = fb.cmp(CmpOp::Lt, k, n);
    fb.cond_br(c2, wb, exit);
    fb.switch_to(wb);
    let v = fb.load(cur, 8);
    fb.bin_to(sum, BinOp::Add, sum, v);
    let nxt = fb.load(cur, 0);
    fb.mov_to(cur, nxt);
    fb.bin_to(k, BinOp::Add, k, one);
    fb.br(wh);
    fb.switch_to(exit);
    fb.ret(Some(sum));
    let entry = m.add(fb.finish());
    (m, entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument;
    use interweave_ir::interp::{ExecStatus, Interp, InterpConfig};
    use interweave_ir::types::Val;
    use interweave_ir::{BinOp, CmpOp, FunctionBuilder, Intrinsic, Module};

    /// A program that (1) builds a fragmented heap holding pointers both in
    /// registers and in memory, (2) yields, (3) reads everything back
    /// through the stored pointers.
    fn fragmenting_program() -> (Module, interweave_ir::FuncId) {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("frag", 0);
        let small = fb.const_i(32);
        let big = fb.const_i(256);

        // Interleave small/big allocations, then free the bigs → holes.
        let keep0 = fb.alloc(small);
        let dead0 = fb.alloc(big);
        let keep1 = fb.alloc(small);
        let dead1 = fb.alloc(big);
        let keep2 = fb.alloc(small);
        // A directory allocation holding pointers to the keeps (escapes).
        let dir = fb.alloc(small);
        fb.store(dir, 0, keep0);
        fb.store(dir, 8, keep1);
        fb.store(dir, 16, keep2);
        // Distinct values in each keep.
        let v0 = fb.const_i(111);
        let v1 = fb.const_i(222);
        let v2 = fb.const_i(333);
        fb.store(keep0, 0, v0);
        fb.store(keep1, 0, v1);
        fb.store(keep2, 0, v2);
        fb.free(dead0);
        fb.free(dead1);

        // Quiescent point: the embedder defragments here.
        fb.intr_void(Intrinsic::Yield, &[]);

        // Read back through the *stored* pointers and through a register.
        let p0 = fb.load(dir, 0);
        let p1 = fb.load(dir, 8);
        let a0 = fb.load(p0, 0);
        let a1 = fb.load(p1, 0);
        let a2 = fb.load(keep2, 0); // register-held pointer
        let s01 = fb.bin(BinOp::Add, a0, a1);
        let sum = fb.bin(BinOp::Add, s01, a2);
        fb.ret(Some(sum));
        let id = m.add(fb.finish());
        (m, id)
    }

    #[test]
    fn compaction_preserves_results_and_reduces_fragmentation() {
        let (mut m, entry) = fragmenting_program();
        instrument(&mut m, true);

        let mut rt = CaratRuntime::new();
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, entry, &[]);
        assert_eq!(it.run(&m, &mut rt, u64::MAX / 4), ExecStatus::Yielded);

        let holes_before = it.mem.free_holes();
        assert!(holes_before >= 1, "test needs fragmentation to repair");
        let report = compact(&mut it, &mut rt);
        assert!(report.moves >= 1, "nothing moved: {report:?}");
        assert!(report.regs_patched >= 1, "register-held pointer must patch");

        // Resume: all three values must read back intact through patched
        // pointers.
        match it.run(&m, &mut rt, u64::MAX / 4) {
            ExecStatus::Done(Some(Val::I(v))) => assert_eq!(v, 111 + 222 + 333),
            other => panic!("unexpected status {other:?}"),
        }
    }

    #[test]
    fn bit_flip_is_audited_repaired_and_survivors_relocated() {
        // Full recovery cycle: run to the quiescent point, corrupt a stored
        // pointer with a bit-flip, let the audit find it, quarantine-and-
        // relocate, and resume — the program must still produce the right
        // answer, through pointers living in a *fresh* frame.
        let (mut m, entry) = fragmenting_program();
        instrument(&mut m, true);
        let mut rt = CaratRuntime::new();
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, entry, &[]);
        assert_eq!(it.run(&m, &mut rt, u64::MAX / 4), ExecStatus::Yielded);

        let holders = rt.escape_holders();
        assert!(!holders.is_empty(), "test needs escape records");
        let victim = holders[0];
        it.mem.flip_bit(victim, 9).expect("pointer word is an int");

        let corruptions = rt.audit_escapes(&it.mem);
        assert_eq!(corruptions.len(), 1, "exactly the flipped word");
        assert_eq!(corruptions[0].holder, victim);

        let report = quarantine_and_relocate(&mut it, &mut rt, &corruptions);
        assert_eq!(report.repaired_words, 1);
        assert_eq!(report.relocations, 1, "the damaged frame must move");
        assert!(report.quarantined_bytes > 0);
        // Post-recovery the ledger and memory agree again.
        assert!(rt.audit_escapes(&it.mem).is_empty());

        match it.run(&m, &mut rt, u64::MAX / 4) {
            ExecStatus::Done(Some(Val::I(v))) => assert_eq!(v, 111 + 222 + 333),
            other => panic!("unexpected status {other:?}"),
        }
    }

    #[test]
    fn recovery_with_no_corruptions_is_a_noop() {
        let (mut m, entry) = fragmenting_program();
        instrument(&mut m, true);
        let mut rt = CaratRuntime::new();
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, entry, &[]);
        let _ = it.run(&m, &mut rt, u64::MAX / 4);
        let report = quarantine_and_relocate(&mut it, &mut rt, &[]);
        assert_eq!(report, RecoveryReport::default());
    }

    #[test]
    fn compaction_is_idempotent() {
        let (mut m, entry) = fragmenting_program();
        instrument(&mut m, true);
        let mut rt = CaratRuntime::new();
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, entry, &[]);
        let _ = it.run(&m, &mut rt, u64::MAX / 4);
        let first = compact(&mut it, &mut rt);
        let second = compact(&mut it, &mut rt);
        assert!(first.moves >= 1);
        assert_eq!(second.moves, 0, "second pass should find nothing to move");
    }

    #[test]
    fn compaction_with_loop_built_structure() {
        // Build a linked list with a loop, fragment around it, compact at a
        // yield, then walk the list — exercises provenance through loops.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("list", 1);
        let n = fb.param(0);
        let node_sz = fb.const_i(24);
        let pad_sz = fb.const_i(64);
        let zero = fb.const_i(0);
        let one = fb.const_i(1);

        // Nodes are {next, value, pad_ptr} (24 B). Build the list with a
        // pad allocation interleaved between nodes, THEN free all pads in a
        // second walk — leaving real holes between surviving nodes that
        // only compaction can reclaim.
        let head = fb.alloc(node_sz);
        fb.store(head, 8, zero); // value 0
        let pad0 = fb.alloc(pad_sz);
        fb.store(head, 16, pad0);
        let prev = fb.mov(head);
        let i = fb.mov(one);
        let lh = fb.new_block();
        let lb = fb.new_block();
        let free_pre = fb.new_block();
        fb.br(lh);
        fb.switch_to(lh);
        let c = fb.cmp(CmpOp::Lt, i, n);
        fb.cond_br(c, lb, free_pre);
        fb.switch_to(lb);
        let node = fb.alloc(node_sz);
        fb.store(node, 8, i);
        let pad = fb.alloc(pad_sz);
        fb.store(node, 16, pad);
        fb.store(prev, 0, node); // escape: prev->next = node
        fb.mov_to(prev, node);
        fb.bin_to(i, BinOp::Add, i, one);
        fb.br(lh);

        // Free every pad (creating holes), then yield for compaction.
        fb.switch_to(free_pre);
        let fcur = fb.mov(head);
        let fk = fb.mov(zero);
        let fh = fb.new_block();
        let fbod = fb.new_block();
        let walk_pre = fb.new_block();
        fb.br(fh);
        fb.switch_to(fh);
        let fc = fb.cmp(CmpOp::Lt, fk, n);
        fb.cond_br(fc, fbod, walk_pre);
        fb.switch_to(fbod);
        let fpad = fb.load(fcur, 16);
        fb.free(fpad);
        let fnxt = fb.load(fcur, 0);
        fb.mov_to(fcur, fnxt);
        fb.bin_to(fk, BinOp::Add, fk, one);
        fb.br(fh);

        // yield, then walk summing values
        fb.switch_to(walk_pre);
        fb.intr_void(Intrinsic::Yield, &[]);
        let cur = fb.mov(head);
        let sum = fb.mov(zero);
        let k = fb.mov(zero);
        let wh = fb.new_block();
        let wb = fb.new_block();
        let exit = fb.new_block();
        fb.br(wh);
        fb.switch_to(wh);
        let c2 = fb.cmp(CmpOp::Lt, k, n);
        fb.cond_br(c2, wb, exit);
        fb.switch_to(wb);
        let v = fb.load(cur, 8);
        fb.bin_to(sum, BinOp::Add, sum, v);
        let nxt = fb.load(cur, 0);
        fb.mov_to(cur, nxt);
        fb.bin_to(k, BinOp::Add, k, one);
        fb.br(wh);
        fb.switch_to(exit);
        fb.ret(Some(sum));
        let entry = m.add(fb.finish());
        instrument(&mut m, true);

        let n = 10i64;
        let mut rt = CaratRuntime::new();
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, entry, &[Val::I(n)]);
        assert_eq!(it.run(&m, &mut rt, u64::MAX / 4), ExecStatus::Yielded);
        let report = compact(&mut it, &mut rt);
        assert!(report.moves > 0);
        match it.run(&m, &mut rt, u64::MAX / 4) {
            ExecStatus::Done(Some(Val::I(v))) => assert_eq!(v, n * (n - 1) / 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
