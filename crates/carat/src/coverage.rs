//! Static guard-coverage verification.
//!
//! PIK admission (§IV-A) rests on the claim that a transformed module
//! cannot perform an unchecked access. The attestation hash proves the
//! module wasn't modified; this verifier proves the stronger property
//! *directly*: on every path to every load/store, the accessed register is
//! covered — by a dominating object guard of the same (single-definition)
//! register, or by a range guard of the (loop-invariant) base it was
//! derived from. The same must-dataflow as guard elision, run as a checker
//! instead of a rewriter: elision removes guards the analysis proves
//! redundant, coverage rejects accesses the analysis cannot prove guarded.

use crate::guards::flag_value;
use interweave_ir::analysis::{Cfg, DefInfo};
use interweave_ir::inst::{Inst, Intrinsic};
use interweave_ir::types::Reg;
use interweave_ir::Module;

/// One uncovered access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageError {
    /// Function name.
    pub func: String,
    /// Block index.
    pub block: usize,
    /// Instruction index within the block.
    pub inst: usize,
    /// Whether the access was a write.
    pub write: bool,
}

impl std::fmt::Display for CoverageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: bb{} inst {} performs an unguarded {}",
            self.func,
            self.block,
            self.inst,
            if self.write { "write" } else { "read" }
        )
    }
}

#[derive(Clone, PartialEq)]
struct CovState {
    // Registers proven guarded (read / write).
    read: Vec<bool>,
    write: Vec<bool>,
    // Objects (base registers) proven range-guarded (read / write).
    obj_read: Vec<bool>,
    obj_write: Vec<bool>,
}

impl CovState {
    fn empty(n: usize) -> CovState {
        CovState {
            read: vec![false; n],
            write: vec![false; n],
            obj_read: vec![false; n],
            obj_write: vec![false; n],
        }
    }
    fn intersect(&mut self, o: &CovState) {
        for (a, b) in self.read.iter_mut().zip(&o.read) {
            *a &= b;
        }
        for (a, b) in self.write.iter_mut().zip(&o.write) {
            *a &= b;
        }
        for (a, b) in self.obj_read.iter_mut().zip(&o.obj_read) {
            *a &= b;
        }
        for (a, b) in self.obj_write.iter_mut().zip(&o.obj_write) {
            *a &= b;
        }
    }
    fn clear(&mut self) {
        self.read.iter_mut().for_each(|b| *b = false);
        self.write.iter_mut().for_each(|b| *b = false);
        self.obj_read.iter_mut().for_each(|b| *b = false);
        self.obj_write.iter_mut().for_each(|b| *b = false);
    }
    fn kill(&mut self, r: u32) {
        self.read[r as usize] = false;
        self.write[r as usize] = false;
        self.obj_read[r as usize] = false;
        self.obj_write[r as usize] = false;
    }
}

/// Verify every access in every function is guard-covered. Returns all
/// violations (empty = fully covered).
pub fn verify_coverage(m: &Module) -> Vec<CoverageError> {
    let mut errors = Vec::new();
    for f in &m.funcs {
        let n = f.n_regs;
        if f.blocks.is_empty() {
            continue;
        }
        let cfg = Cfg::build(f);
        let defs = DefInfo::compute(f);

        // The (unique, single-def) gep base of a register, if any.
        let gep_base = |r: Reg| -> Option<Reg> {
            if !defs.is_single_def(r) {
                return None;
            }
            for b in &f.blocks {
                for i in &b.insts {
                    if let Inst::Gep(d, base, _, _, _) = i {
                        if *d == r {
                            return Some(*base).filter(|b| defs.is_single_def(*b));
                        }
                    }
                }
            }
            None
        };

        let covered = |st: &CovState, addr: Reg, write: bool| -> bool {
            let direct = if write {
                st.write[addr.0 as usize]
            } else {
                st.read[addr.0 as usize]
            };
            if direct {
                return true;
            }
            match gep_base(addr) {
                Some(b) => {
                    if write {
                        st.obj_write[b.0 as usize]
                    } else {
                        st.obj_read[b.0 as usize]
                    }
                }
                None => false,
            }
        };

        let apply = |st: &mut CovState,
                     bi: usize,
                     f: &interweave_ir::Function,
                     mut report: Option<&mut Vec<CoverageError>>| {
            for (ii, inst) in f.blocks[bi].insts.iter().enumerate() {
                match inst {
                    Inst::Intr(_, Intrinsic::CaratGuard, args) => {
                        // Sound even for multi-definition registers: the
                        // kill-on-def rule removes the fact the moment the
                        // register could hold a different value.
                        let a = args[0];
                        let w = flag_value(f, &defs, args[1]) == Some(1);
                        st.read[a.0 as usize] = true;
                        if w {
                            st.write[a.0 as usize] = true;
                        }
                    }
                    Inst::Intr(_, Intrinsic::CaratGuardRange, args) => {
                        let a = args[0];
                        let w = flag_value(f, &defs, args[1]) == Some(1);
                        // Object coverage through gep bases demands a
                        // single-definition base (otherwise a gep-derived
                        // address may refer to an older base value).
                        if defs.is_single_def(a) {
                            st.obj_read[a.0 as usize] = true;
                            if w {
                                st.obj_write[a.0 as usize] = true;
                            }
                        }
                        // A range guard also covers direct accesses through
                        // the base register itself.
                        st.read[a.0 as usize] = true;
                        if w {
                            st.write[a.0 as usize] = true;
                        }
                    }
                    Inst::Intr(_, Intrinsic::CaratTrackFree, _) | Inst::Free(_) => st.clear(),
                    Inst::Call(d, _, _) => {
                        st.clear();
                        if let Some(d) = d {
                            st.kill(d.0);
                        }
                    }
                    Inst::Load(_, a, _) => {
                        if let Some(out) = report.as_deref_mut() {
                            if !covered(st, *a, false) {
                                out.push(CoverageError {
                                    func: f.name.clone(),
                                    block: bi,
                                    inst: ii,
                                    write: false,
                                });
                            }
                        }
                        if let Some(d) = inst.def() {
                            st.kill(d.0);
                        }
                    }
                    Inst::Store(a, _, _) => {
                        if let Some(out) = report.as_deref_mut() {
                            if !covered(st, *a, true) {
                                out.push(CoverageError {
                                    func: f.name.clone(),
                                    block: bi,
                                    inst: ii,
                                    write: true,
                                });
                            }
                        }
                    }
                    _ => {
                        if let Some(d) = inst.def() {
                            st.kill(d.0);
                        }
                    }
                }
            }
        };

        // Fixpoint over out-states.
        let mut outs: Vec<Option<CovState>> = vec![None; f.blocks.len()];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &cfg.rpo {
                let bi = b.index();
                let mut state = if bi == 0 {
                    CovState::empty(n)
                } else {
                    let mut acc: Option<CovState> = None;
                    for &p in &cfg.preds[bi] {
                        if let Some(o) = &outs[p.index()] {
                            match &mut acc {
                                None => acc = Some(o.clone()),
                                Some(a) => a.intersect(o),
                            }
                        }
                    }
                    match acc {
                        Some(a) => a,
                        None => continue,
                    }
                };
                apply(&mut state, bi, f, None);
                if outs[bi].as_ref() != Some(&state) {
                    outs[bi] = Some(state);
                    changed = true;
                }
            }
        }

        // Checking pass.
        for &b in &cfg.rpo {
            let bi = b.index();
            let mut state = if bi == 0 {
                CovState::empty(n)
            } else {
                let mut acc: Option<CovState> = None;
                for &p in &cfg.preds[bi] {
                    if let Some(o) = &outs[p.index()] {
                        match &mut acc {
                            None => acc = Some(o.clone()),
                            Some(a) => a.intersect(o),
                        }
                    }
                }
                match acc {
                    Some(a) => a,
                    None => continue,
                }
            };
            apply(&mut state, bi, f, Some(&mut errors));
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument;
    use interweave_ir::programs;

    #[test]
    fn uninstrumented_programs_fail_coverage() {
        for p in programs::suite(1) {
            let has_mem = p.module.funcs.iter().any(|f| {
                f.blocks
                    .iter()
                    .any(|b| b.insts.iter().any(|i| i.is_mem_access()))
            });
            let errs = verify_coverage(&p.module);
            assert_eq!(errs.is_empty(), !has_mem, "{}", p.name);
        }
    }

    #[test]
    fn naive_instrumentation_is_fully_covered() {
        for p in programs::suite(1) {
            let mut m = p.module.clone();
            instrument(&mut m, false);
            let errs = verify_coverage(&m);
            assert!(errs.is_empty(), "{}: {errs:?}", p.name);
        }
    }

    #[test]
    fn optimized_instrumentation_is_still_fully_covered() {
        // The load-bearing theorem: hoisting + elision never lose coverage.
        for p in programs::suite(2) {
            let mut m = p.module.clone();
            instrument(&mut m, true);
            let errs = verify_coverage(&m);
            assert!(errs.is_empty(), "{}: {errs:?}", p.name);
        }
    }

    #[test]
    fn stripping_one_guard_is_detected() {
        use interweave_ir::inst::{Inst, Intrinsic};
        let p = programs::stream_triad(16);
        let mut m = p.module.clone();
        instrument(&mut m, true);
        // Remove the first range guard.
        'strip: for f in &mut m.funcs {
            for b in &mut f.blocks {
                if let Some(pos) = b.insts.iter().position(|i| {
                    matches!(
                        i,
                        Inst::Intr(_, Intrinsic::CaratGuard | Intrinsic::CaratGuardRange, _)
                    )
                }) {
                    b.insts.remove(pos);
                    break 'strip;
                }
            }
        }
        let errs = verify_coverage(&m);
        assert!(!errs.is_empty(), "stripped guard must be caught");
    }

    #[test]
    fn errors_carry_usable_locations() {
        let p = programs::dot(8);
        let errs = verify_coverage(&p.module);
        assert!(!errs.is_empty());
        let e = &errs[0];
        assert_eq!(e.func, "dot");
        let rendered = e.to_string();
        assert!(rendered.contains("unguarded"));
    }
}
