//! Static pointer-likeness analysis.
//!
//! CARAT must know which stored values are pointers so it can track
//! *escapes* (pointer values written to memory) — the information
//! defragmentation needs to patch every reference to a moved allocation.
//! In LLVM this comes from types; our IR erases types, so this analysis
//! recovers pointer-likeness by dataflow from allocation sites:
//!
//! - `alloc` and `gep` results are pointers;
//! - `mov`/`select` propagate;
//! - `add`/`sub` with exactly-one pointer operand produce a pointer;
//! - everything else (including loads) is optimistically non-pointer. The
//!   optimism is safe for the workloads in this repository — none stores a
//!   *reloaded* pointer — and mirrors what a typed front end would know
//!   exactly. See `DESIGN.md` for the substitution note.

use interweave_ir::inst::{BinOp, Inst};
use interweave_ir::types::Reg;
use interweave_ir::Function;

/// Per-register pointer-likeness for one function (union over all defs).
#[derive(Debug, Clone)]
pub struct PointerLikeness {
    ptr: Vec<bool>,
}

impl PointerLikeness {
    /// Analyse `f` to a fixpoint.
    pub fn compute(f: &Function) -> PointerLikeness {
        let mut ptr = vec![false; f.n_regs];
        let mut changed = true;
        while changed {
            changed = false;
            for b in &f.blocks {
                for inst in &b.insts {
                    let new = match inst {
                        Inst::Alloc(d, _) | Inst::Gep(d, _, _, _, _) => Some((*d, true)),
                        Inst::Mov(d, s) => Some((*d, ptr[s.0 as usize])),
                        Inst::Select(d, _, a, b) => {
                            Some((*d, ptr[a.0 as usize] || ptr[b.0 as usize]))
                        }
                        Inst::Bin(d, BinOp::Add | BinOp::Sub, a, b) => {
                            Some((*d, ptr[a.0 as usize] ^ ptr[b.0 as usize]))
                        }
                        _ => None,
                    };
                    if let Some((d, v)) = new {
                        // Union over definitions: once a pointer, always
                        // treated as one.
                        if v && !ptr[d.0 as usize] {
                            ptr[d.0 as usize] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        PointerLikeness { ptr }
    }

    /// True when `r` may hold a pointer.
    pub fn is_pointer(&self, r: Reg) -> bool {
        self.ptr[r.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interweave_ir::inst::BinOp;
    use interweave_ir::FunctionBuilder;

    #[test]
    fn alloc_and_gep_are_pointers() {
        let mut fb = FunctionBuilder::new("f", 0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        let one = fb.const_i(1);
        let q = fb.gep(p, one, 8, 0);
        fb.ret(None);
        let f = fb.finish();
        let t = PointerLikeness::compute(&f);
        assert!(!t.is_pointer(sz));
        assert!(t.is_pointer(p));
        assert!(t.is_pointer(q));
    }

    #[test]
    fn arithmetic_propagates_one_sided() {
        let mut fb = FunctionBuilder::new("f", 0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        let k = fb.const_i(8);
        let q = fb.bin(BinOp::Add, p, k); // ptr + int = ptr
        let d = fb.bin(BinOp::Sub, q, p); // ptr - ptr = int
        let n = fb.bin(BinOp::Add, k, k); // int + int = int
        fb.ret(None);
        let f = fb.finish();
        let t = PointerLikeness::compute(&f);
        assert!(t.is_pointer(q));
        assert!(!t.is_pointer(d));
        assert!(!t.is_pointer(n));
    }

    #[test]
    fn mov_and_select_propagate() {
        let mut fb = FunctionBuilder::new("f", 1);
        let c = fb.param(0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        let m = fb.mov(p);
        let s = fb.select(c, m, sz); // may be pointer
        fb.ret(None);
        let f = fb.finish();
        let t = PointerLikeness::compute(&f);
        assert!(t.is_pointer(m));
        assert!(t.is_pointer(s));
    }

    #[test]
    fn loop_carried_pointer_reaches_fixpoint() {
        // cur starts as gep, then mov'd from a load each iteration. The
        // load result is optimistically non-pointer, but the initial gep
        // definition makes `cur` a pointer by union.
        let mut fb = FunctionBuilder::new("f", 0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        let zero = fb.const_i(0);
        let cur = fb.gep(p, zero, 8, 0);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        fb.cond_br(zero, body, exit);
        fb.switch_to(body);
        let nxt = fb.load(cur, 0);
        fb.mov_to(cur, nxt);
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        let t = PointerLikeness::compute(&f);
        assert!(t.is_pointer(cur));
        assert!(!t.is_pointer(nxt));
    }
}
