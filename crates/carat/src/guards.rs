//! Guard and tracking injection.
//!
//! "Conceptually, protection check code is introduced at each read or write,
//! and data movements operate similarly to a garbage collector" (§IV-A).
//! This pass inserts:
//!
//! - an object guard `carat_guard(addr, is_write)` before every load/store —
//!   guards are *object-granularity*: the runtime checks the allocation
//!   containing `addr` (offsets within an object are covered, matching
//!   CARAT's allocation-level tracking);
//! - `carat_track_alloc(ptr, size)` after every allocation and
//!   `carat_track_free(ptr)` before every free;
//! - `carat_track_escape(value, holder)` after every store whose stored
//!   value is pointer-like (per [`crate::taint`]), so the runtime learns
//!   every memory location that holds a pointer.
//!
//! The `is_write` operand is one of two per-function constant registers the
//! pass materializes in the entry block; later passes recover the flag's
//! value through single-definition analysis.

use crate::taint::PointerLikeness;
use interweave_ir::analysis::DefInfo;
use interweave_ir::inst::{Inst, Intrinsic};
use interweave_ir::passes::{Pass, PassStats};
use interweave_ir::types::Reg;
use interweave_ir::{Function, Module};

/// The injection pass.
#[derive(Debug, Default, Clone)]
pub struct InjectGuards;

/// Find the value of the write-flag register `w` (0 = read, 1 = write) by
/// looking at its unique `ConstI` definition. Shared helper for the elide
/// and hoist passes.
pub fn flag_value(f: &Function, defs: &DefInfo, w: Reg) -> Option<i64> {
    if !defs.is_single_def(w) {
        return None;
    }
    for b in &f.blocks {
        for i in &b.insts {
            if let Inst::ConstI(d, v) = i {
                if *d == w {
                    return Some(*v);
                }
            }
        }
    }
    None
}

impl Pass for InjectGuards {
    fn name(&self) -> &'static str {
        "carat-inject"
    }

    fn run(&mut self, m: &mut Module) -> PassStats {
        let mut stats = PassStats::default();
        for f in &mut m.funcs {
            let has_mem = f.blocks.iter().any(|b| {
                b.insts
                    .iter()
                    .any(|i| i.is_mem_access() || matches!(i, Inst::Alloc(_, _) | Inst::Free(_)))
            });
            if !has_mem {
                continue;
            }
            let taint = PointerLikeness::compute(f);
            // Per-function flag registers, defined at the top of the entry
            // block.
            let r_read = f.fresh_reg();
            let r_write = f.fresh_reg();
            f.blocks[0]
                .insts
                .splice(0..0, [Inst::ConstI(r_read, 0), Inst::ConstI(r_write, 1)]);

            for b in &mut f.blocks {
                let mut out = Vec::with_capacity(b.insts.len() * 2);
                for inst in b.insts.drain(..) {
                    match &inst {
                        Inst::Load(_, a, _) => {
                            out.push(Inst::Intr(None, Intrinsic::CaratGuard, vec![*a, r_read]));
                            stats.bump("guards_inserted", 1);
                            out.push(inst);
                        }
                        Inst::Store(a, _, v) => {
                            out.push(Inst::Intr(None, Intrinsic::CaratGuard, vec![*a, r_write]));
                            stats.bump("guards_inserted", 1);
                            let escape = taint.is_pointer(*v);
                            let (vv, aa) = (*v, *a);
                            out.push(inst);
                            if escape {
                                out.push(Inst::Intr(
                                    None,
                                    Intrinsic::CaratTrackEscape,
                                    vec![vv, aa],
                                ));
                                stats.bump("escapes_tracked", 1);
                            }
                        }
                        Inst::Alloc(d, s) => {
                            let (dd, ss) = (*d, *s);
                            out.push(inst);
                            out.push(Inst::Intr(None, Intrinsic::CaratTrackAlloc, vec![dd, ss]));
                            stats.bump("allocs_tracked", 1);
                        }
                        Inst::Free(p) => {
                            out.push(Inst::Intr(None, Intrinsic::CaratTrackFree, vec![*p]));
                            stats.bump("frees_tracked", 1);
                            out.push(inst);
                        }
                        _ => out.push(inst),
                    }
                }
                b.insts = out;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interweave_ir::verify::assert_valid;
    use interweave_ir::FunctionBuilder;

    fn count(m: &Module, which: Intrinsic) -> usize {
        m.funcs
            .iter()
            .map(|f| f.count_insts(|i| matches!(i, Inst::Intr(_, w, _) if *w == which)))
            .sum()
    }

    #[test]
    fn injects_guard_per_access_and_tracking_per_alloc() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        let v = fb.load(p, 0);
        fb.store(p, 8, v);
        fb.free(p);
        fb.ret(None);
        m.add(fb.finish());

        let mut pass = InjectGuards;
        let stats = pass.run(&mut m);
        assert_valid(&m);
        assert_eq!(stats.get("guards_inserted"), 2);
        assert_eq!(stats.get("allocs_tracked"), 1);
        assert_eq!(stats.get("frees_tracked"), 1);
        assert_eq!(count(&m, Intrinsic::CaratGuard), 2);
        assert_eq!(count(&m, Intrinsic::CaratTrackAlloc), 1);
        assert_eq!(count(&m, Intrinsic::CaratTrackFree), 1);
    }

    #[test]
    fn pointer_stores_get_escape_tracking() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        let q = fb.alloc(sz);
        fb.store(p, 0, q); // stores a pointer → escape
        let k = fb.const_i(7);
        fb.store(p, 8, k); // stores an integer → no escape
        fb.ret(None);
        m.add(fb.finish());

        let stats = InjectGuards.run(&mut m);
        assert_valid(&m);
        assert_eq!(stats.get("escapes_tracked"), 1);
        assert_eq!(count(&m, Intrinsic::CaratTrackEscape), 1);
    }

    #[test]
    fn memory_free_functions_left_untouched() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("pure", 1);
        let x = fb.param(0);
        let one = fb.const_i(1);
        let r = fb.bin(interweave_ir::BinOp::Add, x, one);
        fb.ret(Some(r));
        m.add(fb.finish());
        let before = m.inst_count();
        InjectGuards.run(&mut m);
        assert_eq!(m.inst_count(), before);
    }

    #[test]
    fn flag_registers_resolve() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 0);
        let sz = fb.const_i(8);
        let p = fb.alloc(sz);
        let _ = fb.load(p, 0);
        fb.ret(None);
        m.add(fb.finish());
        InjectGuards.run(&mut m);

        let f = m.func(interweave_ir::FuncId(0));
        let defs = DefInfo::compute(f);
        // The injected guard's second arg must resolve to the read flag (0).
        let guard_flag = f
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .find_map(|i| match i {
                Inst::Intr(_, Intrinsic::CaratGuard, args) => Some(args[1]),
                _ => None,
            })
            .expect("guard present");
        assert_eq!(flag_value(f, &defs, guard_flag), Some(0));
    }
}
