//! Guard hoisting: replace per-iteration guards with one preheader check.
//!
//! The dense-loop case that makes CARAT cheap (§IV-A: overheads "<6 %
//! (geometric mean)" on NAS/Mantevo/PARSEC-class codes): an access
//! `a[i]` inside a loop is guarded per iteration after injection, but when
//! the *object* (`a`) is loop-invariant one object check in the preheader
//! covers every iteration. The pass hoists:
//!
//! - guards whose address is a `gep` off a loop-invariant, single-def base
//!   (the `a[i]` shape), and
//! - guards whose address register is itself loop-invariant and single-def,
//! - already-hoisted range guards out of enclosing loops (processing loops
//!   inner-to-outer lets a guard migrate from an inner preheader to the
//!   outermost one).
//!
//! Hoisting is slightly eager: a zero-trip loop executes a range guard the
//! original program would have skipped. Guards are side-effect-free checks
//! of tracked state, so the only observable difference is a protection
//! fault firing earlier on an *already-invalid* pointer — the same
//! compromise CARAT makes.

use interweave_ir::analysis::{Cfg, DefInfo, Dominators, LoopForest};
use interweave_ir::inst::{Inst, Intrinsic};
use interweave_ir::passes::{Pass, PassStats};
use interweave_ir::types::{BlockId, Reg};
use interweave_ir::Module;

/// The hoisting pass. Run between injection and elision.
#[derive(Debug, Default, Clone)]
pub struct HoistGuards;

impl Pass for HoistGuards {
    fn name(&self) -> &'static str {
        "carat-hoist"
    }

    fn run(&mut self, m: &mut Module) -> PassStats {
        let mut stats = PassStats::default();
        for f in &mut m.funcs {
            let cfg = Cfg::build(f);
            let dom = Dominators::compute(&cfg);
            let mut loops = LoopForest::find(&cfg, &dom).loops;
            if loops.is_empty() {
                continue;
            }
            // Inner loops first (smaller bodies), so hoisted range guards
            // can be re-hoisted by enclosing loops in the same pass run.
            loops.sort_by_key(|l| l.body.len());
            let defs = DefInfo::compute(f);

            // Which register (if any) is the single-def gep base of `r`.
            let gep_base = |r: Reg| -> Option<Reg> {
                if !defs.is_single_def(r) {
                    return None;
                }
                for b in &f.blocks {
                    for i in &b.insts {
                        if let Inst::Gep(d, base, _, _, _) = i {
                            if *d == r {
                                return Some(*base);
                            }
                        }
                    }
                }
                None
            };

            // Planned edits: removals (block, inst index) and preheader
            // insertions (block, object reg, flag reg, prefer-write).
            let mut removals: Vec<(usize, usize)> = Vec::new();
            // (preheader, object) → (flag reg, is_write)
            let mut inserts: std::collections::BTreeMap<(usize, u32), (Reg, bool)> =
                std::collections::BTreeMap::new();

            for l in &loops {
                let Some(pre) = l.preheader else { continue };
                for &bid in &l.body {
                    let bi = bid.index();
                    for (ii, inst) in f.blocks[bi].insts.iter().enumerate() {
                        let (kind, args) = match inst {
                            Inst::Intr(None, Intrinsic::CaratGuard, a) => {
                                (Intrinsic::CaratGuard, a)
                            }
                            Inst::Intr(None, Intrinsic::CaratGuardRange, a) => {
                                (Intrinsic::CaratGuardRange, a)
                            }
                            _ => continue,
                        };
                        if removals.contains(&(bi, ii)) {
                            continue; // already claimed by an inner loop
                        }
                        let addr = args[0];
                        let flag = args[1];
                        // Identify the hoistable object.
                        let object = if defs.is_single_def(addr) && defs.invariant_in(addr, &l.body)
                        {
                            Some(addr)
                        } else if kind == Intrinsic::CaratGuard {
                            gep_base(addr)
                                .filter(|&b| defs.is_single_def(b) && defs.invariant_in(b, &l.body))
                        } else {
                            None
                        };
                        let Some(object) = object else { continue };
                        // The flag register must be usable at the
                        // preheader: it is a function-entry constant
                        // (single-def) by construction of the injector.
                        if !defs.is_single_def(flag) {
                            continue;
                        }
                        let is_write = crate::guards::flag_value(f, &defs, flag) == Some(1);
                        removals.push((bi, ii));
                        let key = (pre.index(), object.0);
                        let entry = inserts.entry(key).or_insert((flag, is_write));
                        // Upgrade a read range-guard to write if any hoisted
                        // guard on this object writes.
                        if is_write && !entry.1 {
                            *entry = (flag, true);
                        }
                        stats.bump("guards_hoisted", 1);
                    }
                }
            }

            // Apply removals (per block, descending index).
            removals.sort_unstable();
            for &(bi, ii) in removals.iter().rev() {
                f.blocks[bi].insts.remove(ii);
            }
            // Apply preheader insertions (after the preheader's own insts,
            // i.e. just before its terminator).
            for ((pre, obj), (flag, _w)) in inserts {
                let _ = BlockId(pre as u32);
                f.blocks[pre].insts.push(Inst::Intr(
                    None,
                    Intrinsic::CaratGuardRange,
                    vec![Reg(obj), flag],
                ));
                stats.bump("range_guards_inserted", 1);
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guards::InjectGuards;
    use crate::instrument;
    use interweave_ir::programs;
    use interweave_ir::verify::assert_valid;
    use interweave_ir::{BinOp, CmpOp, FunctionBuilder};

    fn count(m: &Module, which: Intrinsic) -> usize {
        m.funcs
            .iter()
            .map(|f| f.count_insts(|i| matches!(i, Inst::Intr(_, w, _) if *w == which)))
            .sum()
    }

    #[test]
    fn array_loop_guard_hoists_to_preheader() {
        // for i in 0..n: s += a[i]  — the per-iteration guard becomes one
        // range guard before the loop.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 1);
        let n = fb.param(0);
        let eight = fb.const_i(8);
        let bytes = fb.bin(BinOp::Mul, n, eight);
        let a = fb.alloc(bytes);
        let zero = fb.const_i(0);
        let i = fb.mov(zero);
        let s = fb.mov(zero);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::Lt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let p = fb.gep(a, i, 8, 0);
        let v = fb.load(p, 0);
        fb.bin_to(s, BinOp::Add, s, v);
        let one = fb.const_i(1);
        fb.bin_to(i, BinOp::Add, i, one);
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(Some(s));
        m.add(fb.finish());

        InjectGuards.run(&mut m);
        assert_eq!(count(&m, Intrinsic::CaratGuard), 1);
        let stats = HoistGuards.run(&mut m);
        assert_valid(&m);
        assert_eq!(stats.get("guards_hoisted"), 1);
        assert_eq!(count(&m, Intrinsic::CaratGuard), 0);
        assert_eq!(count(&m, Intrinsic::CaratGuardRange), 1);
    }

    #[test]
    fn data_dependent_pointer_does_not_hoist() {
        // Pointer chase: `cur` is redefined every iteration — its guard
        // must stay in the loop.
        let p = programs::pointer_chase(15, 30);
        let mut m = p.module;
        InjectGuards.run(&mut m);
        let in_loop_before = count(&m, Intrinsic::CaratGuard);
        let stats = HoistGuards.run(&mut m);
        assert_valid(&m);
        // The chase-loop guard on `cur` survives; the init-loop guards on
        // gep(nodes, i) hoist.
        assert!(stats.get("guards_hoisted") >= 1);
        assert!(count(&m, Intrinsic::CaratGuard) >= 1);
        assert!(count(&m, Intrinsic::CaratGuard) < in_loop_before);
    }

    #[test]
    fn nested_loops_hoist_to_outermost_preheader() {
        // matvec's inner-loop guards should end up outside the outer loop
        // where the matrices are invariant.
        let p = programs::matvec(6);
        let mut m = p.module;
        InjectGuards.run(&mut m);
        HoistGuards.run(&mut m);
        assert_valid(&m);
        // No plain guards remain: every access is through an invariant base.
        assert_eq!(count(&m, Intrinsic::CaratGuard), 0);
        let f = &m.funcs[0];
        // Range guards must not sit inside the innermost (j) loops: check
        // none of the range guards is in a depth-2 block.
        let cfg = Cfg::build(f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::find(&cfg, &dom);
        for (bi, b) in f.blocks.iter().enumerate() {
            for inst in &b.insts {
                if matches!(inst, Inst::Intr(_, Intrinsic::CaratGuardRange, _)) {
                    let depth = forest.depth(BlockId(bi as u32));
                    assert!(depth <= 1, "range guard at loop depth {depth}");
                }
            }
        }
    }

    #[test]
    fn full_pipeline_preserves_program_results() {
        use interweave_ir::interp::{Interp, InterpConfig, NullHooks};
        for prog in programs::suite(1) {
            let mut base = Interp::new(InterpConfig::default());
            base.start(&prog.module, prog.entry, &prog.args);
            let expected = base.run_to_completion(&prog.module, &mut NullHooks);

            let mut m = prog.module.clone();
            instrument(&mut m, true);
            let mut rt = crate::runtime::CaratRuntime::new();
            let mut it = Interp::new(InterpConfig::default());
            it.start(&m, prog.entry, &prog.args);
            let got = it.run_to_completion(&m, &mut rt);
            assert_eq!(got, expected, "{} changed result", prog.name);
        }
    }

    #[test]
    fn write_upgrade_when_read_and_write_guards_share_object() {
        // Loop with a[i] read and a[i] write: one range guard, write flag.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 1);
        let n = fb.param(0);
        let eight = fb.const_i(8);
        let bytes = fb.bin(BinOp::Mul, n, eight);
        let a = fb.alloc(bytes);
        let zero = fb.const_i(0);
        let i = fb.mov(zero);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::Lt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let p = fb.gep(a, i, 8, 0);
        let v = fb.load(p, 0);
        let one = fb.const_i(1);
        let v2 = fb.bin(BinOp::Add, v, one);
        fb.store(p, 0, v2);
        fb.bin_to(i, BinOp::Add, i, one);
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(None);
        m.add(fb.finish());

        InjectGuards.run(&mut m);
        HoistGuards.run(&mut m);
        assert_valid(&m);
        assert_eq!(count(&m, Intrinsic::CaratGuard), 0);
        assert_eq!(count(&m, Intrinsic::CaratGuardRange), 1);
    }
}
