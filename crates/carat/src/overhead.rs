//! The CARAT overhead experiment (TAB-CARAT).
//!
//! For each benchmark kernel, measure total cycles four ways:
//!
//! 1. **baseline** — the original program, identity-mapped, no translation,
//!    no instrumentation (raw Nautilus);
//! 2. **naive CARAT** — guards injected at every access, no optimization
//!    ("the potentially high costs of the compiler-introduced protection and
//!    tracking code");
//! 3. **optimized CARAT** — after hoisting + elision (the paper's <6 %
//!    geometric-mean configuration);
//! 4. **paging** — the original program paying conventional translation
//!    costs (TLB misses + demand faults) through the kernel crate's
//!    [`PagingModel`].
//!
//! Every variant must produce the identical program result — asserted on
//! each run, making the whole table double as a correctness test of the
//! transformation pipeline.

use crate::instrument;
use crate::runtime::CaratRuntime;
use interweave_core::stats::geomean;
use interweave_ir::interp::{HookAction, Interp, InterpConfig, Memory, RuntimeHooks, Trap};
use interweave_ir::programs::{self, Program};
use interweave_ir::types::Val;
use interweave_ir::Intrinsic;
use interweave_kernel::paging::PagingModel;

/// Hooks that charge conventional paging/TLB costs on every access.
pub struct PagingHooks {
    /// The TLB + demand-fault model.
    pub model: PagingModel,
}

impl PagingHooks {
    /// Paging with the given TLB geometry (entries, page size in bytes).
    pub fn new(tlb_entries: usize, page_size: u64) -> PagingHooks {
        let mut cost = interweave_core::machine::CostModel::x64_default();
        cost.tlb_entries = tlb_entries;
        cost.page_size = page_size;
        PagingHooks {
            model: PagingModel::new(&cost),
        }
    }
}

impl RuntimeHooks for PagingHooks {
    fn intrinsic(
        &mut self,
        which: Intrinsic,
        _args: &[Val],
        _mem: &mut Memory,
        now: u64,
    ) -> HookAction {
        match which {
            Intrinsic::ReadTimer => HookAction::Continue {
                value: Some(Val::I(now as i64)),
                cycles: 1,
            },
            _ => HookAction::Continue {
                value: None,
                cycles: 0,
            },
        }
    }

    fn check_access(&mut self, addr: u64, _write: bool, _now: u64) -> Result<u64, Trap> {
        Ok(self.model.access(addr).get())
    }
}

/// One benchmark's overhead measurements.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Kernel name.
    pub name: String,
    /// Baseline cycles (no instrumentation, identity mapping).
    pub base_cycles: u64,
    /// Cycles with naive (unoptimized) CARAT instrumentation.
    pub naive_cycles: u64,
    /// Cycles with optimized CARAT instrumentation.
    pub opt_cycles: u64,
    /// Cycles under conventional paging.
    pub paging_cycles: u64,
    /// Static guard count before optimization.
    pub static_guards_naive: u64,
    /// Static guard count (object + range) after optimization.
    pub static_guards_opt: u64,
    /// Dynamic guard executions, naive.
    pub dyn_guards_naive: u64,
    /// Dynamic guard executions (object + range), optimized.
    pub dyn_guards_opt: u64,
}

impl OverheadRow {
    /// Naive instrumentation overhead vs. baseline, in percent.
    pub fn naive_pct(&self) -> f64 {
        100.0 * (self.naive_cycles as f64 / self.base_cycles as f64 - 1.0)
    }

    /// Optimized instrumentation overhead vs. baseline, in percent.
    pub fn opt_pct(&self) -> f64 {
        100.0 * (self.opt_cycles as f64 / self.base_cycles as f64 - 1.0)
    }

    /// Paging overhead vs. baseline, in percent.
    pub fn paging_pct(&self) -> f64 {
        100.0 * (self.paging_cycles as f64 / self.base_cycles as f64 - 1.0)
    }
}

fn run_with(
    m: &interweave_ir::Module,
    p: &Program,
    hooks: &mut dyn RuntimeHooks,
) -> (Option<Val>, u64) {
    let mut it = Interp::new(InterpConfig::default());
    it.start(m, p.entry, &p.args);
    let v = it.run_to_completion(m, hooks);
    (v, it.stats.cycles)
}

fn count_guards(m: &interweave_ir::Module) -> u64 {
    m.funcs
        .iter()
        .map(|f| {
            f.count_insts(|i| {
                matches!(
                    i,
                    interweave_ir::Inst::Intr(
                        _,
                        Intrinsic::CaratGuard | Intrinsic::CaratGuardRange,
                        _
                    )
                )
            }) as u64
        })
        .sum()
}

/// Measure one program under all four regimes. `tlb_entries`/`page_size`
/// configure the paging baseline.
pub fn measure(p: &Program, tlb_entries: usize, page_size: u64) -> OverheadRow {
    use interweave_ir::interp::NullHooks;

    let (base_v, base_cycles) = run_with(&p.module, p, &mut NullHooks);

    let mut naive_m = p.module.clone();
    instrument(&mut naive_m, false);
    let mut naive_rt = CaratRuntime::new();
    let (naive_v, naive_cycles) = run_with(&naive_m, p, &mut naive_rt);

    let mut opt_m = p.module.clone();
    instrument(&mut opt_m, true);
    let mut opt_rt = CaratRuntime::new();
    let (opt_v, opt_cycles) = run_with(&opt_m, p, &mut opt_rt);

    let mut paging = PagingHooks::new(tlb_entries, page_size);
    let (paging_v, paging_cycles) = run_with(&p.module, p, &mut paging);

    assert_eq!(
        naive_v, base_v,
        "{}: naive CARAT changed the result",
        p.name
    );
    assert_eq!(
        opt_v, base_v,
        "{}: optimized CARAT changed the result",
        p.name
    );
    assert_eq!(paging_v, base_v, "{}: paging changed the result", p.name);

    OverheadRow {
        name: p.name.clone(),
        base_cycles,
        naive_cycles,
        opt_cycles,
        paging_cycles,
        static_guards_naive: count_guards(&naive_m),
        static_guards_opt: count_guards(&opt_m),
        dyn_guards_naive: naive_rt.stats.guards + naive_rt.stats.range_guards,
        dyn_guards_opt: opt_rt.stats.guards + opt_rt.stats.range_guards,
    }
}

/// Run the whole suite at a scale factor. The paging baseline uses a
/// deliberately small TLB so capacity effects appear at laptop scale (the
/// real machines have proportionally larger footprints).
pub fn run_suite(scale: i64) -> Vec<OverheadRow> {
    programs::suite(scale)
        .iter()
        .map(|p| measure(p, 64, 4096))
        .collect()
}

/// Geometric-mean overhead percentages `(naive, optimized)` across rows,
/// computed over (1 + overhead) ratios as the paper does.
pub fn geomean_overheads(rows: &[OverheadRow]) -> (f64, f64) {
    let naive: Vec<f64> = rows
        .iter()
        .map(|r| r.naive_cycles as f64 / r.base_cycles as f64)
        .collect();
    let opt: Vec<f64> = rows
        .iter()
        .map(|r| r.opt_cycles as f64 / r.base_cycles as f64)
        .collect();
    (
        100.0 * (geomean(&naive) - 1.0),
        100.0 * (geomean(&opt) - 1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_overhead_is_under_the_papers_bound() {
        // §IV-A: "the overheads are <6 % (geometric mean)". Allow a small
        // margin for the synthetic suite's irregular members.
        let rows = run_suite(2);
        let (naive, opt) = geomean_overheads(&rows);
        assert!(
            opt < 8.0,
            "optimized geomean overhead {opt:.2}% (rows: {:?})",
            rows.iter()
                .map(|r| (r.name.clone(), r.opt_pct()))
                .collect::<Vec<_>>()
        );
        assert!(
            naive > 25.0,
            "naive instrumentation should be expensive, got {naive:.2}%"
        );
    }

    #[test]
    fn dense_kernels_are_nearly_free_after_optimization() {
        // Larger scale so one-time tracking costs (alloc/free bookkeeping)
        // amortize the way they do on real inputs.
        let rows = run_suite(6);
        for r in &rows {
            if ["stream-triad", "matvec", "histogram"].contains(&r.name.as_str()) {
                assert!(
                    r.opt_pct() < 3.0,
                    "{}: optimized overhead {:.2}%",
                    r.name,
                    r.opt_pct()
                );
            }
        }
    }

    #[test]
    fn optimization_reduces_dynamic_guards_massively() {
        let rows = run_suite(2);
        let total_naive: u64 = rows.iter().map(|r| r.dyn_guards_naive).sum();
        let total_opt: u64 = rows.iter().map(|r| r.dyn_guards_opt).sum();
        assert!(
            total_opt * 5 < total_naive,
            "dynamic guards: naive {total_naive}, optimized {total_opt}"
        );
    }

    #[test]
    fn paging_costs_more_than_optimized_carat() {
        // The motivating comparison: compiler-based translation beats
        // hardware paging once TLB capacity is exceeded.
        let rows = run_suite(2);
        let (_, opt) = geomean_overheads(&rows);
        let paging_gm: f64 = {
            let ratios: Vec<f64> = rows
                .iter()
                .map(|r| r.paging_cycles as f64 / r.base_cycles as f64)
                .collect();
            100.0 * (interweave_core::stats::geomean(&ratios) - 1.0)
        };
        assert!(
            paging_gm > opt,
            "paging {paging_gm:.2}% should exceed optimized CARAT {opt:.2}%"
        );
    }

    #[test]
    fn fib_has_zero_memory_overhead() {
        let p = programs::fib(12);
        let row = measure(&p, 64, 4096);
        assert_eq!(row.base_cycles, row.opt_cycles);
        assert_eq!(row.dyn_guards_opt, 0);
    }
}
