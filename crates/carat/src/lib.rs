//! # interweave-carat
//!
//! CARAT: Compiler- And Runtime-based Address Translation (§IV-A of the
//! paper; Suchy et al., PLDI 2020).
//!
//! The premise: Nautilus runs everything on *physical addresses* with
//! identity mapping — no TLB misses, no page faults, but also no protection
//! and no memory mobility. CARAT restores both **without hardware
//! translation**: compiler passes insert guard and tracking calls into the
//! code, analyses elide and hoist most of them off the critical path, and a
//! runtime keeps an allocation map that makes protection checks and
//! arbitrary-granularity data movement possible.
//!
//! The pipeline mirrors the paper:
//! 1. [`guards::InjectGuards`] — a guard before every load/store, tracking
//!    after every allocation/free, escape tracking after every store of a
//!    pointer (identified by the static [`taint`] analysis).
//! 2. [`elide::ElideGuards`] — forward must-dataflow removes guards
//!    dominated by an equivalent guard with no intervening redefinition.
//! 3. [`hoist::HoistGuards`] — loop-invariant object guards move to the
//!    preheader as a single range guard ("aggregate and hoist protection
//!    and tracking code ... out of the critical path").
//! 4. [`runtime::CaratRuntime`] — the tracking/protection runtime the
//!    transformed code calls into.
//! 5. [`defrag`] — compaction by moving live allocations and patching every
//!    tracked pointer ("data movements operate similarly to a garbage
//!    collector").
//! 6. [`pik`] — the PIK model: separate compilation + attestation admits a
//!    transformed "process" into the kernel's single address space, with
//!    [`coverage`] statically proving every access is guard-covered.
//! 7. [`overhead`] — the TAB-CARAT experiment: per-benchmark overhead of
//!    naive vs. optimized instrumentation, against paging as the
//!    conventional alternative.

#![warn(missing_docs)]

pub mod coverage;
pub mod defrag;
pub mod elide;
pub mod guards;
pub mod hoist;
pub mod overhead;
pub mod pik;
pub mod runtime;
pub mod taint;

pub use defrag::{quarantine_and_relocate, RecoveryReport};
pub use guards::InjectGuards;
pub use runtime::{CaratRuntime, EscapeCorruption, GuardCosts};

use interweave_ir::passes::{PassManager, PassStats};
use interweave_ir::Module;

/// Run the full CARAT pipeline (inject → hoist → elide) on a module,
/// returning per-pass statistics.
pub fn instrument(m: &mut Module, optimize: bool) -> Vec<(String, PassStats)> {
    let mut pm = PassManager::new().add(guards::InjectGuards);
    if optimize {
        pm = pm.add(hoist::HoistGuards).add(elide::ElideGuards);
    }
    pm.run(m)
}
