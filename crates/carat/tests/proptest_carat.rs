//! Property tests for CARAT's central soundness claims:
//!
//! 1. instrumentation (naive or optimized) never changes a program's
//!    result, for randomized alloc/store/load/free programs;
//! 2. compaction at a random quiescent point never changes a program's
//!    result, however the heap got fragmented.

use interweave_carat::defrag::compact;
use interweave_carat::instrument;
use interweave_carat::runtime::CaratRuntime;
use interweave_ir::interp::{ExecStatus, Interp, InterpConfig, NullHooks};
use interweave_ir::types::{FuncId, Val};
use interweave_ir::{BinOp, FunctionBuilder, Intrinsic, Module};
use proptest::prelude::*;

/// A straight-line heap script: slots hold allocations; ops write/read
/// through them, store cross-pointers, and free/reallocate. The program
/// accumulates a checksum and returns it.
#[derive(Debug, Clone)]
enum HeapOp {
    /// Reallocate slot (frees existing first). The second field keeps the
    /// shrinker exploring allocation orderings.
    Alloc(usize, #[allow(dead_code)] u8),
    /// checksum += slot[word] (0 if slot empty).
    Read(usize, u8),
    /// slot[word] = value.
    Write(usize, u8, i16),
    /// slot_a[word] = &slot_b (a pointer escape).
    Link(usize, usize, u8),
    /// checksum += *(slot_a[word]) — read through a stored pointer if one
    /// was linked there (guarded by the generator's bookkeeping).
    Deref(usize, u8),
    /// Free the slot.
    Free(usize),
    /// A quiescent yield (defrag candidate point).
    Quiesce,
}

const SLOTS: usize = 4;
const WORDS: u64 = 6;

fn heap_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    prop::collection::vec(
        prop_oneof![
            ((0..SLOTS), any::<u8>()).prop_map(|(s, z)| HeapOp::Alloc(s, z)),
            ((0..SLOTS), 0u8..WORDS as u8).prop_map(|(s, w)| HeapOp::Read(s, w)),
            ((0..SLOTS), 0u8..WORDS as u8, any::<i16>())
                .prop_map(|(s, w, v)| HeapOp::Write(s, w, v)),
            ((0..SLOTS), (0..SLOTS), 0u8..WORDS as u8).prop_map(|(a, b, w)| HeapOp::Link(a, b, w)),
            ((0..SLOTS), 0u8..WORDS as u8).prop_map(|(s, w)| HeapOp::Deref(s, w)),
            (0..SLOTS).prop_map(HeapOp::Free),
            Just(HeapOp::Quiesce),
        ],
        1..60,
    )
}

/// Compile a heap script to IR. Tracks which slots are live and which
/// words hold pointers so the generated program never makes a wild access
/// (CARAT must be transparent on *correct* programs).
fn compile(ops: &[HeapOp]) -> Module {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("script", 0);
    let size = fb.const_i(WORDS as i64 * 8);
    let zero = fb.const_i(0);
    let checksum = fb.mov(zero);

    let mut slot_regs: Vec<Option<interweave_ir::Reg>> = vec![None; SLOTS];
    // links[a][w] = slot b whose pointer lives at a[w] (if b still live).
    let mut links: Vec<Vec<Option<usize>>> = vec![vec![None; WORDS as usize]; SLOTS];
    // holds_ptr[a][w]: the word contains a pointer *value* (even if its
    // target has died). Reads of such words are skipped: compaction — like
    // any moving collector — preserves dereferences, not raw addresses, so
    // a correct program must not fold addresses into its results.
    let mut holds_ptr: Vec<Vec<bool>> = vec![vec![false; WORDS as usize]; SLOTS];

    for op in ops {
        match *op {
            HeapOp::Alloc(s, _) => {
                if let Some(r) = slot_regs[s] {
                    fb.free(r);
                    // Links into this slot die, and so do links out of it.
                    links[s].iter_mut().for_each(|l| *l = None);
                    holds_ptr[s].iter_mut().for_each(|h| *h = false);
                    for row in links.iter_mut() {
                        for l in row.iter_mut() {
                            if *l == Some(s) {
                                *l = None;
                            }
                        }
                    }
                }
                let r = fb.alloc(size);
                slot_regs[s] = Some(r);
            }
            HeapOp::Read(s, w) => {
                let wi = w as usize % WORDS as usize;
                if slot_regs[s].is_some() && !holds_ptr[s][wi] {
                    let r = slot_regs[s].unwrap();
                    let v = fb.load(r, wi as i64 * 8);
                    fb.bin_to(checksum, BinOp::Add, checksum, v);
                }
            }
            HeapOp::Write(s, w, v) => {
                if let Some(r) = slot_regs[s] {
                    let wi = w as usize % WORDS as usize;
                    let val = fb.const_i(v as i64);
                    fb.store(r, wi as i64 * 8, val);
                    links[s][wi] = None; // overwrote any pointer
                    holds_ptr[s][wi] = false;
                }
            }
            HeapOp::Link(a, b, w) => {
                if let (Some(ra), Some(rb)) = (slot_regs[a], slot_regs[b]) {
                    let wi = w as usize % WORDS as usize;
                    fb.store(ra, wi as i64 * 8, rb);
                    links[a][wi] = Some(b);
                    holds_ptr[a][wi] = true;
                }
            }
            HeapOp::Deref(s, w) => {
                let w = w as usize % WORDS as usize;
                // Only deref when the *target's* word 0 holds a plain
                // value: reading a pointer-valued word into the checksum
                // would observe raw addresses (see holds_ptr above).
                let target_ok = links[s][w].map(|b| !holds_ptr[b][0]).unwrap_or(false);
                if slot_regs[s].is_some() && target_ok {
                    let r = slot_regs[s].unwrap();
                    let p = fb.load(r, w as i64 * 8);
                    let v = fb.load(p, 0);
                    fb.bin_to(checksum, BinOp::Add, checksum, v);
                }
            }
            HeapOp::Free(s) => {
                if let Some(r) = slot_regs[s] {
                    fb.free(r);
                    slot_regs[s] = None;
                    links[s].iter_mut().for_each(|l| *l = None);
                    for row in links.iter_mut() {
                        for l in row.iter_mut() {
                            if *l == Some(s) {
                                *l = None;
                            }
                        }
                    }
                }
            }
            HeapOp::Quiesce => fb.intr_void(Intrinsic::Yield, &[]),
        }
    }
    fb.ret(Some(checksum));
    m.add(fb.finish());
    m
}

fn run_plain(m: &Module) -> Option<Val> {
    let mut it = Interp::new(InterpConfig::default());
    it.start(m, FuncId(0), &[]);
    loop {
        match it.run(m, &mut NullHooks, u64::MAX / 4) {
            ExecStatus::Done(v) => return v,
            ExecStatus::Yielded => continue,
            other => panic!("baseline diverged: {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Naive and optimized instrumentation are both result-transparent, and
    /// neither ever raises a false protection fault on a correct program.
    #[test]
    fn instrumentation_is_transparent(ops in heap_ops()) {
        let m = compile(&ops);
        interweave_ir::verify::assert_valid(&m);
        let expected = run_plain(&m);

        for optimize in [false, true] {
            let mut inst = m.clone();
            instrument(&mut inst, optimize);
            interweave_ir::verify::assert_valid(&inst);
            let mut rt = CaratRuntime::new();
            let mut it = Interp::new(InterpConfig::default());
            it.start(&inst, FuncId(0), &[]);
            let got = loop {
                match it.run(&inst, &mut rt, u64::MAX / 4) {
                    ExecStatus::Done(v) => break v,
                    ExecStatus::Yielded => continue,
                    other => panic!("instrumented(opt={optimize}) diverged: {other:?}"),
                }
            };
            prop_assert_eq!(got, expected, "opt={}", optimize);
            prop_assert_eq!(rt.stats.faults, 0);
        }
    }

    /// Compacting at every quiescent point changes nothing about the final
    /// result, and a second compaction finds no work.
    #[test]
    fn defrag_at_quiescent_points_is_transparent(ops in heap_ops()) {
        let m = compile(&ops);
        let expected = run_plain(&m);

        let mut inst = m.clone();
        instrument(&mut inst, true);
        let mut rt = CaratRuntime::new();
        let mut it = Interp::new(InterpConfig::default());
        it.start(&inst, FuncId(0), &[]);
        let got = loop {
            match it.run(&inst, &mut rt, u64::MAX / 4) {
                ExecStatus::Done(v) => break v,
                ExecStatus::Yielded => {
                    let first = compact(&mut it, &mut rt);
                    let second = compact(&mut it, &mut rt);
                    prop_assert_eq!(second.moves, 0, "compaction not idempotent after {:?}", first);
                }
                other => panic!("diverged: {other:?}"),
            }
        };
        prop_assert_eq!(got, expected);
        prop_assert_eq!(rt.stats.faults, 0);
    }
}
