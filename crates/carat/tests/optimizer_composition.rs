//! Instrumentation must survive a cleanup optimizer: constant folding and
//! DCE run *after* the CARAT pipeline may not delete guards, tracking, or
//! the flag constants they use — and the combined output must still compute
//! the right answers and still catch protection bugs.

use interweave_carat::instrument;
use interweave_carat::runtime::CaratRuntime;
use interweave_ir::interp::{ExecStatus, Interp, InterpConfig, NullHooks, Trap};
use interweave_ir::opt::{ConstFold, Dce};
use interweave_ir::passes::PassManager;
use interweave_ir::programs;
use interweave_ir::types::Val;
use interweave_ir::verify::assert_valid;
use interweave_ir::{Inst, Intrinsic};

fn count_guards(m: &interweave_ir::Module) -> usize {
    m.funcs
        .iter()
        .map(|f| {
            f.count_insts(|i| {
                matches!(
                    i,
                    Inst::Intr(_, Intrinsic::CaratGuard | Intrinsic::CaratGuardRange, _)
                )
            })
        })
        .sum()
}

#[test]
fn optimizer_preserves_guards_and_results() {
    for prog in programs::suite(1) {
        let mut base = Interp::new(InterpConfig::default());
        base.start(&prog.module, prog.entry, &prog.args);
        let expected = base.run_to_completion(&prog.module, &mut NullHooks);

        let mut m = prog.module.clone();
        instrument(&mut m, true);
        let guards_before = count_guards(&m);
        PassManager::new().add(ConstFold).add(Dce).run(&mut m);
        assert_valid(&m);
        assert_eq!(
            count_guards(&m),
            guards_before,
            "{}: the optimizer deleted guards",
            prog.name
        );

        let mut rt = CaratRuntime::new();
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, prog.entry, &prog.args);
        let got = it.run_to_completion(&m, &mut rt);
        assert_eq!(got, expected, "{}", prog.name);
        assert_eq!(rt.stats.faults, 0);
    }
}

#[test]
fn optimized_instrumented_code_still_faults_on_bugs() {
    use interweave_ir::{BinOp, FunctionBuilder, Module};
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("buggy", 1);
    let p = fb.param(0);
    let big = fb.const_i(1 << 41);
    let q = fb.bin(BinOp::Add, p, big);
    let _ = fb.load(q, 0);
    fb.ret(None);
    m.add(fb.finish());

    instrument(&mut m, true);
    PassManager::new().add(ConstFold).add(Dce).run(&mut m);
    assert_valid(&m);

    let mut rt = CaratRuntime::new();
    let mut it = Interp::new(InterpConfig::default());
    let a = it.mem.alloc(64).unwrap();
    {
        use interweave_ir::interp::RuntimeHooks;
        rt.on_alloc(a);
    }
    it.start(&m, interweave_ir::FuncId(0), &[Val::I(a.base as i64)]);
    match it.run(&m, &mut rt, u64::MAX / 4) {
        ExecStatus::Trapped(Trap::ProtectionFault { .. }) => {}
        other => panic!("expected a guard fault, got {other:?}"),
    }
    assert_eq!(it.stats.loads, 0);
}

#[test]
fn optimizer_shrinks_but_never_breaks_naive_instrumentation() {
    // Even the heaviest (unoptimized-guards) configuration composes with
    // the cleanup passes.
    let prog = programs::stencil1d(48, 4);
    let mut m = prog.module.clone();
    instrument(&mut m, false);
    let before = m.inst_count();
    PassManager::new().add(ConstFold).add(Dce).run(&mut m);
    assert!(m.inst_count() <= before);

    let mut rt = CaratRuntime::new();
    let mut it = Interp::new(InterpConfig::default());
    it.start(&m, prog.entry, &prog.args);
    let got = it.run_to_completion(&m, &mut rt);
    let mut base = Interp::new(InterpConfig::default());
    base.start(&prog.module, prog.entry, &prog.args);
    let expected = base.run_to_completion(&prog.module, &mut NullHooks);
    assert_eq!(got, expected);
}
