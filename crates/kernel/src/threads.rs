//! Context-switch cost composition — the Fig. 4 decomposition.
//!
//! §IV-C: "The high cost of preemptive threads is due in large part to the
//! high costs of handling hardware timer interrupts. ... What if we replace
//! this with a software/software co-design involving the compiler toolchain
//! and the kernel?" This module composes the cost of a context switch from
//! the machine's [`CostModel`](interweave_core::machine::CostModel)
//! components for every point in the figure's parameter space:
//! {Linux, Aster-like framekernel, Nautilus-like} × {RT, non-RT} ×
//! {interrupt-timed threads, cooperative fibers, compiler-timed fibers} ×
//! {FP, no-FP}.
//!
//! The decomposition makes the interweaving argument mechanical:
//! - interrupt-timed threads pay `intr_dispatch` + full-GPR save + `iretq`;
//! - fibers switch at a *call site*, so the compiler knows caller-saved
//!   registers are dead: only the callee-saved subset is moved, and there is
//!   no interrupt entry/exit at all;
//! - compiler-timed fibers add only a predicted-branch time check
//!   (`time_check`) over cooperative fibers;
//! - at a compiler-chosen yield point some FP state is provably dead, so
//!   fibers move only [`FIBER_FP_FACTOR`] of the FP save/restore cost;
//! - the Linux path additionally pays the user/kernel boundary and the
//!   fair-scheduler pick.

use interweave_core::machine::MachineConfig;
use interweave_core::stack::OsPoint;
use interweave_core::time::Cycles;

/// Fraction of full FP save/restore a fiber switch pays: at a compiler-
/// chosen yield point the liveness of FP registers is known, so dead state
/// is simply not moved.
pub const FIBER_FP_FACTOR: f64 = 0.75;

/// Fiber management overhead beyond register movement: stack-pointer swap,
/// TCB bookkeeping, and the fiber queue update.
pub const FIBER_MGMT: Cycles = Cycles(150);

/// Default kernel-thread stack size charged against the buddy allocator
/// when a spawn goes through the stack-backed path (§III: thread stacks are
/// "guaranteed to always be in the most desirable zone").
pub const DEFAULT_STACK_BYTES: u64 = 16 * 1024;

/// The "most desirable zone" for a thread bound to `cpu`: its socket's NUMA
/// domain (one buddy zone per socket in our allocator layout).
pub fn home_zone_for(cpu: usize, mc: &MachineConfig) -> usize {
    mc.socket_of(cpu)
}

/// The switching mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchKind {
    /// Preemptive thread switched by a hardware timer interrupt.
    ThreadInterrupt,
    /// Fiber yielding cooperatively (explicit `yield()` in the program).
    FiberCooperative,
    /// Fiber preempted by compiler-injected time checks (§IV-C).
    FiberCompilerTimed,
}

/// A context-switch cost broken into the components Fig. 4 discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchBreakdown {
    /// Interrupt dispatch (or call + time check for compiler-timed fibers).
    pub entry: Cycles,
    /// Register state movement (GPRs or callee-saved subset).
    pub state: Cycles,
    /// Scheduler pick.
    pub sched: Cycles,
    /// FP/vector state movement (zero when FP-free).
    pub fp: Cycles,
    /// Kernel/user boundary costs (zero for in-kernel designs).
    pub boundary: Cycles,
    /// Return path (`iretq` for interrupt switches).
    pub ret: Cycles,
}

impl SwitchBreakdown {
    /// Total switch cost.
    pub fn total(&self) -> Cycles {
        self.entry + self.state + self.sched + self.fp + self.boundary + self.ret
    }
}

/// Safe-Rust scheduler surcharge for the Aster-like framekernel: the O(1)
/// NK-style pick plus bounds-checked runqueue operations behind a checked
/// API (no `unsafe` fast path to elide them).
pub const ASTER_SCHED_OVERHEAD: Cycles = Cycles(200);

/// In-kernel protection-domain bookkeeping an Aster-like switch pays: the
/// framekernel keeps real page tables per domain, so a task switch touches
/// them (CR3 bookkeeping, accessor revalidation) — but there is no
/// user/kernel world switch, so this is far below a full crossing.
pub const ASTER_DOMAIN_CHECK: Cycles = Cycles(150);

/// Compose the switch cost for one configuration.
pub fn switch_cost(
    mc: &MachineConfig,
    os: OsPoint,
    kind: SwitchKind,
    rt: bool,
    fp: bool,
) -> SwitchBreakdown {
    let c = &mc.cost;
    let fp_full = c.fp_save + c.fp_restore;

    let sched = match (os, kind, rt) {
        // Fibers use a lightweight per-CPU fiber queue; RT fibers use the
        // EDF pick.
        (_, SwitchKind::FiberCooperative | SwitchKind::FiberCompilerTimed, true) => c.sched_pick_rt,
        (_, SwitchKind::FiberCooperative | SwitchKind::FiberCompilerTimed, false) => {
            Cycles(c.sched_pick_rt.get())
        }
        (_, SwitchKind::ThreadInterrupt, true) => c.sched_pick_rt,
        (OsPoint::NkLike, SwitchKind::ThreadInterrupt, false) => c.sched_pick_nk,
        (OsPoint::AsterLike, SwitchKind::ThreadInterrupt, false) => {
            c.sched_pick_nk + ASTER_SCHED_OVERHEAD
        }
        (OsPoint::LinuxLike, SwitchKind::ThreadInterrupt, false) => c.sched_pick_fair,
    };

    match kind {
        SwitchKind::ThreadInterrupt => SwitchBreakdown {
            entry: mc.dispatch_cost(),
            state: c.gpr_save + c.gpr_restore,
            sched,
            fp: if fp { fp_full } else { Cycles::ZERO },
            boundary: match os {
                OsPoint::NkLike => Cycles::ZERO,
                OsPoint::AsterLike => ASTER_DOMAIN_CHECK,
                OsPoint::LinuxLike => c.kernel_crossing(),
            },
            ret: c.intr_return,
        },
        SwitchKind::FiberCooperative | SwitchKind::FiberCompilerTimed => {
            let entry = match kind {
                SwitchKind::FiberCompilerTimed => c.call_overhead + c.time_check,
                _ => c.call_overhead,
            };
            SwitchBreakdown {
                entry,
                state: c.callee_saved_save + c.callee_saved_restore + FIBER_MGMT,
                sched,
                fp: if fp {
                    Cycles((fp_full.as_f64() * FIBER_FP_FACTOR) as u64)
                } else {
                    Cycles::ZERO
                },
                // Fibers only exist in the interwoven (kernel-mode) design;
                // modelling "fibers on Linux" still charges no crossing
                // because user-level fiber libraries do not enter the
                // kernel.
                boundary: Cycles::ZERO,
                ret: Cycles::ZERO,
            }
        }
    }
}

/// The smallest useful preemption granularity for a mechanism: the slice
/// length at which switch overhead equals useful work (overhead fraction
/// 50 %). §IV-C reports "less than 600 cycles" for compiler-timed fibers on
/// KNL.
pub fn granularity_floor(switch: Cycles) -> Cycles {
    switch
}

/// All Fig. 4 rows for one machine: `(label, fp, breakdown)`. Thread rows
/// come in OS-axis order from most to least expensive — Linux, Aster,
/// then NK — so the table reads as a descent down the stack space.
pub fn fig4_rows(mc: &MachineConfig) -> Vec<(String, bool, SwitchBreakdown)> {
    let mut rows = Vec::new();
    for &fp in &[false, true] {
        let fpl = if fp { "FP" } else { "no-FP" };
        rows.push((
            format!("Linux threads (non-RT, {fpl})"),
            fp,
            switch_cost(
                mc,
                OsPoint::LinuxLike,
                SwitchKind::ThreadInterrupt,
                false,
                fp,
            ),
        ));
        rows.push((
            format!("Linux threads (RT, {fpl})"),
            fp,
            switch_cost(
                mc,
                OsPoint::LinuxLike,
                SwitchKind::ThreadInterrupt,
                true,
                fp,
            ),
        ));
        rows.push((
            format!("Aster threads (non-RT, {fpl})"),
            fp,
            switch_cost(
                mc,
                OsPoint::AsterLike,
                SwitchKind::ThreadInterrupt,
                false,
                fp,
            ),
        ));
        rows.push((
            format!("Aster threads (RT, {fpl})"),
            fp,
            switch_cost(
                mc,
                OsPoint::AsterLike,
                SwitchKind::ThreadInterrupt,
                true,
                fp,
            ),
        ));
        rows.push((
            format!("Threads (non-RT, {fpl})"),
            fp,
            switch_cost(mc, OsPoint::NkLike, SwitchKind::ThreadInterrupt, false, fp),
        ));
        rows.push((
            format!("Threads (RT, {fpl})"),
            fp,
            switch_cost(mc, OsPoint::NkLike, SwitchKind::ThreadInterrupt, true, fp),
        ));
        rows.push((
            format!("Fibers-Coop ({fpl})"),
            fp,
            switch_cost(mc, OsPoint::NkLike, SwitchKind::FiberCooperative, false, fp),
        ));
        rows.push((
            format!("Fibers-CompTime ({fpl})"),
            fp,
            switch_cost(
                mc,
                OsPoint::NkLike,
                SwitchKind::FiberCompilerTimed,
                false,
                fp,
            ),
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use interweave_core::machine::MachineConfig;

    fn knl() -> MachineConfig {
        MachineConfig::phi_knl()
    }

    #[test]
    fn linux_nonrt_fp_is_about_5000_cycles() {
        // §IV-C: "a (non-real-time) Linux user-level thread context-switch,
        // including floating point state, takes about 5000 cycles".
        let c = switch_cost(
            &knl(),
            OsPoint::LinuxLike,
            SwitchKind::ThreadInterrupt,
            false,
            true,
        );
        let t = c.total().get();
        assert!((4200..=5800).contains(&t), "linux non-RT FP = {t}");
    }

    #[test]
    fn nk_thread_is_about_half_of_linux() {
        let linux = switch_cost(
            &knl(),
            OsPoint::LinuxLike,
            SwitchKind::ThreadInterrupt,
            false,
            true,
        )
        .total();
        let nk = switch_cost(
            &knl(),
            OsPoint::NkLike,
            SwitchKind::ThreadInterrupt,
            false,
            true,
        )
        .total();
        let ratio = linux.as_f64() / nk.as_f64();
        assert!((1.5..=2.5).contains(&ratio), "linux/nk = {ratio:.2}");
    }

    #[test]
    fn comptime_fiber_fp_is_slightly_better_than_half_of_nk_thread() {
        // §IV-C: "slightly more than halved again"; caption: 2.3× lower.
        let nk = switch_cost(
            &knl(),
            OsPoint::NkLike,
            SwitchKind::ThreadInterrupt,
            false,
            true,
        )
        .total();
        let fib = switch_cost(
            &knl(),
            OsPoint::NkLike,
            SwitchKind::FiberCompilerTimed,
            false,
            true,
        )
        .total();
        let ratio = nk.as_f64() / fib.as_f64();
        assert!(
            (2.0..=3.0).contains(&ratio),
            "nk-thread/fiber (FP) = {ratio:.2}"
        );
    }

    #[test]
    fn comptime_fiber_nofp_is_about_4x_below_nk_thread() {
        let nk = switch_cost(
            &knl(),
            OsPoint::NkLike,
            SwitchKind::ThreadInterrupt,
            false,
            false,
        )
        .total();
        let fib = switch_cost(
            &knl(),
            OsPoint::NkLike,
            SwitchKind::FiberCompilerTimed,
            false,
            false,
        )
        .total();
        let ratio = nk.as_f64() / fib.as_f64();
        assert!(
            (3.2..=5.0).contains(&ratio),
            "nk-thread/fiber (no-FP) = {ratio:.2}"
        );
    }

    #[test]
    fn granularity_floor_below_600_cycles() {
        // §IV-C: "The granularity limit on this machine is less than 600
        // cycles".
        let fib = switch_cost(
            &knl(),
            OsPoint::NkLike,
            SwitchKind::FiberCompilerTimed,
            false,
            false,
        )
        .total();
        assert!(granularity_floor(fib).get() < 600, "floor = {fib}");
    }

    #[test]
    fn fp_state_becomes_the_bottleneck_at_fine_grain() {
        // §IV-C: the floor is "so low that floating point state management
        // becomes the bottleneck" — FP movement dominates a comp-timed FP
        // fiber switch.
        let b = switch_cost(
            &knl(),
            OsPoint::NkLike,
            SwitchKind::FiberCompilerTimed,
            false,
            true,
        );
        let rest = b.total() - b.fp;
        assert!(b.fp > rest, "fp {} vs rest {rest}", b.fp);
    }

    #[test]
    fn rt_is_cheaper_than_nonrt_for_linux_threads() {
        let nonrt = switch_cost(
            &knl(),
            OsPoint::LinuxLike,
            SwitchKind::ThreadInterrupt,
            false,
            true,
        )
        .total();
        let rt = switch_cost(
            &knl(),
            OsPoint::LinuxLike,
            SwitchKind::ThreadInterrupt,
            true,
            true,
        )
        .total();
        assert!(rt < nonrt);
    }

    #[test]
    fn time_check_is_the_only_delta_between_fiber_kinds() {
        let coop = switch_cost(
            &knl(),
            OsPoint::NkLike,
            SwitchKind::FiberCooperative,
            false,
            false,
        )
        .total();
        let comp = switch_cost(
            &knl(),
            OsPoint::NkLike,
            SwitchKind::FiberCompilerTimed,
            false,
            false,
        )
        .total();
        assert_eq!(comp - coop, knl().cost.time_check);
    }

    #[test]
    fn pipeline_interrupts_shrink_thread_switch() {
        // The §V-D ablation: delivering the timer as a pipeline interrupt
        // removes most of the dispatch cost from *thread* switches.
        let idt = switch_cost(
            &knl(),
            OsPoint::NkLike,
            SwitchKind::ThreadInterrupt,
            false,
            false,
        );
        let mc = knl().with_pipeline_interrupts();
        let pipe = switch_cost(
            &mc,
            OsPoint::NkLike,
            SwitchKind::ThreadInterrupt,
            false,
            false,
        );
        assert!(pipe.total() < idt.total());
        assert_eq!(idt.total() - pipe.total(), Cycles(1000 - 2));
    }

    #[test]
    fn fig4_rows_cover_the_parameter_space() {
        let rows = fig4_rows(&knl());
        assert_eq!(rows.len(), 16);
        assert!(rows.iter().any(|(l, _, _)| l.contains("Fibers-CompTime")));
        assert!(rows.iter().any(|(l, _, _)| l.contains("Aster threads")));
    }

    #[test]
    fn aster_thread_switch_sits_strictly_between_nk_and_linux() {
        // The framekernel premise: no user/kernel world switch (cheaper
        // than Linux) but safe-Rust scheduling and in-kernel domain
        // bookkeeping (dearer than raw NK) — for RT and non-RT alike.
        for &rt in &[false, true] {
            for &fp in &[false, true] {
                let k = SwitchKind::ThreadInterrupt;
                let nk = switch_cost(&knl(), OsPoint::NkLike, k, rt, fp).total();
                let aster = switch_cost(&knl(), OsPoint::AsterLike, k, rt, fp).total();
                let linux = switch_cost(&knl(), OsPoint::LinuxLike, k, rt, fp).total();
                assert!(
                    nk < aster && aster < linux,
                    "rt={rt} fp={fp}: nk {nk} aster {aster} linux {linux}"
                );
            }
        }
    }
}
