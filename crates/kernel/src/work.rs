//! The `Work` protocol: one workload body, many stacks.
//!
//! Every comparison in the paper runs *the same application* on two kernel
//! designs. [`Work`] is how the workspace guarantees that: a workload is a
//! resumable state machine that announces what it needs next — compute
//! cycles, a yield point, or a named kernel service — and each kernel model
//! prices and schedules those needs its own way.

use interweave_core::machine::CpuId;
use interweave_core::time::Cycles;

/// What a workload wants next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkStep {
    /// Run `0`-cost-free compute for this many cycles, then call `step`
    /// again. The kernel may preempt mid-slice; unconsumed cycles are
    /// re-offered.
    Compute(Cycles),
    /// A voluntary yield point (cooperative scheduling).
    Yield,
    /// Block on a kernel service identified by a workload-defined tag
    /// (barrier id, event channel, join target…). The embedding runtime
    /// interprets the tag.
    Block(u64),
    /// The workload is finished.
    Done,
}

/// A resumable workload body.
pub trait Work {
    /// Announce the next need. `cpu` and `now` let bodies make placement- or
    /// time-dependent decisions (e.g. emitting per-iteration work sizes).
    fn step(&mut self, cpu: CpuId, now: Cycles) -> WorkStep;
}

/// A fixed sequence of steps — the simplest `Work`, used in tests and
/// microbenches.
#[derive(Debug, Clone)]
pub struct ScriptedWork {
    steps: Vec<WorkStep>,
    at: usize,
}

impl ScriptedWork {
    /// A body that replays `steps`, then reports `Done` forever.
    pub fn new(steps: Vec<WorkStep>) -> ScriptedWork {
        ScriptedWork { steps, at: 0 }
    }
}

impl Work for ScriptedWork {
    fn step(&mut self, _cpu: CpuId, _now: Cycles) -> WorkStep {
        let s = self.steps.get(self.at).copied().unwrap_or(WorkStep::Done);
        self.at += 1;
        s
    }
}

/// A loop body: `iters` iterations of `per_iter` compute with a yield after
/// each — the canonical shape of a parallel worker between barriers.
#[derive(Debug, Clone)]
pub struct LoopWork {
    remaining: u64,
    per_iter: Cycles,
}

impl LoopWork {
    /// `iters` iterations of `per_iter` cycles each.
    pub fn new(iters: u64, per_iter: Cycles) -> LoopWork {
        LoopWork {
            remaining: iters,
            per_iter,
        }
    }
}

impl Work for LoopWork {
    fn step(&mut self, _cpu: CpuId, _now: Cycles) -> WorkStep {
        if self.remaining == 0 {
            return WorkStep::Done;
        }
        self.remaining -= 1;
        WorkStep::Compute(self.per_iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_replays_then_done() {
        let mut w = ScriptedWork::new(vec![
            WorkStep::Compute(Cycles(10)),
            WorkStep::Block(3),
            WorkStep::Done,
        ]);
        assert_eq!(w.step(0, Cycles::ZERO), WorkStep::Compute(Cycles(10)));
        assert_eq!(w.step(0, Cycles::ZERO), WorkStep::Block(3));
        assert_eq!(w.step(0, Cycles::ZERO), WorkStep::Done);
        assert_eq!(w.step(0, Cycles::ZERO), WorkStep::Done);
    }

    #[test]
    fn loop_work_counts_iterations() {
        let mut w = LoopWork::new(3, Cycles(5));
        let mut computed = Cycles::ZERO;
        loop {
            match w.step(0, Cycles::ZERO) {
                WorkStep::Compute(c) => computed += c,
                WorkStep::Done => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(computed, Cycles(15));
    }
}
