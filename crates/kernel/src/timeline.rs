//! Per-CPU clocks with busy/idle/stolen accounting.
//!
//! The multi-CPU experiments (heartbeat, OpenMP, blending) simulate each CPU
//! as a timeline that alternates useful work, runtime overhead, and — on the
//! commodity stack — stolen time (OS noise). [`CpuTimeline`] keeps those
//! categories separate so reports can say *where* the cycles went, which is
//! the essence of every "overhead %" number in the paper.

use interweave_core::time::Cycles;

/// Cycle-accounting categories for one CPU.
#[derive(Debug, Clone, Default)]
pub struct CpuTimeline {
    now: Cycles,
    /// Cycles spent on application work.
    pub busy: Cycles,
    /// Cycles spent in runtime/kernel machinery (switches, barriers,
    /// signal handling).
    pub overhead: Cycles,
    /// Cycles stolen by OS noise (ticks, daemons).
    pub stolen: Cycles,
    /// Cycles idle (waiting at barriers, blocked).
    pub idle: Cycles,
}

impl CpuTimeline {
    /// A fresh timeline at time zero.
    pub fn new() -> CpuTimeline {
        CpuTimeline::default()
    }

    /// Current local time.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Run application work for `c` cycles.
    pub fn work(&mut self, c: Cycles) {
        self.now += c;
        self.busy += c;
    }

    /// Spend `c` cycles in runtime/kernel machinery.
    pub fn spend(&mut self, c: Cycles) {
        self.now += c;
        self.overhead += c;
    }

    /// Lose `c` cycles to OS noise.
    pub fn steal(&mut self, c: Cycles) {
        self.now += c;
        self.stolen += c;
    }

    /// Wait (idle) until absolute time `t`; no-op if `t` is in the past.
    pub fn wait_until(&mut self, t: Cycles) {
        if t > self.now {
            self.idle += t - self.now;
            self.now = t;
        }
    }

    /// Jump to absolute time `t` attributing the gap to overhead (e.g.
    /// waiting inside a kernel primitive); no-op if `t` is in the past.
    pub fn spend_until(&mut self, t: Cycles) {
        if t > self.now {
            self.overhead += t - self.now;
            self.now = t;
        }
    }

    /// Fraction of elapsed time spent on application work.
    pub fn efficiency(&self) -> f64 {
        if self.now.get() == 0 {
            return 0.0;
        }
        self.busy.as_f64() / self.now.as_f64()
    }

    /// Fraction of elapsed time lost to overhead + noise.
    pub fn overhead_fraction(&self) -> f64 {
        if self.now.get() == 0 {
            return 0.0;
        }
        (self.overhead + self.stolen).as_f64() / self.now.as_f64()
    }
}

/// The maximum `now` across a set of timelines: the parallel completion
/// time (makespan).
pub fn makespan(cpus: &[CpuTimeline]) -> Cycles {
    cpus.iter().map(|c| c.now()).max().unwrap_or(Cycles::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_accumulate_independently() {
        let mut t = CpuTimeline::new();
        t.work(Cycles(100));
        t.spend(Cycles(20));
        t.steal(Cycles(30));
        t.wait_until(Cycles(200));
        assert_eq!(t.now(), Cycles(200));
        assert_eq!(t.busy, Cycles(100));
        assert_eq!(t.overhead, Cycles(20));
        assert_eq!(t.stolen, Cycles(30));
        assert_eq!(t.idle, Cycles(50));
    }

    #[test]
    fn efficiency_and_overhead_fractions() {
        let mut t = CpuTimeline::new();
        t.work(Cycles(80));
        t.spend(Cycles(15));
        t.steal(Cycles(5));
        assert!((t.efficiency() - 0.8).abs() < 1e-12);
        assert!((t.overhead_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn wait_until_past_is_noop() {
        let mut t = CpuTimeline::new();
        t.work(Cycles(100));
        t.wait_until(Cycles(50));
        assert_eq!(t.now(), Cycles(100));
        assert_eq!(t.idle, Cycles::ZERO);
    }

    #[test]
    fn makespan_is_max() {
        let mut a = CpuTimeline::new();
        let mut b = CpuTimeline::new();
        a.work(Cycles(10));
        b.work(Cycles(30));
        assert_eq!(makespan(&[a, b]), Cycles(30));
        assert_eq!(makespan(&[]), Cycles::ZERO);
    }
}
