//! Execution tracing: record scheduler intervals and export them in the
//! Chrome trace-event format (`chrome://tracing` / Perfetto).
//!
//! Interweaving arguments are about where cycles go; a visual timeline of
//! who ran when — tasks, switches, idle gaps — is the fastest way to sanity-
//! check a scheduling simulation. [`crate::executor::Executor`] records
//! [`TraceEvent`]s when tracing is enabled; [`chrome_trace_json`] renders
//! them as a standard trace file.

use interweave_core::machine::CpuId;
use interweave_core::time::Cycles;
use std::fmt::Write as _;

/// What happened during a traced interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A task computed.
    Run,
    /// The scheduler switched contexts (preemption or yield).
    Switch,
}

/// One traced interval on one CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// CPU the interval ran on.
    pub cpu: CpuId,
    /// Task id (`u64::MAX` for scheduler-internal intervals).
    pub task: u64,
    /// Interval start (cycles).
    pub start: Cycles,
    /// Interval end (cycles).
    pub end: Cycles,
    /// Interval kind.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Duration of the interval.
    pub fn duration(&self) -> Cycles {
        self.end - self.start
    }
}

/// Verify the fundamental trace invariant: intervals on one CPU never
/// overlap. Returns the first violating pair, if any.
pub fn find_overlap(events: &[TraceEvent]) -> Option<(TraceEvent, TraceEvent)> {
    let mut per_cpu: std::collections::BTreeMap<CpuId, Vec<TraceEvent>> = Default::default();
    for &e in events {
        per_cpu.entry(e.cpu).or_default().push(e);
    }
    for (_, mut evs) in per_cpu {
        evs.sort_by_key(|e| e.start);
        for w in evs.windows(2) {
            if w[1].start < w[0].end {
                return Some((w[0], w[1]));
            }
        }
    }
    None
}

/// Render events as a Chrome trace-event JSON document. Cycles are reported
/// as microsecond timestamps scaled by `cycles_per_us` (pass the machine
/// frequency in MHz; 1 keeps raw cycles).
pub fn chrome_trace_json(events: &[TraceEvent], cycles_per_us: u64) -> String {
    let scale = cycles_per_us.max(1) as f64;
    let mut out = String::from("[\n");
    for (i, e) in events.iter().enumerate() {
        let name = match e.kind {
            TraceKind::Run => format!("task{}", e.task),
            TraceKind::Switch => "switch".to_string(),
        };
        let _ = write!(
            out,
            "  {{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{}}}",
            match e.kind {
                TraceKind::Run => "run",
                TraceKind::Switch => "sched",
            },
            e.start.as_f64() / scale,
            e.duration().as_f64() / scale,
            e.cpu
        );
        out.push_str(if i + 1 == events.len() { "\n" } else { ",\n" });
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cpu: usize, task: u64, start: u64, end: u64) -> TraceEvent {
        TraceEvent {
            cpu,
            task,
            start: Cycles(start),
            end: Cycles(end),
            kind: TraceKind::Run,
        }
    }

    #[test]
    fn overlap_detection() {
        let ok = [ev(0, 1, 0, 10), ev(0, 2, 10, 20), ev(1, 3, 5, 15)];
        assert!(find_overlap(&ok).is_none());
        let bad = [ev(0, 1, 0, 10), ev(0, 2, 9, 20)];
        assert!(find_overlap(&bad).is_some());
    }

    #[test]
    fn json_shape() {
        let events = [ev(0, 7, 100, 300)];
        let json = chrome_trace_json(&events, 1);
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\":\"task7\""));
        assert!(json.contains("\"ts\":100.000"));
        assert!(json.contains("\"dur\":200.000"));
        assert!(json.contains("\"tid\":0"));
    }

    #[test]
    fn frequency_scaling() {
        let events = [ev(0, 1, 1400, 2800)];
        // 1400 MHz → 1400 cycles = 1 µs.
        let json = chrome_trace_json(&events, 1400);
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":1.000"));
    }
}
