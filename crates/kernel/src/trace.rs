//! Execution tracing — now a thin facade over the cross-layer span plane.
//!
//! The kernel-only `TraceEvent` grew into
//! [`interweave_core::telemetry::Span`]: the scheduler timeline is simply
//! the `Layer::Kernel` process track (one thread per CPU) of the unified
//! Chrome/Perfetto trace, alongside virtine invocations, fault recovery,
//! and coherence epochs from the other layers. The span type, the
//! non-overlap invariant ([`find_overlap`]), and the JSON exporter
//! ([`chrome_trace_json`]) all live in core now; this module re-exports
//! them so existing kernel-facing callers keep compiling.

pub use interweave_core::telemetry::{
    chrome_trace_json, find_overlap, well_bracketed, Span, SpanKind,
};

/// The old kernel-only trace record. `cpu` became [`Span::track`] and
/// `task` became [`Span::id`]; everything else maps one-to-one.
#[deprecated(note = "use interweave_core::telemetry::Span")]
pub type TraceEvent = Span;

/// The old kernel-only interval kind, a strict subset of [`SpanKind`].
#[deprecated(note = "use interweave_core::telemetry::SpanKind")]
pub type TraceKind = SpanKind;

#[cfg(test)]
mod tests {
    use super::*;
    use interweave_core::telemetry::Layer;
    use interweave_core::time::Cycles;

    fn ev(cpu: usize, task: u64, start: u64, end: u64) -> Span {
        Span {
            layer: Layer::Kernel,
            track: cpu,
            id: task,
            kind: SpanKind::Run,
            start: Cycles(start),
            end: Cycles(end),
        }
    }

    #[test]
    fn overlap_detection() {
        let ok = [ev(0, 1, 0, 10), ev(0, 2, 10, 20), ev(1, 3, 5, 15)];
        assert!(find_overlap(&ok).is_none());
        let bad = [ev(0, 1, 0, 10), ev(0, 2, 9, 20)];
        assert!(find_overlap(&bad).is_some());
    }

    #[test]
    fn json_shape() {
        let events = [ev(0, 7, 100, 300)];
        let json = chrome_trace_json(&events, 1);
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\":\"task7\""));
        assert!(json.contains("\"ts\":100.000"));
        assert!(json.contains("\"dur\":200.000"));
        assert!(json.contains("\"tid\":0"));
    }

    #[test]
    fn frequency_scaling() {
        let events = [ev(0, 1, 1400, 2800)];
        // 1400 MHz → 1400 cycles = 1 µs.
        let json = chrome_trace_json(&events, 1400);
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":1.000"));
    }
}
