//! Interrupt steering (§III): "interrupts are fully steerable, and thus can
//! largely be avoided on most hardware threads."
//!
//! A routing table maps IRQ classes to target CPUs. The Nautilus policy
//! concentrates every steerable interrupt on a housekeeping CPU, leaving
//! worker CPUs interrupt-free; the commodity default spreads device
//! interrupts round-robin (irqbalance). The model quantifies what workers
//! gain: cycles per second stolen per CPU under each policy, the number the
//! OpenMP noise model and Fig. 3 jitter ultimately trace back to.

use interweave_core::interrupt::IrqClass;
use interweave_core::machine::{CpuId, MachineConfig};
use interweave_core::time::Cycles;
use std::collections::BTreeMap;

/// Steering policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteeringPolicy {
    /// All steerable IRQs to one housekeeping CPU (Nautilus).
    Housekeeping(CpuId),
    /// Round-robin across all CPUs (irqbalance-like default).
    Spread,
}

/// An interrupt source: class, rate, and handler cost.
#[derive(Debug, Clone, Copy)]
pub struct IrqSource {
    /// Interrupt class.
    pub class: IrqClass,
    /// Interrupts per second.
    pub rate_hz: u64,
    /// Handler cycles per interrupt (dispatch added separately).
    pub handler: Cycles,
}

/// A configured routing table.
#[derive(Debug, Clone)]
pub struct Routing {
    /// Assignment: source index → CPU.
    pub route: Vec<CpuId>,
    policy: SteeringPolicy,
}

/// Build the routing for `sources` on `mc` under `policy`.
pub fn route(sources: &[IrqSource], mc: &MachineConfig, policy: SteeringPolicy) -> Routing {
    let route = match policy {
        SteeringPolicy::Housekeeping(hk) => {
            assert!(hk < mc.cores);
            // The LAPIC timer is per-CPU and cannot leave its CPU; every
            // other class steers to the housekeeping CPU.
            sources
                .iter()
                .enumerate()
                .map(|(i, s)| match s.class {
                    IrqClass::LapicTimer => i % mc.cores, // stays local
                    _ => hk,
                })
                .collect()
        }
        SteeringPolicy::Spread => (0..sources.len()).map(|i| i % mc.cores).collect(),
    };
    Routing { route, policy }
}

impl Routing {
    /// The policy this routing implements.
    pub fn policy(&self) -> SteeringPolicy {
        self.policy
    }
}

/// Cycles per second of interrupt work each CPU absorbs under a routing.
pub fn stolen_per_cpu(sources: &[IrqSource], routing: &Routing, mc: &MachineConfig) -> Vec<u64> {
    let mut per: BTreeMap<CpuId, u64> = (0..mc.cores).map(|c| (c, 0)).collect();
    let dispatch = mc.dispatch_cost() + mc.cost.intr_return;
    for (i, s) in sources.iter().enumerate() {
        let cpu = routing.route[i];
        let per_irq = dispatch + s.handler;
        *per.get_mut(&cpu).expect("cpu in range") += s.rate_hz * per_irq.get();
    }
    per.into_values().collect()
}

/// A representative device-interrupt load: NIC rx/tx queues, NVMe
/// completion queues, and per-CPU timers.
pub fn typical_sources(cores: usize) -> Vec<IrqSource> {
    let mut v = vec![
        IrqSource {
            class: IrqClass::Device,
            rate_hz: 25_000, // NIC rx
            handler: Cycles(2_500),
        },
        IrqSource {
            class: IrqClass::Device,
            rate_hz: 12_000, // NIC tx completions
            handler: Cycles(1_200),
        },
        IrqSource {
            class: IrqClass::Device,
            rate_hz: 18_000, // NVMe cq
            handler: Cycles(1_800),
        },
        IrqSource {
            class: IrqClass::Device,
            rate_hz: 3_000, // misc (USB, AHCI…)
            handler: Cycles(900),
        },
    ];
    // One local timer per CPU (modest rate under NO_HZ).
    for _ in 0..cores {
        v.push(IrqSource {
            class: IrqClass::LapicTimer,
            rate_hz: 250,
            handler: Cycles(1_500),
        });
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MachineConfig {
        MachineConfig::xeon_server_2s().with_cores(8)
    }

    #[test]
    fn housekeeping_leaves_workers_nearly_silent() {
        let mc = mc();
        let sources = typical_sources(mc.cores);
        let hk = route(&sources, &mc, SteeringPolicy::Housekeeping(0));
        let stolen = stolen_per_cpu(&sources, &hk, &mc);
        // Workers only keep their local timer.
        let timer_only = 250 * (mc.dispatch_cost() + mc.cost.intr_return + Cycles(1_500)).get();
        for (c, &s) in stolen.iter().enumerate().skip(1) {
            assert_eq!(s, timer_only, "cpu {c} absorbs device IRQs");
        }
        // The housekeeping CPU pays for everyone.
        assert!(stolen[0] > 50 * timer_only);
    }

    #[test]
    fn spread_pollutes_every_cpu() {
        let mc = mc();
        let sources = typical_sources(mc.cores);
        let sp = route(&sources, &mc, SteeringPolicy::Spread);
        let stolen = stolen_per_cpu(&sources, &sp, &mc);
        let polluted = stolen
            .iter()
            .filter(|&&s| {
                s > 250 * (mc.dispatch_cost() + mc.cost.intr_return + Cycles(1_500)).get()
            })
            .count();
        assert!(polluted >= 4, "only {polluted} CPUs polluted");
    }

    #[test]
    fn worker_noise_gap_matches_the_papers_story() {
        // §III + §V-A: steering is one reason kernel-mode OpenMP workers see
        // no noise. Compare a worker CPU's stolen fraction under the two
        // policies at 3.3 GHz.
        let mc = mc();
        let sources = typical_sources(mc.cores);
        let hk = stolen_per_cpu(
            &sources,
            &route(&sources, &mc, SteeringPolicy::Housekeeping(0)),
            &mc,
        );
        let sp = stolen_per_cpu(&sources, &route(&sources, &mc, SteeringPolicy::Spread), &mc);
        let hz = mc.freq.hz() as f64;
        let worker_hk = hk[3] as f64 / hz;
        let worker_sp = sp[3] as f64 / hz;
        assert!(worker_hk < 0.001, "steered worker loses {worker_hk:.4}");
        assert!(
            worker_sp > 5.0 * worker_hk,
            "spread {worker_sp:.4} vs steered {worker_hk:.4}"
        );
    }

    #[test]
    fn conservation_across_policies() {
        // Steering moves work; it does not create or destroy it.
        let mc = mc();
        let sources = typical_sources(mc.cores);
        let a: u64 = stolen_per_cpu(
            &sources,
            &route(&sources, &mc, SteeringPolicy::Housekeeping(0)),
            &mc,
        )
        .iter()
        .sum();
        let b: u64 = stolen_per_cpu(&sources, &route(&sources, &mc, SteeringPolicy::Spread), &mc)
            .iter()
            .sum();
        assert_eq!(a, b);
    }

    #[test]
    fn pipeline_interrupts_shrink_the_whole_budget() {
        let mc = mc();
        let pipe = mc.clone().with_pipeline_interrupts();
        let sources = typical_sources(mc.cores);
        let total = |m: &MachineConfig| -> u64 {
            stolen_per_cpu(&sources, &route(&sources, m, SteeringPolicy::Spread), m)
                .iter()
                .sum()
        };
        assert!(total(&pipe) < total(&mc));
    }
}
