//! OS personality models: the kernel axis of the stack space.
//!
//! Each experiment in the paper compares "the same workload on N stacks".
//! [`OsModel`] is the seam: it prices every primitive the runtimes use —
//! thread management, remote wakeups, barriers, out-of-band event delivery,
//! timers — and models the commodity stack's *timing pathologies* (timer
//! slack, delivery jitter, background OS noise) that the interwoven stack
//! eliminates. The numbers compose from [`MachineConfig`]'s cost model so a
//! hardware change (e.g. §V-D pipeline interrupts) flows into every kernel.
//!
//! Three personalities span the `OsPoint` axis: [`NkModel`] (Nautilus-like,
//! §III), [`AsterModel`] (an Asterinas-style safe-Rust framekernel — the
//! mid-point of ROADMAP item 4), and [`LinuxModel`] (the commodity layered
//! kernel). [`model_for`] is the single materialization point the compose
//! layer and the benches share.

use crate::buddy::{AllocError, NumaAllocator};
use crate::threads::{switch_cost, SwitchKind};
use interweave_core::machine::MachineConfig;
use interweave_core::rng::SplitMix64;
use interweave_core::stack::OsPoint;
use interweave_core::time::Cycles;
use interweave_core::FaultPlan;

/// A background-noise event on one CPU: the kernel steals `duration` cycles
/// (timer tick work, softirqs, kworker activity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoiseEvent {
    /// Cycles from now until the noise begins.
    pub after: Cycles,
    /// Cycles stolen from the running computation.
    pub duration: Cycles,
}

/// Kernel personality: primitive costs and timing behaviour.
///
/// Models are plain cost tables (`Send + Sync`), so a composed stack can be
/// shared across the harness's parallel sweep workers.
pub trait OsModel: Send + Sync {
    /// Display name ("Linux", "Nautilus").
    fn name(&self) -> &'static str;

    /// The machine this kernel runs on.
    fn machine(&self) -> &MachineConfig;

    /// Cost to create and start a thread, charged to the creator.
    fn thread_create(&self) -> Cycles;

    /// Cost to reap a finished thread.
    fn thread_join(&self) -> Cycles;

    /// Waking a blocked thread on another CPU: `(cost to the waker,
    /// latency until the target runs)`.
    fn wake_remote(&self) -> (Cycles, Cycles);

    /// Per-participant cost of one barrier episode when waiters spin.
    fn barrier_spin(&self) -> Cycles;

    /// Per-participant cost of one barrier episode when waiters block
    /// (what a user-level runtime must eventually do).
    fn barrier_block(&self) -> Cycles;

    /// Cost on the *receiving* CPU of one out-of-band event (heartbeat
    /// signal / IPI) from its arrival to the handler's first useful
    /// instruction and back.
    fn event_deliver(&self) -> Cycles;

    /// Cost on the *sending* side of an out-of-band event to one CPU.
    fn event_send(&self) -> Cycles;

    /// The smallest timer period this kernel can honour per CPU. Below
    /// this, timers coalesce or fall behind (Fig. 3's Linux undershoot).
    fn timer_min_period(&self) -> Cycles;

    /// Sample the firing error of one timer event (slack/jitter). Zero for
    /// a LAPIC deadline timer owned by the kernel.
    fn timer_jitter(&self, rng: &mut SplitMix64) -> Cycles;

    /// Sample the next background-noise event for one CPU, or `None` for a
    /// noise-free kernel (§III: interrupts are steerable and "can largely
    /// be avoided on most hardware threads").
    fn sample_noise(&self, rng: &mut SplitMix64) -> Option<NoiseEvent>;

    /// Context-switch cost in this kernel (threads, interrupt-timed).
    fn ctx_switch(&self, rt: bool, fp: bool) -> Cycles;

    /// An uncontended mutex lock+unlock.
    fn mutex_uncontended(&self) -> Cycles;
}

/// The Nautilus-like kernel (§III).
#[derive(Debug, Clone)]
pub struct NkModel {
    /// The machine this kernel runs on.
    pub mc: MachineConfig,
}

impl NkModel {
    /// Nautilus on `mc`.
    pub fn new(mc: MachineConfig) -> NkModel {
        NkModel { mc }
    }
}

impl OsModel for NkModel {
    fn name(&self) -> &'static str {
        "Nautilus"
    }

    fn machine(&self) -> &MachineConfig {
        &self.mc
    }

    fn thread_create(&self) -> Cycles {
        // Stack from the per-CPU buddy zone + TCB init + runqueue insert;
        // no syscall, no page-table setup ("orders of magnitude faster",
        // §III).
        self.mc.cost.sched_pick_nk + Cycles(900)
    }

    fn thread_join(&self) -> Cycles {
        Cycles(400)
    }

    fn wake_remote(&self) -> (Cycles, Cycles) {
        // Direct IPI: sender writes the ICR; receiver pays dispatch.
        let c = &self.mc.cost;
        (
            c.ipi_send,
            c.ipi_latency + self.mc.dispatch_cost() + c.intr_return,
        )
    }

    fn barrier_spin(&self) -> Cycles {
        // Cache-line ping on a shared counter; no kernel involvement.
        Cycles(120)
    }

    fn barrier_block(&self) -> Cycles {
        // Kernel-mode block/wake without any crossing.
        Cycles(600)
    }

    fn event_deliver(&self) -> Cycles {
        // Fig. 2 (left): IPI arrives, handler promotes, done. Dispatch +
        // short deterministic handler + return.
        self.mc.dispatch_cost() + Cycles(200) + self.mc.cost.intr_return
    }

    fn event_send(&self) -> Cycles {
        self.mc.cost.ipi_send
    }

    fn timer_min_period(&self) -> Cycles {
        // LAPIC one-shot reprogramming plus delivery: the hardware floor.
        self.mc.cost.timer_program + self.mc.dispatch_cost() + Cycles(200)
    }

    fn timer_jitter(&self, _rng: &mut SplitMix64) -> Cycles {
        // Deterministic path lengths (§III) — the LAPIC deadline timer
        // fires on its programmed cycle.
        Cycles::ZERO
    }

    fn sample_noise(&self, _rng: &mut SplitMix64) -> Option<NoiseEvent> {
        None
    }

    fn ctx_switch(&self, rt: bool, fp: bool) -> Cycles {
        switch_cost(
            &self.mc,
            OsPoint::NkLike,
            SwitchKind::ThreadInterrupt,
            rt,
            fp,
        )
        .total()
    }

    fn mutex_uncontended(&self) -> Cycles {
        Cycles(60) // one locked RMW + branch
    }
}

/// Thread creation with a real stack allocation: charge the kernel's
/// `thread_create` cost *and* carve the stack out of `alloc`'s `home_zone`
/// (falling back per §III's zone policy), optionally under the fault plane.
/// Returns `(stack_base, creation_cost)`; on exhaustion — real or injected —
/// the typed [`AllocError`] reaches the caller, who degrades (sheds the
/// task) instead of panicking.
pub fn thread_create_with_stack(
    os: &dyn OsModel,
    alloc: &mut NumaAllocator,
    home_zone: usize,
    stack_bytes: u64,
    faults: Option<&mut FaultPlan>,
) -> Result<(u64, Cycles), AllocError> {
    let (base, _zone) = match faults {
        Some(plan) => alloc.alloc_faulted(home_zone, stack_bytes, plan)?,
        None => alloc.alloc(home_zone, stack_bytes)?,
    };
    Ok((base, os.thread_create()))
}

/// Tunable pathology parameters for the Linux-like kernel.
#[derive(Debug, Clone)]
pub struct LinuxParams {
    /// Scheduler tick rate (Hz). Each tick steals cycles on every CPU.
    pub hz: u64,
    /// Mean cycles stolen per scheduler tick.
    pub tick_work: Cycles,
    /// hrtimer slack / wakeup latency spread, in microseconds: timer events
    /// fire late by U(0, slack).
    pub timer_slack_us: f64,
    /// Mean interval between background daemon/kworker noise events, µs.
    pub noise_interval_us: f64,
    /// Mean duration of one noise event, µs.
    pub noise_duration_us: f64,
    /// Minimum sustainable per-CPU signal period, µs: below this the
    /// signal-delivery machinery saturates (Fig. 3's undershoot at ♥=20 µs).
    pub min_signal_period_us: f64,
}

impl Default for LinuxParams {
    fn default() -> LinuxParams {
        LinuxParams {
            hz: 250,
            tick_work: Cycles(9_000),
            timer_slack_us: 12.0,
            noise_interval_us: 4_000.0,
            noise_duration_us: 45.0,
            min_signal_period_us: 38.0,
        }
    }
}

/// The commodity layered kernel.
#[derive(Debug, Clone)]
pub struct LinuxModel {
    /// The machine this kernel runs on.
    pub mc: MachineConfig,
    /// Pathology parameters.
    pub p: LinuxParams,
}

impl LinuxModel {
    /// Linux on `mc` with default parameters.
    pub fn new(mc: MachineConfig) -> LinuxModel {
        LinuxModel {
            mc,
            p: LinuxParams::default(),
        }
    }
}

impl OsModel for LinuxModel {
    fn name(&self) -> &'static str {
        "Linux"
    }

    fn machine(&self) -> &MachineConfig {
        &self.mc
    }

    fn thread_create(&self) -> Cycles {
        // clone(2): crossing + mm/bookkeeping + scheduler insertion.
        self.mc.cost.kernel_crossing() + Cycles(14_000)
    }

    fn thread_join(&self) -> Cycles {
        self.mc.cost.kernel_crossing() + Cycles(2_500)
    }

    fn wake_remote(&self) -> (Cycles, Cycles) {
        // futex WAKE: syscall on the waker; reschedule IPI + fair-scheduler
        // pick + return-to-user on the target.
        let c = &self.mc.cost;
        let waker = c.kernel_crossing() + Cycles(800);
        let latency = c.ipi_latency
            + self.mc.dispatch_cost()
            + c.sched_pick_fair
            + c.intr_return
            + c.mitigation_flush;
        (waker, latency)
    }

    fn barrier_spin(&self) -> Cycles {
        // User-space spin is possible but each participant still suffers
        // preemption risk; the base cost matches NK's cache-line ping.
        Cycles(120)
    }

    fn barrier_block(&self) -> Cycles {
        // futex WAIT + WAKE round trip.
        self.mc.cost.kernel_crossing() * 2 + Cycles(1_200)
    }

    fn event_deliver(&self) -> Cycles {
        // Fig. 2 (right): kernel timer fires, signal is queued, the target
        // is interrupted, a user signal frame is built, the handler runs,
        // sigreturn crosses back.
        let c = &self.mc.cost;
        self.mc.dispatch_cost() + c.signal_round_trip() + c.intr_return
    }

    fn event_send(&self) -> Cycles {
        // tgkill/timer_settime style: crossing + signal queueing.
        self.mc.cost.kernel_crossing() + Cycles(700)
    }

    fn timer_min_period(&self) -> Cycles {
        self.mc.freq.cycles_per_us(self.p.min_signal_period_us)
    }

    fn timer_jitter(&self, rng: &mut SplitMix64) -> Cycles {
        // hrtimer slack: uniformly late by up to `timer_slack_us`.
        let us = rng.f64() * self.p.timer_slack_us;
        self.mc.freq.cycles_per_us(us)
    }

    fn sample_noise(&self, rng: &mut SplitMix64) -> Option<NoiseEvent> {
        // Two noise sources folded into one exponential process: scheduler
        // ticks (regular, small) and daemon/kworker activity (rare, large).
        // The tick component uses the configured HZ; the daemon component
        // is exponential.
        let tick_period_us = 1e6 / self.p.hz as f64;
        let next_tick = rng.f64() * tick_period_us; // phase-randomized
        let next_daemon = rng.exponential(self.p.noise_interval_us);
        let (after_us, dur) = if next_tick < next_daemon {
            (next_tick, self.p.tick_work)
        } else {
            (
                next_daemon,
                self.mc
                    .freq
                    .cycles_per_us(rng.exponential(self.p.noise_duration_us)),
            )
        };
        Some(NoiseEvent {
            after: self.mc.freq.cycles_per_us(after_us),
            duration: dur,
        })
    }

    fn ctx_switch(&self, rt: bool, fp: bool) -> Cycles {
        switch_cost(
            &self.mc,
            OsPoint::LinuxLike,
            SwitchKind::ThreadInterrupt,
            rt,
            fp,
        )
        .total()
    }

    fn mutex_uncontended(&self) -> Cycles {
        Cycles(90) // futex fast path stays in user space but is fatter
    }
}

/// Tunable parameters for the Aster-like framekernel.
#[derive(Debug, Clone)]
pub struct AsterParams {
    /// Mean interval between background maintenance noise events, µs. The
    /// framekernel has no scheduler tick stealing cycles on every CPU, but
    /// it still runs kernel worker tasks (reclaim, RCU-style grace periods)
    /// occasionally — far rarer than Linux's daemon activity.
    pub noise_interval_us: f64,
    /// Mean duration of one maintenance event, µs (short: safe-Rust
    /// housekeeping, no world switch to amplify it).
    pub noise_duration_us: f64,
}

impl Default for AsterParams {
    fn default() -> AsterParams {
        AsterParams {
            noise_interval_us: 20_000.0,
            noise_duration_us: 6.0,
        }
    }
}

/// The Asterinas-style framekernel (ROADMAP item 4): one safe-Rust kernel
/// image, OSTD-style privileged core plus de-privileged services, real
/// page-table isolation between domains — but no user/kernel world switch
/// on the task path. Every primitive is a bounds-checked call, not a
/// syscall, so costs sit between [`NkModel`] and [`LinuxModel`] — with one
/// honest exception called out on [`OsModel::mutex_uncontended`].
#[derive(Debug, Clone)]
pub struct AsterModel {
    /// The machine this kernel runs on.
    pub mc: MachineConfig,
    /// Pathology parameters.
    pub p: AsterParams,
}

impl AsterModel {
    /// The framekernel on `mc` with default parameters.
    pub fn new(mc: MachineConfig) -> AsterModel {
        AsterModel {
            mc,
            p: AsterParams::default(),
        }
    }
}

impl OsModel for AsterModel {
    fn name(&self) -> &'static str {
        "Aster"
    }

    fn machine(&self) -> &MachineConfig {
        &self.mc
    }

    fn thread_create(&self) -> Cycles {
        // No syscall (between: skips Linux's crossing) but the frame
        // allocator hands out typed frames and the new task gets page-table
        // entries — real isolation work NK's identity-mapped spawn never
        // does. ~2.6× NK, ~5× below Linux.
        self.mc.cost.sched_pick_nk + Cycles(2_600)
    }

    fn thread_join(&self) -> Cycles {
        // Reap through a checked waitqueue API: no crossing, but the TCB
        // and its frames go back through the typed allocator.
        Cycles(900)
    }

    fn wake_remote(&self) -> (Cycles, Cycles) {
        // The waker calls a kernel service in-process: ICR write behind a
        // bounds-checked accessor (no syscall, unlike futex WAKE). The
        // target pays dispatch plus the safe scheduler's pick — but no
        // return-to-user mitigation flush.
        let c = &self.mc.cost;
        let waker = c.ipi_send + Cycles(250);
        let latency = c.ipi_latency
            + self.mc.dispatch_cost()
            + c.sched_pick_nk
            + crate::threads::ASTER_SCHED_OVERHEAD
            + c.intr_return;
        (waker, latency)
    }

    fn barrier_spin(&self) -> Cycles {
        // Cache-line ping on a shared counter — user-mode arithmetic is the
        // same on every kernel.
        Cycles(120)
    }

    fn barrier_block(&self) -> Cycles {
        // In-kernel block/wake through the checked waitqueue: dearer than
        // NK's raw queue ops, far below Linux's futex round trip (no
        // crossings at all).
        Cycles(1_100)
    }

    fn event_deliver(&self) -> Cycles {
        // IPI arrives in the one shared address space: dispatch, a
        // bounds-checked handler trampoline (between NK's raw +200 and
        // Linux's full signal-frame round trip), return.
        self.mc.dispatch_cost() + Cycles(600) + self.mc.cost.intr_return
    }

    fn event_send(&self) -> Cycles {
        // ICR write through the checked accessor — no syscall, small
        // surcharge over NK's raw write.
        self.mc.cost.ipi_send + Cycles(150)
    }

    fn timer_min_period(&self) -> Cycles {
        // The framekernel owns the LAPIC like NK does; reprogramming goes
        // through a checked driver API, so the floor is slightly higher
        // but still far below Linux's signal-machinery saturation point.
        self.mc.cost.timer_program + self.mc.dispatch_cost() + Cycles(600)
    }

    fn timer_jitter(&self, _rng: &mut SplitMix64) -> Cycles {
        // Kernel-owned deadline timer: fires on its programmed cycle, like
        // NK — there is no hrtimer slack layer to defer it.
        Cycles::ZERO
    }

    fn sample_noise(&self, rng: &mut SplitMix64) -> Option<NoiseEvent> {
        // No per-CPU scheduler tick (tickless core like NK), but kernel
        // worker tasks still run occasionally: rare, short exponential
        // events — enough to give Fig. 3 a small nonzero CV between NK's
        // zero and Linux's tick-dominated spread.
        let after_us = rng.exponential(self.p.noise_interval_us);
        let dur_us = rng.exponential(self.p.noise_duration_us);
        Some(NoiseEvent {
            after: self.mc.freq.cycles_per_us(after_us),
            duration: self.mc.freq.cycles_per_us(dur_us),
        })
    }

    fn ctx_switch(&self, rt: bool, fp: bool) -> Cycles {
        switch_cost(
            &self.mc,
            OsPoint::AsterLike,
            SwitchKind::ThreadInterrupt,
            rt,
            fp,
        )
        .total()
    }

    fn mutex_uncontended(&self) -> Cycles {
        // The honest non-between point: the safe RAII lock (guard object,
        // poison check, bounds-checked queue touch) is *fatter* than
        // Linux's hand-tuned futex fast path, which stays in user space
        // and is pure unsafe assembly. Safety costs a few cycles even when
        // uncontended.
        Cycles(95)
    }
}

/// Materialize the [`OsModel`] for one point of the OS axis — the single
/// seam the compose layer, the heartbeat simulators, and the benches share.
pub fn model_for(os: OsPoint, mc: MachineConfig) -> Box<dyn OsModel> {
    match os {
        OsPoint::NkLike => Box::new(NkModel::new(mc)),
        OsPoint::AsterLike => Box::new(AsterModel::new(mc)),
        OsPoint::LinuxLike => Box::new(LinuxModel::new(mc)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interweave_core::machine::MachineConfig;

    fn models() -> (NkModel, LinuxModel) {
        let mc = MachineConfig::xeon_server_2s();
        (NkModel::new(mc.clone()), LinuxModel::new(mc))
    }

    #[test]
    fn nk_thread_create_is_orders_of_magnitude_faster() {
        // §III: "primitives such as thread management and event signaling
        // are orders of magnitude faster".
        let (nk, lx) = models();
        let ratio = lx.thread_create().as_f64() / nk.thread_create().as_f64();
        assert!(ratio > 10.0, "linux/nk thread create = {ratio:.1}");
    }

    #[test]
    fn nk_event_delivery_beats_signals() {
        let (nk, lx) = models();
        assert!(nk.event_deliver() < lx.event_deliver());
        let ratio = lx.event_deliver().as_f64() / nk.event_deliver().as_f64();
        assert!(ratio > 2.0, "delivery ratio {ratio:.1}");
    }

    #[test]
    fn nk_has_no_noise_or_jitter() {
        let (nk, _) = models();
        let mut rng = SplitMix64::new(1);
        assert!(nk.sample_noise(&mut rng).is_none());
        assert_eq!(nk.timer_jitter(&mut rng), Cycles::ZERO);
    }

    #[test]
    fn linux_noise_is_bounded_and_recurrent() {
        let (_, lx) = models();
        let mut rng = SplitMix64::new(2);
        for _ in 0..100 {
            let n = lx.sample_noise(&mut rng).expect("linux always has noise");
            assert!(n.duration.get() > 0);
            // Noise must arrive within a couple of tick periods.
            let tick = lx.mc.freq.cycles_per_us(1e6 / lx.p.hz as f64);
            assert!(
                n.after <= tick * 3,
                "noise after {} > {}",
                n.after,
                tick * 3
            );
        }
    }

    #[test]
    fn linux_timer_jitter_spreads_within_slack() {
        let (_, lx) = models();
        let mut rng = SplitMix64::new(3);
        let slack = lx.mc.freq.cycles_per_us(lx.p.timer_slack_us);
        let mut max_seen = Cycles::ZERO;
        for _ in 0..1000 {
            let j = lx.timer_jitter(&mut rng);
            assert!(j <= slack);
            max_seen = max_seen.max(j);
        }
        // The distribution actually uses its range.
        assert!(max_seen.get() > slack.get() / 2);
    }

    #[test]
    fn min_timer_period_nk_below_20us_linux_above() {
        // Fig. 3: Nautilus sustains ♥ = 20 µs; Linux cannot.
        let (nk, lx) = models();
        let f = nk.mc.freq;
        let h20 = f.cycles_per_us(20.0);
        assert!(
            nk.timer_min_period() < h20,
            "nk floor {}",
            nk.timer_min_period()
        );
        assert!(
            lx.timer_min_period() > h20,
            "lx floor {}",
            lx.timer_min_period()
        );
        // …but Linux can sustain 100 µs.
        let h100 = f.cycles_per_us(100.0);
        assert!(lx.timer_min_period() < h100);
    }

    #[test]
    fn thread_create_with_stack_surfaces_oom_as_result() {
        use crate::threads::DEFAULT_STACK_BYTES;
        use interweave_core::FaultConfig;
        let (nk, _) = models();
        let mut alloc = NumaAllocator::new(1, 6, 9); // 32 KiB zone
                                                     // First spawn succeeds and charges the NK creation cost.
        let (base, cost) =
            thread_create_with_stack(&nk, &mut alloc, 0, DEFAULT_STACK_BYTES, None).unwrap();
        assert_eq!(cost, nk.thread_create());
        // Exhaust the zone: the next spawn degrades to a typed error.
        let (_b2, _) =
            thread_create_with_stack(&nk, &mut alloc, 0, DEFAULT_STACK_BYTES, None).unwrap();
        assert_eq!(
            thread_create_with_stack(&nk, &mut alloc, 0, DEFAULT_STACK_BYTES, None),
            Err(AllocError::OutOfMemory)
        );
        // Injected failure takes the same typed path without touching state.
        alloc.free(base).unwrap();
        let mut cfg = FaultConfig::quiet(11);
        cfg.alloc_fail = 1.0;
        let mut plan = interweave_core::FaultPlan::new(cfg);
        assert_eq!(
            thread_create_with_stack(&nk, &mut alloc, 0, DEFAULT_STACK_BYTES, Some(&mut plan)),
            Err(AllocError::OutOfMemory)
        );
        assert_eq!(alloc.zone(0).n_live(), 1);
    }

    #[test]
    fn wake_latency_favours_nk() {
        let (nk, lx) = models();
        let (_, nkl) = nk.wake_remote();
        let (_, lxl) = lx.wake_remote();
        assert!(nkl < lxl);
    }

    #[test]
    fn aster_sits_between_the_endpoints_on_most_primitives() {
        // ROADMAP item 4: the framekernel is a genuine mid-point — no
        // syscalls (cheaper than Linux) but real isolation and checked
        // fast paths (dearer than NK) on every kernel-mediated primitive.
        let (nk, lx) = models();
        let aster = AsterModel::new(nk.mc.clone());
        let between = |name: &str, a: Cycles, b: Cycles, c: Cycles| {
            assert!(a < b && b < c, "{name}: nk {a} aster {b} linux {c}");
        };
        between(
            "create",
            nk.thread_create(),
            aster.thread_create(),
            lx.thread_create(),
        );
        between(
            "join",
            nk.thread_join(),
            aster.thread_join(),
            lx.thread_join(),
        );
        between(
            "wake cost",
            nk.wake_remote().0,
            aster.wake_remote().0,
            lx.wake_remote().0,
        );
        between(
            "wake latency",
            nk.wake_remote().1,
            aster.wake_remote().1,
            lx.wake_remote().1,
        );
        between(
            "barrier",
            nk.barrier_block(),
            aster.barrier_block(),
            lx.barrier_block(),
        );
        between(
            "deliver",
            nk.event_deliver(),
            aster.event_deliver(),
            lx.event_deliver(),
        );
        between("send", nk.event_send(), aster.event_send(), lx.event_send());
        between(
            "timer floor",
            nk.timer_min_period(),
            aster.timer_min_period(),
            lx.timer_min_period(),
        );
        between(
            "ctx switch",
            nk.ctx_switch(false, true),
            aster.ctx_switch(false, true),
            lx.ctx_switch(false, true),
        );
    }

    #[test]
    fn aster_mutex_is_the_honest_exception() {
        // The one primitive where the mid-point does NOT fall between the
        // endpoints: the safe RAII lock's checked fast path is fatter than
        // the futex fast path (pure user-space unsafe assembly).
        let (nk, lx) = models();
        let aster = AsterModel::new(nk.mc.clone());
        assert!(aster.mutex_uncontended() > lx.mutex_uncontended());
        assert!(lx.mutex_uncontended() > nk.mutex_uncontended());
    }

    #[test]
    fn aster_owns_its_timer_but_keeps_light_noise() {
        let (nk, lx) = models();
        let aster = AsterModel::new(nk.mc.clone());
        let mut rng = SplitMix64::new(7);
        // Kernel-owned LAPIC deadline timer: zero jitter, sub-20µs floor
        // (Fig. 3: the framekernel sustains ♥ = 20 µs like NK).
        assert_eq!(aster.timer_jitter(&mut rng), Cycles::ZERO);
        assert!(aster.timer_min_period() < aster.mc.freq.cycles_per_us(20.0));
        // Maintenance noise exists but is far rarer and shorter than
        // Linux's: compare means over the same number of samples.
        let mean_after = |os: &dyn OsModel, seed| {
            let mut rng = SplitMix64::new(seed);
            let total: u64 = (0..512)
                .map(|_| os.sample_noise(&mut rng).expect("noisy kernel").after.get())
                .sum();
            total / 512
        };
        assert!(mean_after(&aster, 9) > 5 * mean_after(&lx, 9));
    }

    #[test]
    fn model_for_materializes_every_axis_point() {
        use interweave_core::stack::OsPoint;
        let mc = MachineConfig::xeon_server_2s();
        for os in OsPoint::ALL {
            let m = model_for(os, mc.clone());
            assert_eq!(m.name(), os.name());
            assert_eq!(m.machine().name, mc.name);
        }
    }

    #[test]
    fn pipeline_interrupts_cut_nk_event_delivery() {
        let mc = MachineConfig::xeon_server_2s();
        let nk = NkModel::new(mc.clone());
        let nk_pipe = NkModel::new(mc.with_pipeline_interrupts());
        let saved = nk.event_deliver() - nk_pipe.event_deliver();
        assert_eq!(saved, Cycles(998)); // 1000 → 2 dispatch
    }
}
