//! A small preemptive multi-CPU executor: the Nautilus-like kernel as a
//! working scheduler rather than just a cost model.
//!
//! Tasks are [`Work`] bodies pinned to CPUs (Nautilus binds threads; §III).
//! Each CPU runs its round-robin queue under a timer quantum; preemptions
//! charge the interrupt-driven context-switch cost, voluntary yields charge
//! the cheaper cooperative switch. `Block(tag)` parks a task until `tag` is
//! signalled; a task's completion signals its own id, giving fork/join.
//! Time is a per-CPU clock stitched together by a global event queue, so
//! cross-CPU joins resolve in correct causal order.

use crate::sched::{RoundRobin, RunQueue, TaskId};
use crate::threads::{switch_cost, OsKind, SwitchKind};
use crate::trace::{TraceEvent, TraceKind};
use crate::work::{Work, WorkStep};
use interweave_core::machine::{CpuId, MachineConfig};
use interweave_core::time::Cycles;
use interweave_core::{EventHandle, EventQueue};
use std::collections::HashMap;

enum TaskState {
    Ready,
    /// Parked waiting on a signal tag (kept for debugging dumps).
    #[allow(dead_code)]
    Blocked(u64),
    Done,
}

struct Task {
    body: Box<dyn Work>,
    state: TaskState,
    pending: Cycles,
    cpu: CpuId,
    /// Cycles of pure compute this task has performed.
    pub executed: Cycles,
}

/// Per-CPU bookkeeping.
struct Cpu {
    now: Cycles,
    queue: RoundRobin,
    busy: Cycles,
    switch_cycles: Cycles,
    /// The pending dispatch event for this CPU, if one is scheduled:
    /// its fire time plus the queue handle that can retract it.
    dispatch: Option<(Cycles, EventHandle)>,
}

/// Execution statistics for one run.
#[derive(Debug, Clone, Default)]
pub struct ExecutorStats {
    /// Preemptions (quantum expiry).
    pub preemptions: u64,
    /// Voluntary yields.
    pub yields: u64,
    /// Block/wake transitions.
    pub blocks: u64,
    /// Total context-switch cycles charged.
    pub switch_cycles: Cycles,
    /// Completion time (max CPU clock).
    pub makespan: Cycles,
    /// Per-task compute cycles.
    pub task_executed: Vec<Cycles>,
}

/// The executor.
pub struct Executor {
    mc: MachineConfig,
    quantum: Cycles,
    tasks: Vec<Task>,
    cpus: Vec<Cpu>,
    waiters: HashMap<u64, Vec<TaskId>>,
    signalled: HashMap<u64, Cycles>,
    events: EventQueue<CpuId>,
    tracing: bool,
    /// Recorded intervals (when tracing is enabled).
    pub trace: Vec<TraceEvent>,
    /// Statistics (populated by [`Executor::run`]).
    pub stats: ExecutorStats,
}

impl Executor {
    /// A new executor on `mc` with the given preemption quantum.
    pub fn new(mc: MachineConfig, quantum: Cycles) -> Executor {
        assert!(quantum.get() > 0);
        let cpus = (0..mc.cores)
            .map(|_| Cpu {
                now: Cycles::ZERO,
                queue: RoundRobin::new(),
                busy: Cycles::ZERO,
                switch_cycles: Cycles::ZERO,
                dispatch: None,
            })
            .collect();
        Executor {
            mc,
            quantum,
            tasks: Vec::new(),
            cpus,
            waiters: HashMap::new(),
            signalled: HashMap::new(),
            events: EventQueue::new(),
            tracing: false,
            trace: Vec::new(),
            stats: ExecutorStats::default(),
        }
    }

    /// Record a scheduling trace (see [`crate::trace`]); export it with
    /// [`crate::trace::chrome_trace_json`].
    pub fn enable_tracing(&mut self) {
        self.tracing = true;
    }

    fn record(&mut self, cpu: CpuId, task: u64, start: Cycles, end: Cycles, kind: TraceKind) {
        if self.tracing && end > start {
            self.trace.push(TraceEvent {
                cpu,
                task,
                start,
                end,
                kind,
            });
        }
    }

    /// Spawn a work body on a CPU; returns its task id (also its completion
    /// signal tag).
    pub fn spawn(&mut self, cpu: CpuId, body: Box<dyn Work>) -> TaskId {
        assert!(cpu < self.cpus.len());
        let id = self.tasks.len() as TaskId;
        self.tasks.push(Task {
            body,
            state: TaskState::Ready,
            pending: Cycles::ZERO,
            cpu,
            executed: Cycles::ZERO,
        });
        self.cpus[cpu].queue.push(id);
        self.kick(cpu, Cycles::ZERO);
        id
    }

    fn kick(&mut self, cpu: CpuId, at: Cycles) {
        let t = at.max(self.events.now());
        match self.cpus[cpu].dispatch {
            // A dispatch is already pending no later than this kick: the
            // existing event covers it.
            Some((pending, _)) if pending <= t => {}
            // A strictly earlier kick retracts the pending dispatch and
            // reschedules, so a CPU never idles past a wakeup. (Kicks
            // arrive in nondecreasing event-time order today, so this arm
            // is a safety net; it keeps the invariant local to `kick`.)
            Some((_, handle)) => {
                self.events.cancel(handle);
                let handle = self.events.schedule_cancellable(t, cpu);
                self.cpus[cpu].dispatch = Some((t, handle));
            }
            None => {
                let handle = self.events.schedule_cancellable(t, cpu);
                self.cpus[cpu].dispatch = Some((t, handle));
            }
        }
    }

    fn signal(&mut self, tag: u64, at: Cycles) {
        self.signalled.insert(tag, at);
        if let Some(ws) = self.waiters.remove(&tag) {
            for tid in ws {
                let t = &mut self.tasks[tid as usize];
                t.state = TaskState::Ready;
                let cpu = t.cpu;
                self.cpus[cpu].queue.push(tid);
                self.kick(cpu, at);
            }
        }
    }

    /// Run to quiescence (all tasks done or irrecoverably blocked).
    /// Returns true if every task completed.
    pub fn run(&mut self) -> bool {
        while let Some((at, cpu)) = self.events.pop() {
            self.cpus[cpu].dispatch = None;
            self.dispatch(cpu, at);
        }
        self.stats.makespan = self
            .cpus
            .iter()
            .map(|c| c.now)
            .max()
            .unwrap_or(Cycles::ZERO);
        self.stats.switch_cycles = self.cpus.iter().map(|c| c.switch_cycles).sum();
        self.stats.task_executed = self.tasks.iter().map(|t| t.executed).collect();
        self.tasks
            .iter()
            .all(|t| matches!(t.state, TaskState::Done))
    }

    fn dispatch(&mut self, cpu: CpuId, at: Cycles) {
        let c = &mut self.cpus[cpu];
        c.now = c.now.max(at);
        let Some(tid) = c.queue.pop() else { return };
        let mut quantum_left = self.quantum;

        loop {
            let task = &mut self.tasks[tid as usize];
            if task.pending == Cycles::ZERO {
                let cpu_now = self.cpus[cpu].now;
                match task.body.step(cpu, cpu_now) {
                    WorkStep::Compute(n) => task.pending = n,
                    WorkStep::Yield => {
                        self.stats.yields += 1;
                        let cost = switch_cost(
                            &self.mc,
                            OsKind::Nk,
                            SwitchKind::FiberCooperative,
                            false,
                            false,
                        )
                        .total();
                        let c = &mut self.cpus[cpu];
                        let start = c.now;
                        c.now += cost;
                        c.switch_cycles += cost;
                        c.queue.push(tid);
                        let now = c.now;
                        self.record(cpu, u64::MAX, start, now, TraceKind::Switch);
                        self.kick(cpu, now);
                        return;
                    }
                    WorkStep::Block(tag) => {
                        // Already-signalled tags pass straight through
                        // (join on a finished task) — but causality holds:
                        // the joiner's clock advances to the signal time.
                        if let Some(&st) = self.signalled.get(&tag) {
                            let c = &mut self.cpus[cpu];
                            c.now = c.now.max(st);
                            continue;
                        }
                        self.stats.blocks += 1;
                        task.state = TaskState::Blocked(tag);
                        self.waiters.entry(tag).or_default().push(tid);
                        let now = self.cpus[cpu].now;
                        if !self.cpus[cpu].queue.is_empty() {
                            self.kick(cpu, now);
                        }
                        return;
                    }
                    WorkStep::Done => {
                        task.state = TaskState::Done;
                        let now = self.cpus[cpu].now;
                        self.signal(tid, now);
                        if !self.cpus[cpu].queue.is_empty() {
                            self.kick(cpu, now);
                        }
                        return;
                    }
                }
            }

            // Consume compute, bounded by the quantum.
            let task = &mut self.tasks[tid as usize];
            let slice = task.pending.min(quantum_left);
            task.pending -= slice;
            task.executed += slice;
            let c = &mut self.cpus[cpu];
            let run_start = c.now;
            c.now += slice;
            c.busy += slice;
            quantum_left -= slice;
            let run_end = self.cpus[cpu].now;
            self.record(cpu, tid, run_start, run_end, TraceKind::Run);

            if quantum_left == Cycles::ZERO {
                // Timer preemption.
                self.stats.preemptions += 1;
                let cost = switch_cost(
                    &self.mc,
                    OsKind::Nk,
                    SwitchKind::ThreadInterrupt,
                    false,
                    false,
                )
                .total();
                let c = &mut self.cpus[cpu];
                let start = c.now;
                c.now += cost;
                c.switch_cycles += cost;
                c.queue.push(tid);
                let now = c.now;
                self.record(cpu, u64::MAX, start, now, TraceKind::Switch);
                self.kick(cpu, now);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{LoopWork, ScriptedWork};
    use interweave_core::machine::MachineConfig;

    fn exec(cpus: usize, quantum: u64) -> Executor {
        Executor::new(MachineConfig::test(cpus), Cycles(quantum))
    }

    #[test]
    fn single_task_completes_with_expected_time() {
        let mut e = exec(1, 10_000);
        e.spawn(0, Box::new(LoopWork::new(10, Cycles(100))));
        assert!(e.run());
        assert!(e.stats.makespan >= Cycles(1000));
        assert_eq!(e.stats.task_executed[0], Cycles(1000));
    }

    #[test]
    fn quantum_preemption_interleaves_fairly() {
        // Two long tasks on one CPU: both finish, preemptions happen, and
        // execution interleaves (neither can finish an entire quantum run
        // ahead of the other).
        let mut e = exec(1, 1_000);
        let a = e.spawn(0, Box::new(LoopWork::new(1, Cycles(10_000))));
        let b = e.spawn(0, Box::new(LoopWork::new(1, Cycles(10_000))));
        assert!(e.run());
        assert!(
            e.stats.preemptions >= 18,
            "preemptions {}",
            e.stats.preemptions
        );
        assert_eq!(e.stats.task_executed[a as usize], Cycles(10_000));
        assert_eq!(e.stats.task_executed[b as usize], Cycles(10_000));
        // With fair RR, the makespan is both tasks + switch costs.
        assert!(e.stats.makespan >= Cycles(20_000));
    }

    #[test]
    fn cross_cpu_fork_join_resolves_causally() {
        // Parent on CPU 0 blocks on the child running on CPU 1; the parent
        // resumes only after the child's completion time. The small quantum
        // forces the child through many dispatch events, so the parent
        // reaches its join while the child is still running and must park.
        let mut e = exec(2, 5_000);
        let child = e.spawn(1, Box::new(LoopWork::new(1, Cycles(50_000))));
        let _parent = e.spawn(
            0,
            Box::new(ScriptedWork::new(vec![
                WorkStep::Compute(Cycles(100)),
                WorkStep::Block(child),
                WorkStep::Compute(Cycles(100)),
                WorkStep::Done,
            ])),
        );
        assert!(e.run());
        // Parent's last compute happens after the child finished at ~50k.
        assert!(
            e.stats.makespan >= Cycles(50_100),
            "makespan {}",
            e.stats.makespan
        );
        assert_eq!(e.stats.blocks, 1);
    }

    #[test]
    fn join_on_already_finished_task_does_not_block() {
        let mut e = exec(1, 100_000);
        let child = e.spawn(0, Box::new(LoopWork::new(1, Cycles(10))));
        // Parent spawned after; by the time it blocks, the child may be
        // done — either way it must complete.
        let _p = e.spawn(
            0,
            Box::new(ScriptedWork::new(vec![
                WorkStep::Compute(Cycles(5_000)),
                WorkStep::Block(child),
                WorkStep::Done,
            ])),
        );
        assert!(e.run());
    }

    #[test]
    fn yields_cost_less_than_preemptions() {
        // A cooperative task that yields often vs. a preempted one: the
        // cooperative run charges cheaper switches.
        let coop = {
            let mut e = exec(1, 1_000_000);
            let steps: Vec<WorkStep> = (0..20)
                .flat_map(|_| [WorkStep::Compute(Cycles(500)), WorkStep::Yield])
                .chain([WorkStep::Done])
                .collect();
            e.spawn(0, Box::new(ScriptedWork::new(steps)));
            assert!(e.run());
            e.stats.switch_cycles
        };
        let preempted = {
            let mut e = exec(1, 500);
            e.spawn(0, Box::new(LoopWork::new(20, Cycles(500))));
            assert!(e.run());
            e.stats.switch_cycles
        };
        assert!(
            coop < preempted,
            "cooperative {coop} vs preempted {preempted}"
        );
    }

    #[test]
    fn deadlocked_task_reports_incomplete() {
        let mut e = exec(1, 10_000);
        e.spawn(
            0,
            Box::new(ScriptedWork::new(vec![
                WorkStep::Block(9999),
                WorkStep::Done,
            ])),
        );
        assert!(
            !e.run(),
            "blocking on a never-signalled tag cannot complete"
        );
    }

    #[test]
    fn tracing_records_consistent_nonoverlapping_intervals() {
        use crate::trace::{chrome_trace_json, find_overlap, TraceKind};
        let mut e = exec(2, 1_000);
        let a = e.spawn(0, Box::new(LoopWork::new(1, Cycles(5_000))));
        let b = e.spawn(0, Box::new(LoopWork::new(1, Cycles(5_000))));
        let c = e.spawn(1, Box::new(LoopWork::new(1, Cycles(3_000))));
        e.enable_tracing();
        assert!(e.run());
        assert!(find_overlap(&e.trace).is_none(), "overlapping intervals");
        // Per-task run time in the trace equals the executed totals.
        for (tid, expect) in [(a, 5_000u64), (b, 5_000), (c, 3_000)] {
            let traced: u64 = e
                .trace
                .iter()
                .filter(|ev| ev.task == tid && ev.kind == TraceKind::Run)
                .map(|ev| ev.duration().get())
                .sum();
            assert_eq!(traced, expect, "task {tid}");
        }
        let json = chrome_trace_json(&e.trace, 1000);
        assert!(json.contains("\"name\":\"task0\""));
        assert!(json.contains("\"name\":\"switch\""));
    }

    #[test]
    fn parallel_speedup_across_cpus() {
        let solo = {
            let mut e = exec(1, 100_000);
            for _ in 0..4 {
                e.spawn(0, Box::new(LoopWork::new(1, Cycles(25_000))));
            }
            assert!(e.run());
            e.stats.makespan
        };
        let quad = {
            let mut e = exec(4, 100_000);
            for c in 0..4 {
                e.spawn(c, Box::new(LoopWork::new(1, Cycles(25_000))));
            }
            assert!(e.run());
            e.stats.makespan
        };
        let speedup = solo.as_f64() / quad.as_f64();
        assert!(speedup > 3.5, "speedup {speedup:.2}");
    }
}
