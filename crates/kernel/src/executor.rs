//! A small preemptive multi-CPU executor: the Nautilus-like kernel as a
//! working scheduler rather than just a cost model.
//!
//! Tasks are [`Work`] bodies pinned to CPUs (Nautilus binds threads; §III).
//! Each CPU runs its round-robin queue under a timer quantum; preemptions
//! charge the interrupt-driven context-switch cost, voluntary yields charge
//! the cheaper cooperative switch. `Block(tag)` parks a task until `tag` is
//! signalled; a task's completion signals its own id, giving fork/join.
//! Time is a per-CPU clock stitched together by a global event queue, so
//! cross-CPU joins resolve in correct causal order.

use crate::buddy::{AllocError, NumaAllocator};
use crate::sched::{RoundRobin, RunQueue, TaskId};
use crate::threads::{home_zone_for, switch_cost, SwitchKind, DEFAULT_STACK_BYTES};
use crate::work::{Work, WorkStep};
use interweave_core::interrupt::{self, DeliveryOutcome, IrqClass};
use interweave_core::machine::{CpuId, MachineConfig};
use interweave_core::stack::OsPoint;
use interweave_core::telemetry::{FlightRecorder, Key, Layer, Sink, Span, SpanKind, Unit};
use interweave_core::time::Cycles;
use interweave_core::{EventHandle, FaultPlan, ShardedKernel};
use std::collections::HashMap;

const KEY_PREEMPTIONS: Key = Key::new("kernel.sched.preemptions", Layer::Kernel, Unit::Count);
const KEY_YIELDS: Key = Key::new("kernel.sched.yields", Layer::Kernel, Unit::Count);
const KEY_BLOCKS: Key = Key::new("kernel.sched.blocks", Layer::Kernel, Unit::Count);
const KEY_DISPATCHES: Key = Key::new("kernel.sched.dispatches", Layer::Kernel, Unit::Count);
const KEY_SHED: Key = Key::new("kernel.sched.shed_tasks", Layer::Kernel, Unit::Count);
const KEY_SWITCH_CYCLES: Key = Key::new("kernel.sched.switch_cycles", Layer::Kernel, Unit::Cycles);
const KEY_WD_CHECKS: Key = Key::new("kernel.watchdog.checks", Layer::Kernel, Unit::Count);
const KEY_WD_REKICKS: Key = Key::new("kernel.watchdog.rekicks", Layer::Kernel, Unit::Count);

pub use crate::watchdog::{WatchdogPolicy, MAX_WATCHDOG_BACKOFF, MAX_WATCHDOG_REKICKS};

enum TaskState {
    Ready,
    /// Parked waiting on a signal tag (kept for debugging dumps).
    #[allow(dead_code)]
    Blocked(u64),
    Done,
}

struct Task {
    body: Box<dyn Work>,
    state: TaskState,
    pending: Cycles,
    cpu: CpuId,
    /// Stack block carved from the executor's allocator (freed on Done).
    stack: Option<u64>,
    /// Cycles of pure compute this task has performed.
    pub executed: Cycles,
}

/// What the executor's event queue carries: per-CPU dispatch kicks plus the
/// optional watchdog heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecEvent {
    /// Run the dispatch loop on this CPU.
    Dispatch(CpuId),
    /// Periodic watchdog scan for stalled CPUs.
    Watchdog,
}

/// Per-CPU bookkeeping.
struct Cpu {
    now: Cycles,
    queue: RoundRobin,
    busy: Cycles,
    switch_cycles: Cycles,
    /// The pending dispatch event for this CPU, if one is scheduled:
    /// its fire time plus the queue handle that can retract it.
    dispatch: Option<(Cycles, EventHandle)>,
    /// When a dropped kick left this CPU with runnable work and no pending
    /// dispatch (cleared by the next successful dispatch).
    stalled_since: Option<Cycles>,
    /// Current watchdog retry backoff, in heartbeat periods.
    backoff: u32,
    /// Earliest time the watchdog may re-kick this CPU again.
    next_retry: Cycles,
    /// Consecutive watchdog re-kicks without a successful dispatch.
    rekicks: u32,
    /// The watchdog already logged this CPU's abandon (log-once latch;
    /// cleared when a dispatch succeeds).
    abandon_logged: bool,
}

/// Execution statistics for one run.
#[derive(Debug, Clone, Default)]
pub struct ExecutorStats {
    /// Preemptions (quantum expiry).
    pub preemptions: u64,
    /// Voluntary yields.
    pub yields: u64,
    /// Block/wake transitions.
    pub blocks: u64,
    /// Total context-switch cycles charged.
    pub switch_cycles: Cycles,
    /// Completion time (max CPU clock).
    pub makespan: Cycles,
    /// Per-task compute cycles.
    pub task_executed: Vec<Cycles>,
    /// Kicks the fault plane dropped on the wire.
    pub lost_kicks: u64,
    /// Kicks the fault plane delivered late.
    pub delayed_kicks: u64,
    /// Watchdog heartbeat scans performed.
    pub watchdog_checks: u64,
    /// Stalled CPUs the watchdog re-kicked.
    pub watchdog_rekicks: u64,
    /// Stalls that ended in a successful dispatch.
    pub recovered_stalls: u64,
    /// Total cycles CPUs spent stalled (lost kick → rescuing dispatch).
    pub stall_cycles: Cycles,
    /// Spawns refused because the stack allocation failed (real or
    /// injected OOM): the scheduler sheds the task instead of panicking.
    pub shed_tasks: u64,
}

/// The executor.
pub struct Executor {
    mc: MachineConfig,
    quantum: Cycles,
    tasks: Vec<Task>,
    cpus: Vec<Cpu>,
    waiters: HashMap<u64, Vec<TaskId>>,
    signalled: HashMap<u64, Cycles>,
    /// The sharded event kernel driving simulated time. One shard by
    /// default (bit-identical to the historical single-queue executor);
    /// [`Executor::set_shards`] splits it so each CPU group owns its own
    /// event-queue shard, with the merged (time, shard, seq) driver
    /// keeping runs deterministic at every shard count.
    events: ShardedKernel<ExecEvent>,
    tracing: bool,
    /// Which OS's context-switch costs this kernel charges. `Nk` (the
    /// default) is the interwoven Nautilus-like kernel; `Linux` models the
    /// layered commodity stack for side-by-side attribution runs.
    os: OsPoint,
    /// Fault plane consulted whenever a kick IPI actually goes on the wire
    /// and whenever a stack is allocated. `None` (the default) is the exact
    /// pre-fault-plane behavior.
    faults: Option<FaultPlan>,
    /// Watchdog policy (period + retry bounds), when enabled.
    watchdog: Option<WatchdogPolicy>,
    /// Buddy allocator backing task stacks, when configured.
    stack_alloc: Option<NumaAllocator>,
    /// Telemetry sink: counters, cycle attribution, and spans all flow here
    /// when enabled. Off by default — publishing is then a no-op branch.
    sink: Sink,
    /// Bounded blackbox of recent watchdog/fault events, `None` (zero-cost)
    /// unless [`Executor::enable_flight_recorder`] ran.
    recorder: Option<FlightRecorder>,
    /// Recorded intervals (when tracing is enabled).
    pub trace: Vec<Span>,
    /// Statistics (populated by [`Executor::run`]).
    pub stats: ExecutorStats,
}

impl Executor {
    /// A new executor on `mc` with the given preemption quantum.
    pub fn new(mc: MachineConfig, quantum: Cycles) -> Executor {
        assert!(quantum.get() > 0);
        let cpus = (0..mc.cores)
            .map(|_| Cpu {
                now: Cycles::ZERO,
                queue: RoundRobin::new(),
                busy: Cycles::ZERO,
                switch_cycles: Cycles::ZERO,
                dispatch: None,
                stalled_since: None,
                backoff: 1,
                next_retry: Cycles::ZERO,
                rekicks: 0,
                abandon_logged: false,
            })
            .collect();
        Executor {
            mc,
            quantum,
            tasks: Vec::new(),
            cpus,
            waiters: HashMap::new(),
            signalled: HashMap::new(),
            events: ShardedKernel::new(1),
            tracing: false,
            os: OsPoint::NkLike,
            faults: None,
            watchdog: None,
            stack_alloc: None,
            sink: Sink::off(),
            recorder: None,
            trace: Vec::new(),
            stats: ExecutorStats::default(),
        }
    }

    /// Split the executor's event kernel into `n` shards, each owning the
    /// dispatch events of a contiguous CPU block (CPU `c` lives on shard
    /// `c·n / cores`). The merged driver pops in (time, shard, seq)
    /// order, so a run is deterministic at every shard count, and one
    /// shard (the default) is bit-identical to the historical
    /// single-queue executor. Must be called before any task is spawned
    /// or the watchdog is enabled.
    pub fn set_shards(&mut self, n: usize) {
        assert!(
            self.tasks.is_empty() && self.events.is_empty(),
            "set_shards must precede spawns and watchdog setup"
        );
        self.events = ShardedKernel::new(n.clamp(1, self.cpus.len()));
    }

    /// Number of event-queue shards the executor runs on.
    pub fn shards(&self) -> usize {
        self.events.shards()
    }

    /// The event-kernel shard owning `cpu`'s dispatch events.
    fn shard_of(&self, cpu: CpuId) -> usize {
        cpu * self.events.shards() / self.cpus.len()
    }

    /// Install a fault plan: from now on every kick IPI that actually goes
    /// on the wire, and every stack allocation, consults it. The plan
    /// inherits the executor's telemetry sink so its injections are counted.
    pub fn set_fault_plan(&mut self, mut plan: FaultPlan) {
        plan.set_sink(self.sink.clone());
        self.faults = Some(plan);
    }

    /// Charge context switches at `os`'s costs ([`OsPoint::NkLike`] by default).
    /// This is the knob the attribution bench turns to contrast the
    /// interwoven kernel with the layered commodity stack on one workload.
    pub fn set_os(&mut self, os: OsPoint) {
        self.os = os;
    }

    /// Attach a telemetry sink: scheduler counters, watchdog activity, the
    /// cycle-attribution ledger, and (at `Level::Full`) kernel spans all
    /// publish into it. The sink also propagates to the fault plan and the
    /// stack allocator, installed before or after this call.
    pub fn set_telemetry(&mut self, sink: Sink) {
        if let Some(plan) = self.faults.as_mut() {
            plan.set_sink(sink.clone());
        }
        if let Some(alloc) = self.stack_alloc.as_mut() {
            alloc.set_sink(sink.clone());
        }
        self.sink = sink;
    }

    /// The executor's telemetry sink (off unless [`Executor::set_telemetry`]
    /// was called).
    pub fn telemetry(&self) -> &Sink {
        &self.sink
    }

    /// The clock the attribution ledger must sum to after [`Executor::run`]:
    /// every CPU's timeline up to the makespan, i.e. makespan × #CPUs.
    pub fn attribution_clock(&self) -> Cycles {
        Cycles(self.stats.makespan.get() * self.cpus.len() as u64)
    }

    /// Remove and return the fault plan (e.g. to read its injection trace
    /// after a run).
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        self.faults.take()
    }

    /// Enable the kernel watchdog: every `period` cycles, scan for CPUs
    /// that have runnable work but no pending dispatch (the signature of a
    /// lost kick) and re-kick them, backing off exponentially per CPU up to
    /// [`MAX_WATCHDOG_BACKOFF`] periods. The heartbeat self-terminates once
    /// no CPU has pending or rescuable work, so runs still quiesce.
    pub fn enable_watchdog(&mut self, period: Cycles) {
        if self.watchdog.is_none() {
            // The watchdog is a global scan, not per-CPU work: it lives on
            // shard 0.
            self.events
                .schedule(0, self.events.now() + period, ExecEvent::Watchdog);
        }
        self.watchdog = Some(WatchdogPolicy::new(period));
    }

    /// The active watchdog policy, if [`Executor::enable_watchdog`] ran.
    /// Higher layers (the serving plane) read it so their reclaim-latency
    /// model is exactly the executor's recovery schedule.
    pub fn watchdog_policy(&self) -> Option<WatchdogPolicy> {
        self.watchdog
    }

    /// Back task stacks with a real buddy allocator: each spawn carves
    /// [`DEFAULT_STACK_BYTES`] from the spawning CPU's home zone (§III's
    /// "most desirable zone" policy) and frees it when the task completes.
    /// With an allocator installed, use [`Executor::try_spawn`] to observe
    /// allocation failure.
    pub fn set_stack_allocator(&mut self, mut alloc: NumaAllocator) {
        alloc.set_sink(self.sink.clone());
        self.stack_alloc = Some(alloc);
    }

    /// Borrow the stack allocator, if configured (zone inspection).
    pub fn stack_allocator(&self) -> Option<&NumaAllocator> {
        self.stack_alloc.as_ref()
    }

    /// Record a scheduling trace (see [`crate::trace`]); export it with
    /// [`crate::trace::chrome_trace_json`].
    pub fn enable_tracing(&mut self) {
        self.tracing = true;
    }

    /// Keep a bounded blackbox of the most recent watchdog/fault events
    /// (lost kicks, re-kicks, abandons), `cap` events deep. Off by
    /// default; when a watchdog abandons a CPU the story of how it got
    /// there is in [`Executor::flight_recorder`].
    pub fn enable_flight_recorder(&mut self, cap: usize) {
        self.recorder = Some(FlightRecorder::new(cap));
    }

    /// The executor's blackbox, if recording is enabled.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref()
    }

    /// One blackbox entry, skipped entirely when recording is off.
    fn blackbox(&mut self, at: Cycles, cpu: CpuId, what: &'static str, a: u64, b: u64) {
        if let Some(r) = &mut self.recorder {
            r.record(at, cpu, what, a, b);
        }
    }

    fn record(&mut self, cpu: CpuId, task: u64, start: Cycles, end: Cycles, kind: SpanKind) {
        if end <= start {
            return;
        }
        let span = Span {
            layer: Layer::Kernel,
            track: cpu,
            id: task,
            kind,
            start,
            end,
        };
        if self.tracing {
            self.trace.push(span);
        }
        self.sink.span(span);
    }

    /// Spawn a work body on a CPU; returns its task id (also its completion
    /// signal tag). Infallible when no stack allocator is configured; with
    /// one, panics on allocation failure — use [`Executor::try_spawn`] to
    /// handle OOM gracefully.
    pub fn spawn(&mut self, cpu: CpuId, body: Box<dyn Work>) -> TaskId {
        self.try_spawn(cpu, body)
            .expect("stack allocation failed; use try_spawn to handle OOM")
    }

    /// Spawn with allocation failure surfaced: when a stack allocator is
    /// configured, the stack is carved from the CPU's home zone first (under
    /// the fault plane, if installed). On OOM — real or injected — the task
    /// is *shed*: nothing is enqueued, the typed error reaches the caller,
    /// and the run continues degraded rather than aborting.
    pub fn try_spawn(&mut self, cpu: CpuId, body: Box<dyn Work>) -> Result<TaskId, AllocError> {
        assert!(cpu < self.cpus.len());
        let stack = match self.stack_alloc.as_mut() {
            Some(alloc) => {
                let zone = home_zone_for(cpu, &self.mc);
                let got = match self.faults.as_mut() {
                    Some(plan) => alloc.alloc_faulted(zone, DEFAULT_STACK_BYTES, plan),
                    None => alloc.alloc(zone, DEFAULT_STACK_BYTES),
                };
                match got {
                    Ok((base, _zone)) => Some(base),
                    Err(e) => {
                        self.stats.shed_tasks += 1;
                        self.sink.count(&KEY_SHED, cpu, 1);
                        return Err(e);
                    }
                }
            }
            None => None,
        };
        let id = self.tasks.len() as TaskId;
        self.tasks.push(Task {
            body,
            state: TaskState::Ready,
            pending: Cycles::ZERO,
            cpu,
            stack,
            executed: Cycles::ZERO,
        });
        self.cpus[cpu].queue.push(id);
        self.kick(cpu, Cycles::ZERO);
        Ok(id)
    }

    fn kick(&mut self, cpu: CpuId, at: Cycles) {
        let t = at.max(self.events.now());
        // A dispatch already pending no later than this kick covers it: the
        // kick coalesces and no IPI goes on the wire (so the fault plane is
        // not consulted — there is nothing to lose).
        if let Some((pending, _)) = self.cpus[cpu].dispatch {
            if pending <= t {
                return;
            }
        }
        // An IPI is actually sent: present it to the delivery fabric.
        let t_eff = match self.faults.as_mut() {
            Some(plan) => match interrupt::present_on(IrqClass::Ipi, plan, &self.sink, cpu, t) {
                DeliveryOutcome::Delivered => t,
                DeliveryOutcome::Delayed(d) => {
                    self.stats.delayed_kicks += 1;
                    t + d
                }
                DeliveryOutcome::Dropped => {
                    // The target never sees the kick. If that leaves the CPU
                    // with runnable work and no pending dispatch, it is
                    // stalled until the watchdog notices.
                    self.stats.lost_kicks += 1;
                    let c = &mut self.cpus[cpu];
                    if c.dispatch.is_none() && c.stalled_since.is_none() {
                        c.stalled_since = Some(t);
                    }
                    let queued = c.queue.len() as u64;
                    self.blackbox(t, cpu, "lost-kick", queued, 0);
                    return;
                }
            },
            None => t,
        };
        match self.cpus[cpu].dispatch {
            // A delivery delay can push the kick past an already-pending
            // dispatch, in which case that event covers it.
            Some((pending, _)) if pending <= t_eff => {}
            // A strictly earlier kick retracts the pending dispatch and
            // reschedules, so a CPU never idles past a wakeup. (Kicks
            // arrive in nondecreasing event-time order today, so this arm
            // is a safety net; it keeps the invariant local to `kick`.)
            Some((_, handle)) => {
                let shard = self.shard_of(cpu);
                self.events.cancel(shard, handle);
                let handle =
                    self.events
                        .schedule_cancellable(shard, t_eff, ExecEvent::Dispatch(cpu));
                self.cpus[cpu].dispatch = Some((t_eff, handle));
            }
            None => {
                let handle = self.events.schedule_cancellable(
                    self.shard_of(cpu),
                    t_eff,
                    ExecEvent::Dispatch(cpu),
                );
                self.cpus[cpu].dispatch = Some((t_eff, handle));
            }
        }
    }

    fn signal(&mut self, tag: u64, at: Cycles) {
        self.signalled.insert(tag, at);
        if let Some(ws) = self.waiters.remove(&tag) {
            for tid in ws {
                let t = &mut self.tasks[tid as usize];
                t.state = TaskState::Ready;
                let cpu = t.cpu;
                self.cpus[cpu].queue.push(tid);
                self.kick(cpu, at);
            }
        }
    }

    /// Run to quiescence (all tasks done or irrecoverably blocked).
    /// Returns true if every task completed.
    pub fn run(&mut self) -> bool {
        while let Some((_shard, at, ev)) = self.events.pop_next() {
            match ev {
                ExecEvent::Dispatch(cpu) => {
                    self.cpus[cpu].dispatch = None;
                    // Work is flowing on this CPU again: close any open
                    // stall window and reset the watchdog backoff.
                    let since = self.cpus[cpu].stalled_since.take();
                    if let Some(since) = since {
                        self.stats.recovered_stalls += 1;
                        self.stats.stall_cycles += at - since;
                    }
                    // Attribute the gap this CPU is about to skip over
                    // (dispatch advances its clock to `at`): the part after
                    // the lost kick was a stall, the rest plain idle.
                    let prev = self.cpus[cpu].now;
                    if self.sink.is_on() && at > prev {
                        let gap = at - prev;
                        let stall = match since {
                            Some(s) => (at - s.max(prev)).min(gap),
                            None => Cycles::ZERO,
                        };
                        self.sink.charge(Layer::Hardware, "stall", stall);
                        self.sink.charge(Layer::Hardware, "idle", gap - stall);
                        if stall > Cycles::ZERO {
                            self.sink.span(Span {
                                layer: Layer::Kernel,
                                track: cpu,
                                id: u64::MAX,
                                kind: SpanKind::Stall,
                                start: at - stall,
                                end: at,
                            });
                        }
                    }
                    self.sink.count_at(&KEY_DISPATCHES, cpu, 1, at);
                    self.cpus[cpu].backoff = 1;
                    self.cpus[cpu].next_retry = Cycles::ZERO;
                    self.cpus[cpu].rekicks = 0;
                    self.cpus[cpu].abandon_logged = false;
                    self.dispatch(cpu, at);
                }
                ExecEvent::Watchdog => self.watchdog_tick(at),
            }
        }
        self.stats.makespan = self
            .cpus
            .iter()
            .map(|c| c.now)
            .max()
            .unwrap_or(Cycles::ZERO);
        self.stats.switch_cycles = self.cpus.iter().map(|c| c.switch_cycles).sum();
        self.stats.task_executed = self.tasks.iter().map(|t| t.executed).collect();
        if self.sink.is_on() {
            // Close the books: each CPU's trailing idle up to the makespan,
            // so attributed cycles sum exactly to makespan × #CPUs.
            let makespan = self.stats.makespan;
            for cpu in 0..self.cpus.len() {
                let tail = makespan - self.cpus[cpu].now;
                self.sink.charge(Layer::Hardware, "idle", tail);
                self.sink.gauge_at(
                    &KEY_SWITCH_CYCLES,
                    cpu,
                    self.cpus[cpu].switch_cycles.get(),
                    makespan,
                );
            }
            // Each event-queue shard publishes under its own telemetry
            // shard index (one shard → index 0, the historical behavior).
            self.events.publish_telemetry(&self.sink);
        }
        self.tasks
            .iter()
            .all(|t| matches!(t.state, TaskState::Done))
    }

    /// One watchdog heartbeat: detect lost-kick stalls (runnable work, no
    /// pending dispatch) and re-kick under per-CPU exponential backoff.
    fn watchdog_tick(&mut self, at: Cycles) {
        let wd = self.watchdog.expect("watchdog event without policy");
        self.stats.watchdog_checks += 1;
        self.sink.count_at(&KEY_WD_CHECKS, 0, 1, at);
        for cpu in 0..self.cpus.len() {
            let c = &self.cpus[cpu];
            if c.dispatch.is_none() && !c.queue.is_empty() {
                if wd.abandons(c.rekicks) {
                    // Re-kick budget exhausted: log the give-up into the
                    // blackbox exactly once per stall episode.
                    if !c.abandon_logged {
                        let rekicks = c.rekicks as u64;
                        let queued = c.queue.len() as u64;
                        self.cpus[cpu].abandon_logged = true;
                        self.blackbox(at, cpu, "wd-abandon", rekicks, queued);
                    }
                } else if at >= c.next_retry {
                    self.stats.watchdog_rekicks += 1;
                    self.sink.count_at(&KEY_WD_REKICKS, cpu, 1, at);
                    let backoff = self.cpus[cpu].backoff;
                    self.cpus[cpu].next_retry = at + wd.retry_backoff(backoff);
                    self.cpus[cpu].backoff = wd.escalate(backoff);
                    self.cpus[cpu].rekicks += 1;
                    self.blackbox(at, cpu, "wd-rekick", self.cpus[cpu].rekicks as u64, 0);
                    // The re-kick goes through the fault plane like any other
                    // IPI — it too can be lost, hence the backoff above.
                    self.kick(cpu, at);
                    // If that was the last budgeted re-kick and it too was
                    // lost, the give-up happens *now* (the heartbeat may
                    // stop this very tick) — log it before it does.
                    let c = &self.cpus[cpu];
                    if c.dispatch.is_none() && wd.abandons(c.rekicks) && !c.abandon_logged {
                        let rekicks = c.rekicks as u64;
                        let queued = c.queue.len() as u64;
                        self.cpus[cpu].abandon_logged = true;
                        self.blackbox(at, cpu, "wd-abandon", rekicks, queued);
                    }
                }
            }
        }
        // Keep the heartbeat alive only while some CPU has pending or
        // rescuable work; abandoned CPUs (re-kick budget exhausted) no
        // longer count, so a run with a 100 % drop rate still terminates —
        // as does a plain deadlocked run, which reports incomplete.
        let live = self
            .cpus
            .iter()
            .any(|c| c.dispatch.is_some() || (!c.queue.is_empty() && !wd.abandons(c.rekicks)));
        if live {
            self.events.schedule(0, at + wd.period, ExecEvent::Watchdog);
        }
    }

    fn dispatch(&mut self, cpu: CpuId, at: Cycles) {
        let c = &mut self.cpus[cpu];
        c.now = c.now.max(at);
        let Some(tid) = c.queue.pop() else { return };
        let mut quantum_left = self.quantum;

        loop {
            let task = &mut self.tasks[tid as usize];
            if task.pending == Cycles::ZERO {
                let cpu_now = self.cpus[cpu].now;
                match task.body.step(cpu, cpu_now) {
                    WorkStep::Compute(n) => task.pending = n,
                    WorkStep::Yield => {
                        self.stats.yields += 1;
                        let cost = switch_cost(
                            &self.mc,
                            self.os,
                            SwitchKind::FiberCooperative,
                            false,
                            false,
                        )
                        .total();
                        let c = &mut self.cpus[cpu];
                        let start = c.now;
                        c.now += cost;
                        c.switch_cycles += cost;
                        c.queue.push(tid);
                        let now = c.now;
                        self.sink.count_at(&KEY_YIELDS, cpu, 1, now);
                        self.sink.charge(Layer::Kernel, "switch-yield", cost);
                        self.record(cpu, u64::MAX, start, now, SpanKind::Switch);
                        self.kick(cpu, now);
                        return;
                    }
                    WorkStep::Block(tag) => {
                        // Already-signalled tags pass straight through
                        // (join on a finished task) — but causality holds:
                        // the joiner's clock advances to the signal time.
                        if let Some(&st) = self.signalled.get(&tag) {
                            let c = &mut self.cpus[cpu];
                            if st > c.now {
                                self.sink.charge(Layer::Kernel, "join-wait", st - c.now);
                                c.now = st;
                            }
                            continue;
                        }
                        self.stats.blocks += 1;
                        self.sink.count_at(&KEY_BLOCKS, cpu, 1, self.cpus[cpu].now);
                        task.state = TaskState::Blocked(tag);
                        self.waiters.entry(tag).or_default().push(tid);
                        let now = self.cpus[cpu].now;
                        if !self.cpus[cpu].queue.is_empty() {
                            self.kick(cpu, now);
                        }
                        return;
                    }
                    WorkStep::Done => {
                        task.state = TaskState::Done;
                        // Return the task's stack to its buddy zone.
                        let stack = task.stack.take();
                        if let (Some(base), Some(alloc)) = (stack, self.stack_alloc.as_mut()) {
                            let _ = alloc.free(base);
                        }
                        let now = self.cpus[cpu].now;
                        self.signal(tid, now);
                        if !self.cpus[cpu].queue.is_empty() {
                            self.kick(cpu, now);
                        }
                        return;
                    }
                }
            }

            // Consume compute, bounded by the quantum.
            let task = &mut self.tasks[tid as usize];
            let slice = task.pending.min(quantum_left);
            task.pending -= slice;
            task.executed += slice;
            let c = &mut self.cpus[cpu];
            let run_start = c.now;
            c.now += slice;
            c.busy += slice;
            quantum_left -= slice;
            let run_end = self.cpus[cpu].now;
            self.sink.charge(Layer::Application, "compute", slice);
            self.record(cpu, tid, run_start, run_end, SpanKind::Run);

            if quantum_left == Cycles::ZERO {
                // Timer preemption.
                self.stats.preemptions += 1;
                let cost =
                    switch_cost(&self.mc, self.os, SwitchKind::ThreadInterrupt, false, false)
                        .total();
                let c = &mut self.cpus[cpu];
                let start = c.now;
                c.now += cost;
                c.switch_cycles += cost;
                c.queue.push(tid);
                let now = c.now;
                self.sink.count_at(&KEY_PREEMPTIONS, cpu, 1, now);
                self.sink.charge(Layer::Kernel, "switch-preempt", cost);
                self.record(cpu, u64::MAX, start, now, SpanKind::Switch);
                self.kick(cpu, now);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{LoopWork, ScriptedWork};
    use interweave_core::machine::MachineConfig;

    fn exec(cpus: usize, quantum: u64) -> Executor {
        Executor::new(MachineConfig::test(cpus), Cycles(quantum))
    }

    #[test]
    fn single_task_completes_with_expected_time() {
        let mut e = exec(1, 10_000);
        e.spawn(0, Box::new(LoopWork::new(10, Cycles(100))));
        assert!(e.run());
        assert!(e.stats.makespan >= Cycles(1000));
        assert_eq!(e.stats.task_executed[0], Cycles(1000));
    }

    #[test]
    fn quantum_preemption_interleaves_fairly() {
        // Two long tasks on one CPU: both finish, preemptions happen, and
        // execution interleaves (neither can finish an entire quantum run
        // ahead of the other).
        let mut e = exec(1, 1_000);
        let a = e.spawn(0, Box::new(LoopWork::new(1, Cycles(10_000))));
        let b = e.spawn(0, Box::new(LoopWork::new(1, Cycles(10_000))));
        assert!(e.run());
        assert!(
            e.stats.preemptions >= 18,
            "preemptions {}",
            e.stats.preemptions
        );
        assert_eq!(e.stats.task_executed[a as usize], Cycles(10_000));
        assert_eq!(e.stats.task_executed[b as usize], Cycles(10_000));
        // With fair RR, the makespan is both tasks + switch costs.
        assert!(e.stats.makespan >= Cycles(20_000));
    }

    #[test]
    fn cross_cpu_fork_join_resolves_causally() {
        // Parent on CPU 0 blocks on the child running on CPU 1; the parent
        // resumes only after the child's completion time. The small quantum
        // forces the child through many dispatch events, so the parent
        // reaches its join while the child is still running and must park.
        let mut e = exec(2, 5_000);
        let child = e.spawn(1, Box::new(LoopWork::new(1, Cycles(50_000))));
        let _parent = e.spawn(
            0,
            Box::new(ScriptedWork::new(vec![
                WorkStep::Compute(Cycles(100)),
                WorkStep::Block(child),
                WorkStep::Compute(Cycles(100)),
                WorkStep::Done,
            ])),
        );
        assert!(e.run());
        // Parent's last compute happens after the child finished at ~50k.
        assert!(
            e.stats.makespan >= Cycles(50_100),
            "makespan {}",
            e.stats.makespan
        );
        assert_eq!(e.stats.blocks, 1);
    }

    #[test]
    fn join_on_already_finished_task_does_not_block() {
        let mut e = exec(1, 100_000);
        let child = e.spawn(0, Box::new(LoopWork::new(1, Cycles(10))));
        // Parent spawned after; by the time it blocks, the child may be
        // done — either way it must complete.
        let _p = e.spawn(
            0,
            Box::new(ScriptedWork::new(vec![
                WorkStep::Compute(Cycles(5_000)),
                WorkStep::Block(child),
                WorkStep::Done,
            ])),
        );
        assert!(e.run());
    }

    #[test]
    fn yields_cost_less_than_preemptions() {
        // A cooperative task that yields often vs. a preempted one: the
        // cooperative run charges cheaper switches.
        let coop = {
            let mut e = exec(1, 1_000_000);
            let steps: Vec<WorkStep> = (0..20)
                .flat_map(|_| [WorkStep::Compute(Cycles(500)), WorkStep::Yield])
                .chain([WorkStep::Done])
                .collect();
            e.spawn(0, Box::new(ScriptedWork::new(steps)));
            assert!(e.run());
            e.stats.switch_cycles
        };
        let preempted = {
            let mut e = exec(1, 500);
            e.spawn(0, Box::new(LoopWork::new(20, Cycles(500))));
            assert!(e.run());
            e.stats.switch_cycles
        };
        assert!(
            coop < preempted,
            "cooperative {coop} vs preempted {preempted}"
        );
    }

    #[test]
    fn deadlocked_task_reports_incomplete() {
        let mut e = exec(1, 10_000);
        e.spawn(
            0,
            Box::new(ScriptedWork::new(vec![
                WorkStep::Block(9999),
                WorkStep::Done,
            ])),
        );
        assert!(
            !e.run(),
            "blocking on a never-signalled tag cannot complete"
        );
    }

    #[test]
    fn tracing_records_consistent_nonoverlapping_intervals() {
        use interweave_core::telemetry::{chrome_trace_json, find_overlap};
        let mut e = exec(2, 1_000);
        let a = e.spawn(0, Box::new(LoopWork::new(1, Cycles(5_000))));
        let b = e.spawn(0, Box::new(LoopWork::new(1, Cycles(5_000))));
        let c = e.spawn(1, Box::new(LoopWork::new(1, Cycles(3_000))));
        e.enable_tracing();
        assert!(e.run());
        assert!(find_overlap(&e.trace).is_none(), "overlapping intervals");
        // Per-task run time in the trace equals the executed totals.
        for (tid, expect) in [(a, 5_000u64), (b, 5_000), (c, 3_000)] {
            let traced: u64 = e
                .trace
                .iter()
                .filter(|ev| ev.id == tid && ev.kind == SpanKind::Run)
                .map(|ev| ev.duration().get())
                .sum();
            assert_eq!(traced, expect, "task {tid}");
        }
        let json = chrome_trace_json(&e.trace, 1000);
        assert!(json.contains("\"name\":\"task0\""));
        assert!(json.contains("\"name\":\"switch\""));
    }

    #[test]
    fn telemetry_attribution_sums_exactly_to_clock() {
        use interweave_core::telemetry::{Level, Sink};
        // A gnarly workload: faults, watchdog, blocks, yields, preemptions —
        // and still every simulated cycle lands in exactly one category.
        let mut cfg = interweave_core::FaultConfig::quiet(21);
        cfg.drop_ipi = 0.3;
        cfg.delay_ipi = 0.3;
        let mut e = exec(4, 2_000);
        let sink = Sink::on(Level::Full);
        e.set_telemetry(sink.clone());
        e.set_fault_plan(interweave_core::FaultPlan::new(cfg));
        e.enable_watchdog(Cycles(5_000));
        let child = e.spawn(1, Box::new(LoopWork::new(4, Cycles(3_000))));
        e.spawn(
            0,
            Box::new(ScriptedWork::new(vec![
                WorkStep::Compute(Cycles(500)),
                WorkStep::Yield,
                WorkStep::Block(child),
                WorkStep::Compute(Cycles(500)),
                WorkStep::Done,
            ])),
        );
        e.spawn(2, Box::new(LoopWork::new(2, Cycles(7_000))));
        assert!(e.run());
        sink.verify_attribution(e.attribution_clock())
            .expect("attributed cycles must equal makespan × #CPUs");
        // Counters agree with the stats struct.
        assert_eq!(
            sink.counter("kernel.sched.preemptions"),
            e.stats.preemptions
        );
        assert_eq!(sink.counter("kernel.sched.yields"), e.stats.yields);
        assert_eq!(sink.counter("kernel.sched.blocks"), e.stats.blocks);
        assert_eq!(sink.counter("core.irq.dropped"), e.stats.lost_kicks);
        assert_eq!(sink.counter("core.irq.delayed"), e.stats.delayed_kicks);
        assert_eq!(
            sink.counter("kernel.watchdog.checks"),
            e.stats.watchdog_checks
        );
        assert_eq!(
            sink.counter("kernel.watchdog.rekicks"),
            e.stats.watchdog_rekicks
        );
        assert_eq!(
            sink.counter("core.fault.lost_ipi"),
            e.take_fault_plan()
                .unwrap()
                .injected(interweave_core::FaultClass::LostIpi)
        );
        // Spans exist and respect the strict per-lane invariant.
        let spans = sink.spans();
        assert!(!spans.is_empty());
        assert!(interweave_core::telemetry::find_overlap(&spans).is_none());
    }

    #[test]
    fn telemetry_off_run_is_bit_identical() {
        use interweave_core::telemetry::{Level, Sink};
        let run = |sink: Option<Sink>| {
            let mut cfg = interweave_core::FaultConfig::quiet(33);
            cfg.drop_ipi = 0.4;
            let mut e = exec(2, 1_500);
            if let Some(s) = sink {
                e.set_telemetry(s);
            }
            e.set_fault_plan(interweave_core::FaultPlan::new(cfg));
            e.enable_watchdog(Cycles(4_000));
            e.spawn(0, Box::new(LoopWork::new(3, Cycles(2_500))));
            e.spawn(1, Box::new(LoopWork::new(3, Cycles(2_500))));
            e.run();
            (
                e.stats.makespan,
                e.stats.lost_kicks,
                e.stats.watchdog_rekicks,
                e.stats.stall_cycles,
            )
        };
        let off = run(None);
        let on = run(Some(Sink::on(Level::Full)));
        assert_eq!(off, on, "telemetry must never perturb the simulation");
    }

    #[test]
    fn layered_os_charges_more_switch_cycles() {
        let run = |os: OsPoint| {
            let mut e = exec(1, 1_000);
            e.set_os(os);
            e.spawn(0, Box::new(LoopWork::new(1, Cycles(20_000))));
            e.spawn(0, Box::new(LoopWork::new(1, Cycles(20_000))));
            assert!(e.run());
            e.stats.switch_cycles
        };
        let nk = run(OsPoint::NkLike);
        let linux = run(OsPoint::LinuxLike);
        assert!(linux > nk, "layered switches {linux} vs interwoven {nk}");
    }

    #[test]
    fn watchdog_recovers_lost_kicks() {
        use interweave_core::{FaultConfig, FaultPlan};
        // Every kick is dropped: without the watchdog nothing ever runs;
        // with it, every stall is detected and the workload completes.
        let mut cfg = FaultConfig::quiet(42);
        cfg.drop_ipi = 1.0;
        let mut e = exec(2, 10_000);
        e.set_fault_plan(FaultPlan::new(cfg));
        e.enable_watchdog(Cycles(5_000));
        e.spawn(0, Box::new(LoopWork::new(1, Cycles(2_000))));
        e.spawn(1, Box::new(LoopWork::new(1, Cycles(2_000))));
        // drop_ipi=1 would re-drop the rescue kick forever; the watchdog's
        // kick also goes through the plan, so use a plan that drops only
        // sometimes for completion...
        // (p=1 case checked separately below for detection accounting)
        let done = e.run();
        assert!(!done, "p=1 drop can never complete");
        assert!(e.stats.lost_kicks > 0);
        assert!(e.stats.watchdog_checks > 0);

        // At p=0.5 the retries eventually land and everything finishes.
        cfg.drop_ipi = 0.5;
        let mut e = exec(2, 10_000);
        e.set_fault_plan(FaultPlan::new(cfg));
        e.enable_watchdog(Cycles(5_000));
        e.spawn(0, Box::new(LoopWork::new(4, Cycles(2_000))));
        e.spawn(1, Box::new(LoopWork::new(4, Cycles(2_000))));
        assert!(e.run(), "watchdog must rescue every lost kick");
        assert!(e.stats.lost_kicks > 0, "plan never fired at p=0.5");
        assert!(e.stats.watchdog_rekicks > 0);
        assert!(e.stats.recovered_stalls > 0);
        assert!(e.stats.stall_cycles.get() > 0);
    }

    #[test]
    fn flight_recorder_tells_the_abandon_story_deterministically() {
        use interweave_core::{FaultConfig, FaultPlan};
        // Every kick drops: the watchdog re-kicks until the budget runs
        // out, then abandons — and the blackbox holds the whole story.
        let run = || {
            let mut cfg = FaultConfig::quiet(42);
            cfg.drop_ipi = 1.0;
            let mut e = exec(1, 10_000);
            e.enable_flight_recorder(64);
            e.set_fault_plan(FaultPlan::new(cfg));
            e.enable_watchdog(Cycles(5_000));
            e.spawn(0, Box::new(LoopWork::new(1, Cycles(2_000))));
            assert!(!e.run(), "p=1 drop can never complete");
            let r = e.flight_recorder().unwrap().clone();
            let kinds: Vec<&str> = r.events().map(|ev| ev.what).collect();
            assert!(kinds.contains(&"lost-kick"));
            assert!(kinds.contains(&"wd-rekick"));
            // Abandon is logged exactly once per stall episode.
            assert_eq!(kinds.iter().filter(|k| **k == "wd-abandon").count(), 1);
            r.dump("abandon")
        };
        assert_eq!(run(), run(), "blackbox dump must be deterministic");
    }

    #[test]
    fn flight_recorder_off_records_nothing_and_changes_nothing() {
        use interweave_core::{FaultConfig, FaultPlan};
        let run = |blackbox: bool| {
            let mut cfg = FaultConfig::quiet(33);
            cfg.drop_ipi = 0.4;
            let mut e = exec(2, 1_500);
            if blackbox {
                e.enable_flight_recorder(32);
            }
            e.set_fault_plan(FaultPlan::new(cfg));
            e.enable_watchdog(Cycles(4_000));
            e.spawn(0, Box::new(LoopWork::new(3, Cycles(2_500))));
            e.spawn(1, Box::new(LoopWork::new(3, Cycles(2_500))));
            e.run();
            assert_eq!(e.flight_recorder().is_some(), blackbox);
            (e.stats.makespan, e.stats.lost_kicks, e.stats.stall_cycles)
        };
        assert_eq!(run(false), run(true), "recorder must not perturb the run");
    }

    #[test]
    fn watchdog_without_faults_changes_nothing_but_terminates() {
        // Heartbeat enabled on a healthy run: same results, still quiesces.
        let mut base = exec(1, 1_000);
        base.spawn(0, Box::new(LoopWork::new(1, Cycles(10_000))));
        assert!(base.run());
        let mut wd = exec(1, 1_000);
        wd.enable_watchdog(Cycles(2_000));
        wd.spawn(0, Box::new(LoopWork::new(1, Cycles(10_000))));
        assert!(wd.run());
        assert_eq!(wd.stats.makespan, base.stats.makespan);
        assert_eq!(wd.stats.watchdog_rekicks, 0);
        assert!(wd.stats.watchdog_checks > 0);
    }

    #[test]
    fn delayed_kicks_still_complete() {
        use interweave_core::{FaultConfig, FaultPlan};
        let mut cfg = FaultConfig::quiet(9);
        cfg.delay_ipi = 1.0;
        cfg.max_ipi_delay = Cycles(3_000);
        let mut e = exec(2, 10_000);
        e.set_fault_plan(FaultPlan::new(cfg));
        e.spawn(0, Box::new(LoopWork::new(3, Cycles(1_000))));
        e.spawn(1, Box::new(LoopWork::new(3, Cycles(1_000))));
        assert!(e.run(), "delays slow the run down but never lose work");
        assert!(e.stats.delayed_kicks > 0);
        assert_eq!(e.stats.lost_kicks, 0);
    }

    #[test]
    fn injected_alloc_failure_sheds_task_and_run_degrades() {
        use interweave_core::{FaultConfig, FaultPlan};
        let mut cfg = FaultConfig::quiet(5);
        cfg.alloc_fail = 1.0;
        let mut e = exec(1, 10_000);
        e.set_stack_allocator(NumaAllocator::new(1, 6, 12));
        e.set_fault_plan(FaultPlan::new(cfg));
        let r = e.try_spawn(0, Box::new(LoopWork::new(1, Cycles(100))));
        assert_eq!(r, Err(AllocError::OutOfMemory));
        assert_eq!(e.stats.shed_tasks, 1);
        // The run itself proceeds (vacuously complete) — no abort.
        assert!(e.run());
    }

    #[test]
    fn task_stacks_are_returned_on_completion() {
        let mut e = exec(1, 10_000);
        e.set_stack_allocator(NumaAllocator::new(1, 6, 12));
        for _ in 0..4 {
            e.try_spawn(0, Box::new(LoopWork::new(1, Cycles(100))))
                .unwrap();
        }
        assert_eq!(e.stack_allocator().unwrap().zone(0).n_live(), 4);
        assert!(e.run());
        assert!(e.stack_allocator().unwrap().zone(0).fully_coalesced());
    }

    #[test]
    fn parallel_speedup_across_cpus() {
        let solo = {
            let mut e = exec(1, 100_000);
            for _ in 0..4 {
                e.spawn(0, Box::new(LoopWork::new(1, Cycles(25_000))));
            }
            assert!(e.run());
            e.stats.makespan
        };
        let quad = {
            let mut e = exec(4, 100_000);
            for c in 0..4 {
                e.spawn(c, Box::new(LoopWork::new(1, Cycles(25_000))));
            }
            assert!(e.run());
            e.stats.makespan
        };
        let speedup = solo.as_f64() / quad.as_f64();
        assert!(speedup > 3.5, "speedup {speedup:.2}");
    }

    #[test]
    fn sharded_executor_completes_with_identical_results() {
        // Per-CPU pinned work at every shard count: the merged
        // (time, shard, seq) driver must complete the same workload with
        // the same makespan and per-task compute totals. (Workloads with
        // cross-CPU ties may legally permute within a timestamp across
        // shard counts; per-CPU work pins the comparison down exactly.)
        let run = |shards: usize| {
            let mut e = exec(4, 2_000);
            e.set_shards(shards);
            assert_eq!(e.shards(), shards.clamp(1, 4));
            for c in 0..4 {
                e.spawn(
                    c,
                    Box::new(LoopWork::new(2, Cycles(3_000 + 500 * c as u64))),
                );
                e.spawn(
                    c,
                    Box::new(LoopWork::new(3, Cycles(1_000 + 100 * c as u64))),
                );
            }
            assert!(e.run());
            (e.stats.makespan, e.stats.task_executed.clone())
        };
        let base = run(1);
        for shards in [2, 3, 4, 16] {
            assert_eq!(run(shards), base, "shards={shards}");
        }
    }

    #[test]
    fn sharded_executor_is_deterministic_under_faults() {
        // With a fault plan the kick order feeds a shared RNG stream, so
        // the merged pop order is load-bearing: two identical multi-shard
        // runs must agree event for event.
        let run = || {
            let mut cfg = interweave_core::FaultConfig::quiet(77);
            cfg.drop_ipi = 0.4;
            let mut e = exec(4, 1_500);
            e.set_shards(2);
            e.set_fault_plan(interweave_core::FaultPlan::new(cfg));
            e.enable_watchdog(Cycles(4_000));
            for c in 0..4 {
                e.spawn(c, Box::new(LoopWork::new(3, Cycles(2_000))));
            }
            e.run();
            (
                e.stats.makespan,
                e.stats.lost_kicks,
                e.stats.watchdog_rekicks,
                e.stats.stall_cycles,
            )
        };
        assert_eq!(run(), run());
    }
}
