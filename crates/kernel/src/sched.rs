//! Run-queue implementations: round-robin and earliest-deadline-first.
//!
//! §III: Nautilus "provides predictable behavior through a variety of means,
//! including hard real-time scheduling". The EDF queue here backs the
//! RT variants in the Fig. 4 study and admission control demonstrates the
//! predictability claim; the round-robin queue backs non-RT threads and the
//! per-CPU worker pools in the OpenMP and heartbeat experiments.

use interweave_core::time::Cycles;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Identifier of a schedulable entity (thread or fiber).
pub type TaskId = u64;

/// A run queue: pick order is the policy.
pub trait RunQueue {
    /// Enqueue a task.
    fn push(&mut self, t: TaskId);
    /// Pick the next task to run, removing it from the queue.
    fn pop(&mut self) -> Option<TaskId>;
    /// Number of queued tasks.
    fn len(&self) -> usize;
    /// True when no tasks are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// FIFO round-robin queue.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    q: VecDeque<TaskId>,
}

impl RoundRobin {
    /// An empty queue.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }
}

impl RunQueue for RoundRobin {
    fn push(&mut self, t: TaskId) {
        self.q.push_back(t);
    }
    fn pop(&mut self) -> Option<TaskId> {
        self.q.pop_front()
    }
    fn len(&self) -> usize {
        self.q.len()
    }
}

/// An EDF task: period, worst-case slice, and the next absolute deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdfTask {
    /// Task id.
    pub id: TaskId,
    /// Absolute deadline of the current job.
    pub deadline: Cycles,
    /// Period (equals relative deadline in this implicit-deadline model).
    pub period: Cycles,
    /// Worst-case execution slice per period.
    pub slice: Cycles,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ByDeadline(EdfTask);

impl Ord for ByDeadline {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (deadline, id) — id tie-break keeps pops deterministic.
        other
            .0
            .deadline
            .cmp(&self.0.deadline)
            .then_with(|| other.0.id.cmp(&self.0.id))
    }
}
impl PartialOrd for ByDeadline {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Earliest-deadline-first queue with utilization-based admission control.
#[derive(Debug, Clone, Default)]
pub struct Edf {
    heap: BinaryHeap<ByDeadline>,
    /// Total admitted utilization (Σ slice/period), in parts per million.
    util_ppm: u64,
}

impl Edf {
    /// An empty EDF queue.
    pub fn new() -> Edf {
        Edf::default()
    }

    /// Admit a periodic task if total utilization stays ≤ 100 %. Returns
    /// `false` (and does not enqueue) when admission fails — the hard-RT
    /// guarantee of §III's scheduler.
    pub fn admit(&mut self, t: EdfTask) -> bool {
        assert!(t.period.get() > 0, "EDF task must have a nonzero period");
        let u = t.slice.get().saturating_mul(1_000_000) / t.period.get();
        if self.util_ppm + u > 1_000_000 {
            return false;
        }
        self.util_ppm += u;
        self.heap.push(ByDeadline(t));
        true
    }

    /// Pop the task with the earliest deadline.
    pub fn pop_task(&mut self) -> Option<EdfTask> {
        self.heap.pop().map(|b| b.0)
    }

    /// Re-enqueue a task for its next period (deadline advanced).
    pub fn requeue_next_period(&mut self, mut t: EdfTask) {
        t.deadline += t.period;
        self.heap.push(ByDeadline(t));
    }

    /// Admitted utilization as a fraction.
    pub fn utilization(&self) -> f64 {
        self.util_ppm as f64 / 1_000_000.0
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Simulate preemptive EDF over `horizon` cycles on one CPU, returning the
/// number of deadline misses (0 for any admitted task set, by EDF
/// optimality on one processor). Jobs release periodically from time 0 and
/// the earliest-deadline pending job always runs, preempted on releases.
pub fn edf_simulate(tasks: &[EdfTask], horizon: Cycles) -> usize {
    // Admission check (assert the caller gave an admissible set).
    {
        let mut q = Edf::new();
        for &t in tasks {
            assert!(q.admit(t), "edf_simulate requires an admissible task set");
        }
    }

    // All job releases up to the horizon: (release, deadline, slice).
    let mut releases: Vec<(Cycles, Cycles, Cycles)> = Vec::new();
    for t in tasks {
        let mut r = Cycles::ZERO;
        while r < horizon {
            releases.push((r, r + t.period, t.slice));
            r += t.period;
        }
    }
    releases.sort_unstable_by_key(|&(r, d, _)| (r, d));

    // Pending jobs: min-heap by deadline with remaining work.
    let mut pending: BinaryHeap<ByDeadline> = BinaryHeap::new();
    let mut now = Cycles::ZERO;
    let mut next_rel = 0usize;
    let mut misses = 0usize;

    loop {
        // Admit all jobs released by `now`.
        while next_rel < releases.len() && releases[next_rel].0 <= now {
            let (_, d, s) = releases[next_rel];
            pending.push(ByDeadline(EdfTask {
                id: next_rel as u64,
                deadline: d,
                period: Cycles(1), // unused during simulation
                slice: s,
            }));
            next_rel += 1;
        }
        match pending.pop() {
            None => {
                // Idle: jump to the next release, or finish.
                if next_rel >= releases.len() {
                    break;
                }
                now = releases[next_rel].0;
            }
            Some(ByDeadline(mut job)) => {
                // Run until completion or the next release, whichever first.
                let until = if next_rel < releases.len() {
                    releases[next_rel].0
                } else {
                    Cycles::MAX
                };
                let finish = now + job.slice;
                if finish <= until {
                    now = finish;
                    if now > job.deadline {
                        misses += 1;
                    }
                } else {
                    job.slice = finish - until;
                    now = until;
                    pending.push(ByDeadline(job));
                }
            }
        }
    }
    misses
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_fifo() {
        let mut q = RoundRobin::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.pop(), Some(1));
        q.push(1);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.is_empty());
    }

    #[test]
    fn edf_orders_by_deadline() {
        let mut q = Edf::new();
        let mk = |id, d| EdfTask {
            id,
            deadline: Cycles(d),
            period: Cycles(1000),
            slice: Cycles(10),
        };
        assert!(q.admit(mk(1, 500)));
        assert!(q.admit(mk(2, 100)));
        assert!(q.admit(mk(3, 300)));
        assert_eq!(q.pop_task().unwrap().id, 2);
        assert_eq!(q.pop_task().unwrap().id, 3);
        assert_eq!(q.pop_task().unwrap().id, 1);
    }

    #[test]
    fn edf_admission_control_rejects_overload() {
        let mut q = Edf::new();
        let t = |id, slice, period| EdfTask {
            id,
            deadline: Cycles(period),
            period: Cycles(period),
            slice: Cycles(slice),
        };
        assert!(q.admit(t(1, 600, 1000))); // 60 %
        assert!(q.admit(t(2, 300, 1000))); // 90 %
        assert!(!q.admit(t(3, 200, 1000))); // would be 110 %
        assert!(q.admit(t(4, 100, 1000))); // exactly 100 %
        assert!((q.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn admitted_task_sets_meet_deadlines() {
        let tasks = [
            EdfTask {
                id: 1,
                deadline: Cycles(100),
                period: Cycles(100),
                slice: Cycles(30),
            },
            EdfTask {
                id: 2,
                deadline: Cycles(250),
                period: Cycles(250),
                slice: Cycles(100),
            },
        ];
        assert_eq!(edf_simulate(&tasks, Cycles(10_000)), 0);
    }

    #[test]
    fn deterministic_tie_break() {
        let mut q = Edf::new();
        for id in [5, 1, 3] {
            q.admit(EdfTask {
                id,
                deadline: Cycles(100),
                period: Cycles(1000),
                slice: Cycles(1),
            });
        }
        assert_eq!(q.pop_task().unwrap().id, 1);
        assert_eq!(q.pop_task().unwrap().id, 3);
        assert_eq!(q.pop_task().unwrap().id, 5);
    }
}
