//! Buddy allocator with NUMA zones.
//!
//! §III: "All memory management, including for NUMA, is explicit and
//! allocations are done with buddy system allocators that are selected based
//! on the target zone. For threads that are bound to specific CPUs,
//! essential thread (e.g., context, stack) and scheduler state is guaranteed
//! to always be in the most desirable zone."
//!
//! This is a real allocator (not a cost model): blocks split to the
//! requested order on allocation and recursively coalesce with their buddy
//! on free. Property tests in `tests/` verify disjointness and full
//! coalescing.

use interweave_core::telemetry::{Key, Layer, Sink, Unit};

/// The maximum block order supported (2^MAX_ORDER × min-block bytes).
pub const MAX_ORDER: usize = 24;

const KEY_ALLOCS: Key = Key::new("kernel.buddy.allocs", Layer::Kernel, Unit::Count);
const KEY_FREES: Key = Key::new("kernel.buddy.frees", Layer::Kernel, Unit::Count);
const KEY_OOM: Key = Key::new("kernel.buddy.oom", Layer::Kernel, Unit::Count);
const KEY_LIVE_BYTES: Key = Key::new("kernel.buddy.live_bytes", Layer::Kernel, Unit::Bytes);

/// One buddy zone managing a contiguous physical range.
#[derive(Debug, Clone)]
pub struct BuddyZone {
    base: u64,
    /// log2 of the minimum block size in bytes.
    min_order: u32,
    /// Order of the whole zone relative to min blocks.
    levels: usize,
    /// Free lists per order (order 0 = min block). Entries are offsets from
    /// `base` in min-block units.
    free: Vec<Vec<u64>>,
    /// Allocated blocks: offset (min-block units) → order.
    live: std::collections::BTreeMap<u64, usize>,
    /// Bytes currently allocated (as block sizes, i.e. including internal
    /// fragmentation).
    pub live_bytes: u64,
}

/// Allocation failure. Every allocator entry point returns this as a typed
/// `Result` — out-of-memory is an *expected* outcome the caller handles
/// (shed the task, fall back, degrade), never a panic inside the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No free block of the required order (zone exhausted or fragmented).
    OutOfMemory,
    /// Free of an address that is not the base of a live allocation.
    BadFree,
    /// Request larger than the zone itself.
    TooLarge,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "out of memory"),
            AllocError::BadFree => write!(f, "bad free"),
            AllocError::TooLarge => write!(f, "request exceeds zone"),
        }
    }
}

impl std::error::Error for AllocError {}

impl BuddyZone {
    /// A zone at `base` spanning `2^levels` min-blocks of `2^min_order`
    /// bytes each.
    pub fn new(base: u64, min_order: u32, levels: usize) -> BuddyZone {
        assert!(levels <= MAX_ORDER, "zone too large");
        let mut free = vec![Vec::new(); levels + 1];
        free[levels].push(0); // one block covering the whole zone
        BuddyZone {
            base,
            min_order,
            levels,
            free,
            live: std::collections::BTreeMap::new(),
            live_bytes: 0,
        }
    }

    /// Zone capacity in bytes.
    pub fn capacity(&self) -> u64 {
        (1u64 << self.levels) << self.min_order
    }

    fn order_for(&self, bytes: u64) -> Result<usize, AllocError> {
        let min = 1u64 << self.min_order;
        let blocks = bytes.max(1).div_ceil(min);
        let order = blocks.next_power_of_two().trailing_zeros() as usize;
        if order > self.levels {
            Err(AllocError::TooLarge)
        } else {
            Ok(order)
        }
    }

    /// Allocate at least `bytes`; returns the block's physical address.
    pub fn alloc(&mut self, bytes: u64) -> Result<u64, AllocError> {
        let want = self.order_for(bytes)?;
        // Find and pop the smallest available order ≥ want, with exhaustion
        // reported as a typed error — there is no panicking path here.
        let mut have = want;
        let off = loop {
            if have > self.levels {
                return Err(AllocError::OutOfMemory);
            }
            if let Some(off) = self.free[have].pop() {
                break off;
            }
            have += 1;
        };
        // Split down to the wanted order.
        while have > want {
            have -= 1;
            let buddy = off + (1u64 << have);
            self.free[have].push(buddy);
        }
        self.live.insert(off, want);
        self.live_bytes += (1u64 << want) << self.min_order;
        Ok(self.base + (off << self.min_order))
    }

    /// Free a previously allocated block; coalesces with free buddies.
    pub fn free(&mut self, addr: u64) -> Result<(), AllocError> {
        if addr < self.base {
            return Err(AllocError::BadFree);
        }
        let mut off = (addr - self.base) >> self.min_order;
        let mut order = self.live.remove(&off).ok_or(AllocError::BadFree)?;
        self.live_bytes -= (1u64 << order) << self.min_order;
        // Coalesce upward while the buddy is free.
        while order < self.levels {
            let buddy = off ^ (1u64 << order);
            match self.free[order].iter().position(|&b| b == buddy) {
                Some(i) => {
                    self.free[order].swap_remove(i);
                    off = off.min(buddy);
                    order += 1;
                }
                None => break,
            }
        }
        self.free[order].push(off);
        Ok(())
    }

    /// Number of live allocations.
    pub fn n_live(&self) -> usize {
        self.live.len()
    }

    /// True when the zone has coalesced back into a single maximal block —
    /// i.e. everything was freed and coalescing worked perfectly.
    pub fn fully_coalesced(&self) -> bool {
        self.live.is_empty()
            && self.free[self.levels].len() == 1
            && self.free[..self.levels].iter().all(|l| l.is_empty())
    }

    /// The live block (base address, size in bytes) containing `addr`, if
    /// any.
    pub fn containing(&self, addr: u64) -> Option<(u64, u64)> {
        if addr < self.base {
            return None;
        }
        let off = (addr - self.base) >> self.min_order;
        self.live
            .range(..=off)
            .next_back()
            .map(|(&b, &o)| {
                (
                    self.base + (b << self.min_order),
                    (1u64 << o) << self.min_order,
                )
            })
            .filter(|&(b, sz)| addr < b + sz)
    }
}

/// NUMA-aware allocator: one buddy zone per NUMA domain with first-choice /
/// fallback selection, mirroring Nautilus's per-zone allocators.
#[derive(Debug, Clone)]
pub struct NumaAllocator {
    zones: Vec<BuddyZone>,
    /// Telemetry sink (off by default); allocation traffic is counted per
    /// zone, with the zone index as the registry shard.
    sink: Sink,
}

impl NumaAllocator {
    /// `n_zones` zones of `2^levels` blocks of `2^min_order` bytes, laid out
    /// contiguously.
    pub fn new(n_zones: usize, min_order: u32, levels: usize) -> NumaAllocator {
        assert!(n_zones > 0);
        let span = (1u64 << levels) << min_order;
        let zones = (0..n_zones)
            .map(|z| BuddyZone::new(0x100_0000 + z as u64 * span, min_order, levels))
            .collect();
        NumaAllocator {
            zones,
            sink: Sink::off(),
        }
    }

    /// Attach a telemetry sink: allocations, frees, OOMs, and live bytes
    /// are published per zone (the zone index is the shard).
    pub fn set_sink(&mut self, sink: Sink) {
        self.sink = sink;
    }

    /// Number of zones.
    pub fn n_zones(&self) -> usize {
        self.zones.len()
    }

    /// Allocate preferring `zone`, falling back to the others in order —
    /// the "most desirable zone" policy of §III.
    pub fn alloc(&mut self, zone: usize, bytes: u64) -> Result<(u64, usize), AllocError> {
        let n = self.zones.len();
        for k in 0..n {
            let z = (zone + k) % n;
            match self.zones[z].alloc(bytes) {
                Ok(addr) => {
                    self.sink.count(&KEY_ALLOCS, z, 1);
                    self.sink
                        .gauge(&KEY_LIVE_BYTES, z, self.zones[z].live_bytes);
                    return Ok((addr, z));
                }
                Err(AllocError::TooLarge) => return Err(AllocError::TooLarge),
                Err(_) => continue,
            }
        }
        self.sink.count(&KEY_OOM, zone, 1);
        Err(AllocError::OutOfMemory)
    }

    /// [`NumaAllocator::alloc`] with the fault plane interposed: before the
    /// real allocation is attempted, `faults` may declare this request
    /// failed, modeling transient exhaustion (e.g. another core draining the
    /// zone between check and grab). Injected failures are typed
    /// [`AllocError::OutOfMemory`] — indistinguishable from the real thing,
    /// which is the point: callers must already handle it.
    pub fn alloc_faulted(
        &mut self,
        zone: usize,
        bytes: u64,
        faults: &mut interweave_core::FaultPlan,
    ) -> Result<(u64, usize), AllocError> {
        if faults.fail_alloc() {
            self.sink.count(&KEY_OOM, zone, 1);
            return Err(AllocError::OutOfMemory);
        }
        self.alloc(zone, bytes)
    }

    /// Free an address in whichever zone owns it.
    pub fn free(&mut self, addr: u64) -> Result<(), AllocError> {
        for (i, z) in self.zones.iter_mut().enumerate() {
            if addr >= z.base && addr < z.base + z.capacity() {
                z.free(addr)?;
                self.sink.count(&KEY_FREES, i, 1);
                self.sink.gauge(&KEY_LIVE_BYTES, i, z.live_bytes);
                return Ok(());
            }
        }
        Err(AllocError::BadFree)
    }

    /// Borrow a zone (inspection in tests).
    pub fn zone(&self, i: usize) -> &BuddyZone {
        &self.zones[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut z = BuddyZone::new(0x1000, 6, 10); // 64 B min, 64 KiB zone
        let a = z.alloc(100).unwrap(); // rounds to 128
        assert!(a >= 0x1000);
        assert_eq!(z.n_live(), 1);
        z.free(a).unwrap();
        assert!(z.fully_coalesced());
    }

    #[test]
    fn distinct_allocations_are_disjoint() {
        let mut z = BuddyZone::new(0, 6, 12);
        let mut blocks = Vec::new();
        for i in 0..32 {
            let sz = 64 * (1 + (i % 5));
            let a = z.alloc(sz as u64).unwrap();
            blocks.push((a, z.containing(a).unwrap().1));
        }
        for (i, &(a, sa)) in blocks.iter().enumerate() {
            for &(b, sb) in &blocks[i + 1..] {
                assert!(
                    a + sa <= b || b + sb <= a,
                    "overlap: {a:#x}+{sa} vs {b:#x}+{sb}"
                );
            }
        }
    }

    #[test]
    fn splitting_and_coalescing_roundtrip() {
        let mut z = BuddyZone::new(0, 6, 8);
        let addrs: Vec<u64> = (0..16).map(|_| z.alloc(64).unwrap()).collect();
        assert_eq!(z.n_live(), 16);
        // Free in interleaved order to exercise partial coalescing.
        for &a in addrs.iter().step_by(2) {
            z.free(a).unwrap();
        }
        for &a in addrs.iter().skip(1).step_by(2) {
            z.free(a).unwrap();
        }
        assert!(z.fully_coalesced());
    }

    #[test]
    fn oom_when_exhausted() {
        let mut z = BuddyZone::new(0, 6, 2); // 4 min blocks = 256 B
        let _a = z.alloc(256).unwrap();
        assert_eq!(z.alloc(64), Err(AllocError::OutOfMemory));
    }

    #[test]
    fn too_large_is_distinguished() {
        let mut z = BuddyZone::new(0, 6, 2);
        assert_eq!(z.alloc(1 << 20), Err(AllocError::TooLarge));
    }

    #[test]
    fn double_free_rejected() {
        let mut z = BuddyZone::new(0, 6, 4);
        let a = z.alloc(64).unwrap();
        z.free(a).unwrap();
        assert_eq!(z.free(a), Err(AllocError::BadFree));
    }

    #[test]
    fn containing_lookup() {
        let mut z = BuddyZone::new(0x4000, 6, 6);
        let a = z.alloc(128).unwrap();
        let (base, size) = z.containing(a + 64).unwrap();
        assert_eq!(base, a);
        assert_eq!(size, 128);
        assert!(z.containing(a + 128).is_none_or(|(b, _)| b != a));
    }

    #[test]
    fn numa_prefers_home_zone_and_falls_back() {
        let mut n = NumaAllocator::new(2, 6, 4); // 2 zones × 1 KiB
        let (_, z0) = n.alloc(0, 512).unwrap();
        assert_eq!(z0, 0);
        let (_, z0b) = n.alloc(0, 512).unwrap();
        assert_eq!(z0b, 0);
        // Zone 0 is now full; falls back to zone 1.
        let (_, z1) = n.alloc(0, 512).unwrap();
        assert_eq!(z1, 1);
    }

    #[test]
    fn alloc_faulted_injects_typed_oom() {
        use interweave_core::{FaultConfig, FaultPlan};
        let mut n = NumaAllocator::new(1, 6, 8);
        // A quiet plan never interferes.
        let mut quiet = FaultPlan::quiet(7);
        let (a, _) = n.alloc_faulted(0, 128, &mut quiet).unwrap();
        n.free(a).unwrap();
        // At p=1 every request fails as typed OOM, and nothing is reserved.
        let mut cfg = FaultConfig::quiet(7);
        cfg.alloc_fail = 1.0;
        let mut noisy = FaultPlan::new(cfg);
        assert_eq!(
            n.alloc_faulted(0, 128, &mut noisy),
            Err(AllocError::OutOfMemory)
        );
        assert_eq!(n.zone(0).n_live(), 0);
    }

    #[test]
    fn numa_free_routes_to_owning_zone() {
        let mut n = NumaAllocator::new(2, 6, 4);
        let (a, _) = n.alloc(1, 128).unwrap();
        n.free(a).unwrap();
        assert!(n.zone(1).fully_coalesced());
    }
}
