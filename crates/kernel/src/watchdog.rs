//! The kernel watchdog's retry arithmetic, factored out as data.
//!
//! The executor's watchdog heartbeat (re-kick stalled CPUs under bounded
//! exponential backoff) and the serving plane's stuck-virtine reclaim are
//! the same policy observed from two places: "when does the next scan run,
//! how far apart are retries, when do we give up". Keeping the arithmetic
//! in one [`WatchdogPolicy`] struct means the serving simulation's
//! reclaim-latency model is *by construction* the executor's recovery
//! schedule, not a drifting copy — and the executor's behaviour stays
//! bit-identical because every method reproduces the original inline
//! expressions exactly.

use interweave_core::time::Cycles;

/// Bound on the watchdog's exponential retry backoff, in heartbeat periods.
/// A CPU whose re-kicks keep getting dropped is retried at 1, 2, 4, ... up
/// to this many periods apart, never less often.
pub const MAX_WATCHDOG_BACKOFF: u32 = 8;

/// Consecutive failed re-kicks after which the watchdog abandons a CPU
/// (declares it failed and stops retrying). Keeps a run with a 100 %
/// drop rate terminating instead of retrying forever; the count resets on
/// any successful dispatch.
pub const MAX_WATCHDOG_REKICKS: u32 = 16;

/// The watchdog's timing policy: scan period plus the retry/abandon bounds.
///
/// All methods are pure arithmetic over the fields, so two layers sharing a
/// policy value agree exactly on the recovery schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogPolicy {
    /// Heartbeat scan period.
    pub period: Cycles,
    /// Backoff ceiling, in periods (see [`MAX_WATCHDOG_BACKOFF`]).
    pub max_backoff: u32,
    /// Re-kick budget before a CPU is abandoned (see
    /// [`MAX_WATCHDOG_REKICKS`]).
    pub max_rekicks: u32,
}

impl WatchdogPolicy {
    /// The default policy at the given scan period — the bounds every
    /// kernel run has used since the fault plane landed.
    pub fn new(period: Cycles) -> WatchdogPolicy {
        assert!(period.get() > 0, "watchdog period must be positive");
        WatchdogPolicy {
            period,
            max_backoff: MAX_WATCHDOG_BACKOFF,
            max_rekicks: MAX_WATCHDOG_REKICKS,
        }
    }

    /// First scan instant strictly after `t`: scans land on multiples of
    /// the period, so a request stuck at `t` is noticed at the next one.
    /// This is the serving plane's reclaim-latency model for lost
    /// completion kicks.
    pub fn next_scan_after(&self, t: Cycles) -> Cycles {
        let p = self.period.get();
        Cycles((t.get() / p + 1).saturating_mul(p))
    }

    /// Distance to the next permitted retry at backoff level `backoff`
    /// (the executor adds this to the scan time that re-kicked).
    pub fn retry_backoff(&self, backoff: u32) -> Cycles {
        Cycles(self.period.get().saturating_mul(backoff as u64))
    }

    /// The next backoff level after a re-kick: doubles, capped at
    /// [`Self::max_backoff`].
    pub fn escalate(&self, backoff: u32) -> u32 {
        (backoff * 2).min(self.max_backoff)
    }

    /// True once `rekicks` consecutive failed re-kicks exhaust the budget:
    /// the CPU is declared failed and no longer retried.
    pub fn abandons(&self, rekicks: u32) -> bool {
        rekicks >= self.max_rekicks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_scan_rounds_up_to_the_next_period_multiple() {
        let wd = WatchdogPolicy::new(Cycles(1_000));
        assert_eq!(wd.next_scan_after(Cycles(0)), Cycles(1_000));
        assert_eq!(wd.next_scan_after(Cycles(1)), Cycles(1_000));
        assert_eq!(wd.next_scan_after(Cycles(999)), Cycles(1_000));
        // A request stuck exactly on a scan instant waits a full period:
        // the scan at 1_000 runs before the stall is observable.
        assert_eq!(wd.next_scan_after(Cycles(1_000)), Cycles(2_000));
        assert_eq!(wd.next_scan_after(Cycles(2_500)), Cycles(3_000));
    }

    #[test]
    fn backoff_escalates_geometrically_and_saturates() {
        let wd = WatchdogPolicy::new(Cycles(500));
        let mut b = 1;
        let mut seen = Vec::new();
        for _ in 0..6 {
            seen.push(wd.retry_backoff(b));
            b = wd.escalate(b);
        }
        assert_eq!(
            seen,
            [500, 1_000, 2_000, 4_000, 4_000, 4_000]
                .map(Cycles)
                .to_vec()
        );
        assert_eq!(b, MAX_WATCHDOG_BACKOFF);
    }

    #[test]
    fn rekick_budget_abandons_at_the_bound() {
        let wd = WatchdogPolicy::new(Cycles(100));
        assert!(!wd.abandons(0));
        assert!(!wd.abandons(MAX_WATCHDOG_REKICKS - 1));
        assert!(wd.abandons(MAX_WATCHDOG_REKICKS));
        assert!(wd.abandons(MAX_WATCHDOG_REKICKS + 1));
    }

    #[test]
    fn default_policy_carries_the_executor_bounds() {
        let wd = WatchdogPolicy::new(Cycles(42));
        assert_eq!(wd.max_backoff, MAX_WATCHDOG_BACKOFF);
        assert_eq!(wd.max_rekicks, MAX_WATCHDOG_REKICKS);
    }
}
