//! The §III primitives table (TAB-NK).
//!
//! "Application benchmark speedups from 20–40 % over user-level execution
//! on Linux have been demonstrated, while benchmarks show that primitives
//! such as thread management and event signaling are orders of magnitude
//! faster." This module evaluates the primitive costs of any set of kernel
//! models on a given machine and formats them as the comparison table the
//! bench binaries print. With the OS axis promoted to three points, callers
//! pass the column set they want — typically `[Linux, Aster, Nautilus]` —
//! and the table stays axis-driven rather than hard-coding a pair.

use crate::os::OsModel;
use interweave_core::time::Cycles;

/// One primitive's cost under each kernel column.
#[derive(Debug, Clone)]
pub struct PrimitiveRow {
    /// Primitive name.
    pub name: &'static str,
    /// Cost per kernel, in the column order the table was built with.
    pub costs: Vec<Cycles>,
}

impl PrimitiveRow {
    /// Speedup of column `b` over column `a` (cost(a) / cost(b)).
    pub fn speedup(&self, a: usize, b: usize) -> f64 {
        self.costs[a].as_f64() / self.costs[b].as_f64().max(1.0)
    }
}

/// A named cost probe against one kernel model.
type Probe = (&'static str, fn(&dyn OsModel) -> Cycles);

/// Evaluate the primitive suite over a set of named kernel columns (all on
/// the same machine). Column order in every row matches the input order.
pub fn primitive_table(columns: &[(&'static str, &dyn OsModel)]) -> Vec<PrimitiveRow> {
    assert!(!columns.is_empty(), "at least one kernel column required");
    let machine = &columns[0].1.machine().name;
    for (name, os) in columns {
        assert_eq!(
            &os.machine().name,
            machine,
            "primitive comparison requires the same machine (column {name})"
        );
    }
    let probes: [Probe; 10] = [
        ("thread create", |os| os.thread_create()),
        ("thread join", |os| os.thread_join()),
        ("ctx switch (non-RT, FP)", |os| os.ctx_switch(false, true)),
        ("ctx switch (RT, no-FP)", |os| os.ctx_switch(true, false)),
        ("event delivery (receiver)", |os| os.event_deliver()),
        ("event send (one target)", |os| os.event_send()),
        ("remote wake cost (waker)", |os| os.wake_remote().0),
        ("remote wake latency", |os| os.wake_remote().1),
        ("barrier episode (blocking)", |os| os.barrier_block()),
        ("mutex (uncontended)", |os| os.mutex_uncontended()),
    ];
    probes
        .iter()
        .map(|&(name, probe)| PrimitiveRow {
            name,
            costs: columns.iter().map(|&(_, os)| probe(os)).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::{AsterModel, LinuxModel, NkModel};
    use interweave_core::machine::MachineConfig;

    /// Columns in Linux → Aster → Nautilus order (left to right across the
    /// OS axis, commodity first).
    fn table() -> Vec<PrimitiveRow> {
        let mc = MachineConfig::xeon_server_2s();
        let lx = LinuxModel::new(mc.clone());
        let fk = AsterModel::new(mc.clone());
        let nk = NkModel::new(mc);
        primitive_table(&[("Linux", &lx), ("Aster", &fk), ("Nautilus", &nk)])
    }

    #[test]
    fn nautilus_wins_every_primitive() {
        for row in table() {
            assert!(
                row.costs[2] <= row.costs[0],
                "{}: nk {} vs linux {}",
                row.name,
                row.costs[2],
                row.costs[0]
            );
        }
    }

    #[test]
    fn aster_is_between_except_the_mutex() {
        for row in table() {
            if row.name == "mutex (uncontended)" {
                // The honest exception: the checked RAII lock is fatter than
                // the futex fast path, so Aster is not between on this row.
                assert!(row.costs[1] > row.costs[0]);
                continue;
            }
            assert!(
                row.costs[2] <= row.costs[1] && row.costs[1] <= row.costs[0],
                "{}: nk {} aster {} linux {}",
                row.name,
                row.costs[2],
                row.costs[1],
                row.costs[0]
            );
        }
    }

    #[test]
    fn thread_management_is_order_of_magnitude() {
        let t = table();
        let create = t.iter().find(|r| r.name == "thread create").unwrap();
        assert!(
            create.speedup(0, 2) >= 10.0,
            "create speedup {:.1}",
            create.speedup(0, 2)
        );
    }

    #[test]
    fn event_signaling_speedup_is_large() {
        let t = table();
        let deliver = t
            .iter()
            .find(|r| r.name == "event delivery (receiver)")
            .unwrap();
        assert!(deliver.speedup(0, 2) >= 2.0);
    }

    #[test]
    #[should_panic(expected = "same machine")]
    fn mismatched_machines_rejected() {
        let a = LinuxModel::new(MachineConfig::xeon_server_2s());
        let b = NkModel::new(MachineConfig::phi_knl());
        let _ = primitive_table(&[("Linux", &a), ("Nautilus", &b)]);
    }
}
