//! The §III primitives table (TAB-NK).
//!
//! "Application benchmark speedups from 20–40 % over user-level execution
//! on Linux have been demonstrated, while benchmarks show that primitives
//! such as thread management and event signaling are orders of magnitude
//! faster." This module evaluates both kernels' primitive costs on a given
//! machine and formats them as the comparison table the bench binary
//! prints.

use crate::os::OsModel;
use interweave_core::time::Cycles;

/// One primitive's cost under both kernels.
#[derive(Debug, Clone)]
pub struct PrimitiveRow {
    /// Primitive name.
    pub name: &'static str,
    /// Cost on the Linux-like kernel.
    pub linux: Cycles,
    /// Cost on the Nautilus-like kernel.
    pub nautilus: Cycles,
}

impl PrimitiveRow {
    /// Linux cost / Nautilus cost.
    pub fn speedup(&self) -> f64 {
        self.linux.as_f64() / self.nautilus.as_f64().max(1.0)
    }
}

/// Evaluate the primitive suite on a pair of kernel models (same machine).
pub fn primitive_table(linux: &dyn OsModel, nk: &dyn OsModel) -> Vec<PrimitiveRow> {
    assert_eq!(
        linux.machine().name,
        nk.machine().name,
        "primitive comparison requires the same machine"
    );
    let (lx_wake_cost, lx_wake_lat) = linux.wake_remote();
    let (nk_wake_cost, nk_wake_lat) = nk.wake_remote();
    vec![
        PrimitiveRow {
            name: "thread create",
            linux: linux.thread_create(),
            nautilus: nk.thread_create(),
        },
        PrimitiveRow {
            name: "thread join",
            linux: linux.thread_join(),
            nautilus: nk.thread_join(),
        },
        PrimitiveRow {
            name: "ctx switch (non-RT, FP)",
            linux: linux.ctx_switch(false, true),
            nautilus: nk.ctx_switch(false, true),
        },
        PrimitiveRow {
            name: "ctx switch (RT, no-FP)",
            linux: linux.ctx_switch(true, false),
            nautilus: nk.ctx_switch(true, false),
        },
        PrimitiveRow {
            name: "event delivery (receiver)",
            linux: linux.event_deliver(),
            nautilus: nk.event_deliver(),
        },
        PrimitiveRow {
            name: "event send (one target)",
            linux: linux.event_send(),
            nautilus: nk.event_send(),
        },
        PrimitiveRow {
            name: "remote wake cost (waker)",
            linux: lx_wake_cost,
            nautilus: nk_wake_cost,
        },
        PrimitiveRow {
            name: "remote wake latency",
            linux: lx_wake_lat,
            nautilus: nk_wake_lat,
        },
        PrimitiveRow {
            name: "barrier episode (blocking)",
            linux: linux.barrier_block(),
            nautilus: nk.barrier_block(),
        },
        PrimitiveRow {
            name: "mutex (uncontended)",
            linux: linux.mutex_uncontended(),
            nautilus: nk.mutex_uncontended(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::{LinuxModel, NkModel};
    use interweave_core::machine::MachineConfig;

    fn table() -> Vec<PrimitiveRow> {
        let mc = MachineConfig::xeon_server_2s();
        primitive_table(&LinuxModel::new(mc.clone()), &NkModel::new(mc))
    }

    #[test]
    fn nautilus_wins_every_primitive() {
        for row in table() {
            assert!(
                row.nautilus <= row.linux,
                "{}: nk {} vs linux {}",
                row.name,
                row.nautilus,
                row.linux
            );
        }
    }

    #[test]
    fn thread_management_is_order_of_magnitude() {
        let t = table();
        let create = t.iter().find(|r| r.name == "thread create").unwrap();
        assert!(
            create.speedup() >= 10.0,
            "create speedup {:.1}",
            create.speedup()
        );
    }

    #[test]
    fn event_signaling_speedup_is_large() {
        let t = table();
        let deliver = t
            .iter()
            .find(|r| r.name == "event delivery (receiver)")
            .unwrap();
        assert!(deliver.speedup() >= 2.0);
    }

    #[test]
    #[should_panic(expected = "same machine")]
    fn mismatched_machines_rejected() {
        let a = LinuxModel::new(MachineConfig::xeon_server_2s());
        let b = NkModel::new(MachineConfig::phi_knl());
        let _ = primitive_table(&a, &b);
    }
}
