//! The paging + TLB model the commodity stack pays for translation.
//!
//! §I names paging as the first example limitation: "virtual memory in the
//! form of paging ... demands the existence of TLBs and other hardware
//! structures \[with\] substantial overheads in time and energy." §III's
//! Nautilus answer is identity mapping with the largest page size — "TLB
//! misses are extremely rare ... There are no page faults." This model
//! charges exactly those costs so the CARAT experiment can compare three
//! translation regimes: paging (this model), raw identity mapping (zero
//! cost), and CARAT guards (compiler-inserted checks).

use interweave_core::machine::CostModel;
use interweave_core::time::Cycles;
use std::collections::{HashSet, VecDeque};

/// A TLB with FIFO replacement (a deterministic stand-in for LRU) plus a
/// demand-fault set: the first touch of each page takes a page fault.
#[derive(Debug, Clone)]
pub struct PagingModel {
    page_shift: u32,
    capacity: usize,
    fifo: VecDeque<u64>,
    present: HashSet<u64>,
    touched: HashSet<u64>,
    tlb_walk: Cycles,
    page_fault: Cycles,
    /// TLB miss count.
    pub misses: u64,
    /// TLB hit count.
    pub hits: u64,
    /// Demand page faults taken.
    pub faults: u64,
    /// Total translation cycles charged.
    pub charged: Cycles,
}

impl PagingModel {
    /// A paging model using the cost model's TLB geometry.
    pub fn new(cost: &CostModel) -> PagingModel {
        PagingModel {
            page_shift: cost.page_size.trailing_zeros(),
            capacity: cost.tlb_entries,
            fifo: VecDeque::new(),
            present: HashSet::new(),
            touched: HashSet::new(),
            tlb_walk: cost.tlb_walk,
            page_fault: cost.page_fault,
            misses: 0,
            hits: 0,
            faults: 0,
            charged: Cycles::ZERO,
        }
    }

    /// Translate one access; returns the cycles the translation costs.
    pub fn access(&mut self, addr: u64) -> Cycles {
        let page = addr >> self.page_shift;
        let mut cost = Cycles::ZERO;
        if self.present.contains(&page) {
            self.hits += 1;
        } else {
            self.misses += 1;
            cost += self.tlb_walk;
            if !self.touched.contains(&page) {
                // First touch: demand fault (fill the page table).
                self.faults += 1;
                cost += self.page_fault;
                self.touched.insert(page);
            }
            if self.fifo.len() == self.capacity {
                if let Some(old) = self.fifo.pop_front() {
                    self.present.remove(&old);
                }
            }
            self.fifo.push_back(page);
            self.present.insert(page);
        }
        self.charged += cost;
        cost
    }

    /// Hit rate over all accesses so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(entries: usize) -> PagingModel {
        let mut c = CostModel::x64_default();
        c.tlb_entries = entries;
        PagingModel::new(&c)
    }

    #[test]
    fn first_touch_faults_then_hits() {
        let mut p = model(16);
        let c1 = p.access(0x1000);
        assert_eq!(p.faults, 1);
        assert!(c1 >= p.page_fault);
        let c2 = p.access(0x1008); // same page
        assert_eq!(c2, Cycles::ZERO);
        assert_eq!(p.hits, 1);
    }

    #[test]
    fn capacity_eviction_causes_repeat_misses() {
        let mut p = model(2);
        // Touch 3 pages round-robin: every access after warm-up misses.
        for round in 0..4 {
            for pg in 0..3u64 {
                p.access(pg * 4096);
            }
            let _ = round;
        }
        // 3 cold misses+faults, then each revisit misses (working set >
        // capacity with FIFO).
        assert_eq!(p.faults, 3);
        assert!(p.misses > 3, "misses = {}", p.misses);
        assert_eq!(p.hits, 0);
    }

    #[test]
    fn large_pages_eliminate_misses_for_small_footprints() {
        // Nautilus's identity mapping with the largest page size: with 2 MiB
        // pages a 1 MiB footprint fits in one entry → no misses after the
        // first touch.
        let mut c = CostModel::x64_default();
        c.page_size = 2 * 1024 * 1024;
        let mut p = PagingModel::new(&c);
        for i in 0..10_000u64 {
            p.access(0x10_000 + i * 64 % (1 << 20));
        }
        assert_eq!(p.misses, 1);
        assert_eq!(p.faults, 1);
        assert!(p.hit_rate() > 0.999);
    }

    #[test]
    fn charged_accumulates() {
        let mut p = model(8);
        p.access(0);
        p.access(4096);
        assert_eq!(p.charged, (p.tlb_walk + p.page_fault) * 2);
    }
}
