//! # interweave-kernel
//!
//! Kernel models for the Interweave laboratory: a Nautilus-like kernel
//! (`nk`), an Asterinas-like safe-Rust framekernel (`aster`), and a
//! commodity Linux-like kernel (`linuxlike`), all expressed as
//! *cost-and-behaviour models* over the simulated machine from
//! [`interweave_core`].
//!
//! §III of the paper describes what makes Nautilus fast and predictable:
//! kernel-mode-only execution (no crossings), identity-mapped paging with no
//! faults, per-zone buddy allocation, deterministic interrupt paths, and
//! steerable interrupts. The Linux-like model charges, per primitive, the
//! costs the commodity layered stack imposes: syscall entry/exit with
//! mitigation flushes, signal-frame construction, fair-scheduler picks,
//! timer slack, and background OS noise. Every higher experiment crate
//! (heartbeat, fibers, OpenMP, blending) composes these primitives, so a
//! single calibration here propagates to all figures.
//!
//! Layout:
//! - [`buddy`]: a real buddy allocator with NUMA zones (§III: "allocations
//!   are done with buddy system allocators that are selected based on the
//!   target zone").
//! - [`sched`]: run-queue implementations — round-robin and EDF (§III:
//!   "hard real-time scheduling").
//! - [`threads`]: context-switch cost composition for threads, fibers, and
//!   compiler-timed fibers (the Fig. 4 decomposition).
//! - [`os`]: the [`os::OsModel`] trait with [`os::NkModel`],
//!   [`os::AsterModel`], and [`os::LinuxModel`] implementations, including
//!   timer jitter and OS-noise sampling, plus [`os::model_for`] mapping the
//!   `OsPoint` stack axis onto a model.
//! - [`work`]: the `Work`/`WorkStep` protocol that lets one workload body
//!   run on either kernel.
//! - [`executor`]: a working preemptive multi-CPU scheduler over the Work
//!   protocol (quantum preemption, yields, block/signal fork-join).
//! - [`steering`]: interrupt routing policies and the per-CPU noise budget
//!   they produce (§III's "fully steerable" claim, quantified).
//! - [`numa`]: thread-state placement — Nautilus's bound-thread/local-zone
//!   guarantee vs first-touch + migrations (§III's "most desirable zone").
//! - [`timeline`]: per-CPU clocks and busy/idle accounting for building
//!   multi-CPU simulations.
//! - [`watchdog`]: the watchdog's retry arithmetic as data
//!   ([`watchdog::WatchdogPolicy`]), shared by the executor's stalled-CPU
//!   re-kick loop and the serving plane's stuck-virtine reclaim model.
//! - [`paging`]: the TLB/paging model the commodity stack pays for address
//!   translation (and that Nautilus's identity mapping avoids, §III).
//! - [`microbench`]: the §III primitives table (thread management, event
//!   signaling) comparing the kernels along the OS axis.

#![warn(missing_docs)]

pub mod buddy;
pub mod executor;
pub mod microbench;
pub mod numa;
pub mod os;
pub mod paging;
pub mod sched;
pub mod steering;
pub mod threads;
pub mod timeline;
pub mod watchdog;
pub mod work;

pub use buddy::{AllocError, NumaAllocator};
pub use executor::Executor;
pub use os::{model_for, AsterModel, AsterParams, LinuxModel, LinuxParams, NkModel, OsModel};
pub use threads::{switch_cost, SwitchBreakdown, SwitchKind};
pub use timeline::CpuTimeline;
pub use watchdog::WatchdogPolicy;
pub use work::{Work, WorkStep};
