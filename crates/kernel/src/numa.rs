//! NUMA placement of essential thread state.
//!
//! §III: "For threads that are bound to specific CPUs, essential thread
//! (e.g., context, stack) and scheduler state is guaranteed to always be in
//! the most desirable zone." The commodity counterpoint: first-touch
//! placement puts a thread's TCB/stack on the socket where it *started*,
//! and fair-share load balancing then migrates threads away from their
//! state — every context switch and stack access afterwards crosses the
//! interconnect.
//!
//! The model simulates a population of threads over scheduler quanta:
//! under the Linux-like policy each quantum migrates a thread cross-socket
//! with some probability (state stays behind); the Nautilus policy binds
//! threads, so state is local by construction. Reported: the steady-state
//! remote fraction and the per-quantum cycle penalty.

use interweave_core::machine::MachineConfig;
use interweave_core::rng::SplitMix64;
use interweave_core::time::Cycles;

/// DRAM access latencies by locality.
#[derive(Debug, Clone, Copy)]
pub struct NumaCosts {
    /// Same-socket DRAM access.
    pub local: Cycles,
    /// Cross-socket DRAM access.
    pub remote: Cycles,
}

impl Default for NumaCosts {
    fn default() -> NumaCosts {
        NumaCosts {
            local: Cycles(90),
            remote: Cycles(210),
        }
    }
}

/// Thread-state placement policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// Nautilus: threads bound to CPUs, state allocated from the CPU's
    /// buddy zone — always local.
    NkBound,
    /// Commodity: first-touch placement + load-balancer migrations with
    /// this cross-socket probability per quantum.
    FirstTouch {
        /// Probability a thread migrates across sockets in one quantum.
        migrate_prob: f64,
    },
}

/// Outcome of one placement simulation.
#[derive(Debug, Clone)]
pub struct NumaReport {
    /// Fraction of (thread, quantum) samples whose state was remote.
    pub remote_fraction: f64,
    /// Mean state-access penalty per quantum per thread, cycles (the extra
    /// cost of touching TCB + stack working set over the all-local case).
    pub penalty_per_quantum: f64,
}

/// Simulate `threads` threads over `quanta` scheduler quanta on `mc`.
/// `state_touches` is how many thread-state cache-line fills a quantum's
/// switch + stack activity performs (cold lines after a migration).
pub fn simulate_placement(
    mc: &MachineConfig,
    policy: Placement,
    threads: usize,
    quanta: usize,
    state_touches: u64,
    costs: NumaCosts,
    seed: u64,
) -> NumaReport {
    assert!(mc.sockets >= 1);
    let mut rng = SplitMix64::new(seed);
    // Per thread: (socket where its state lives, socket where it runs).
    let mut home: Vec<usize> = (0..threads).map(|t| t % mc.sockets).collect();
    let mut runs_on: Vec<usize> = home.clone();

    let mut remote_samples = 0u64;
    let mut penalty = 0u64;
    for _q in 0..quanta {
        for t in 0..threads {
            if let Placement::FirstTouch { migrate_prob } = policy {
                if mc.sockets > 1 && rng.chance(migrate_prob) {
                    // The balancer moves the thread; its state stays put.
                    runs_on[t] =
                        (runs_on[t] + 1 + rng.below(mc.sockets as u64 - 1) as usize) % mc.sockets;
                }
            }
            let remote = runs_on[t] != home[t];
            if remote {
                remote_samples += 1;
                penalty += state_touches * (costs.remote - costs.local).get();
            }
            let _ = &mut home[t]; // state never migrates in either policy
        }
    }
    let samples = (threads * quanta) as f64;
    NumaReport {
        remote_fraction: remote_samples as f64 / samples,
        penalty_per_quantum: penalty as f64 / samples,
    }
}

/// The §III comparison on a machine: NK-bound vs first-touch-with-balancer.
pub fn placement_comparison(mc: &MachineConfig, seed: u64) -> (NumaReport, NumaReport) {
    let costs = NumaCosts::default();
    let nk = simulate_placement(mc, Placement::NkBound, 64, 200, 24, costs, seed);
    let lx = simulate_placement(
        mc,
        Placement::FirstTouch { migrate_prob: 0.02 },
        64,
        200,
        24,
        costs,
        seed,
    );
    (nk, lx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nk_bound_threads_never_touch_remote_state() {
        let mc = MachineConfig::xeon_server_2s();
        let (nk, _) = placement_comparison(&mc, 7);
        assert_eq!(nk.remote_fraction, 0.0);
        assert_eq!(nk.penalty_per_quantum, 0.0);
    }

    #[test]
    fn first_touch_drifts_remote_under_migrations() {
        let mc = MachineConfig::xeon_server_2s();
        let (_, lx) = placement_comparison(&mc, 7);
        // Migrations accumulate: with p=0.02/quantum over 200 quanta the
        // population approaches the 1/2 steady state for 2 sockets.
        assert!(
            lx.remote_fraction > 0.25,
            "remote fraction {}",
            lx.remote_fraction
        );
        assert!(lx.penalty_per_quantum > 0.0);
    }

    #[test]
    fn more_sockets_mean_more_remoteness() {
        let two = MachineConfig::xeon_server_2s();
        let eight = MachineConfig::big_server_8s();
        let costs = NumaCosts::default();
        let p = Placement::FirstTouch { migrate_prob: 0.02 };
        let r2 = simulate_placement(&two, p, 64, 400, 24, costs, 3);
        let r8 = simulate_placement(&eight, p, 64, 400, 24, costs, 3);
        // Steady state: 1 − 1/sockets.
        assert!(r8.remote_fraction > r2.remote_fraction);
    }

    #[test]
    fn single_socket_machines_cannot_be_remote() {
        let mc = MachineConfig::phi_knl(); // one socket
        let r = simulate_placement(
            &mc,
            Placement::FirstTouch { migrate_prob: 0.5 },
            32,
            100,
            24,
            NumaCosts::default(),
            1,
        );
        assert_eq!(r.remote_fraction, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mc = MachineConfig::xeon_server_2s();
        let (a, b) = (placement_comparison(&mc, 9), placement_comparison(&mc, 9));
        assert_eq!(a.1.remote_fraction, b.1.remote_fraction);
    }
}
