//! Property tests for kernel substrates: the buddy allocator's
//! disjointness/coalescing invariants and EDF's no-missed-deadlines
//! guarantee for admitted task sets.

use interweave_core::time::Cycles;
use interweave_kernel::buddy::{BuddyZone, NumaAllocator};
use interweave_kernel::sched::{edf_simulate, Edf, EdfTask};
use proptest::prelude::*;

/// A random interleaving of allocs (by size) and frees (by index into live
/// set).
#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    FreeNth(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..2048).prop_map(Op::Alloc),
            (0usize..64).prop_map(Op::FreeNth),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Live blocks never overlap, frees always succeed on live bases, and
    /// freeing everything restores one maximal block.
    #[test]
    fn buddy_disjoint_and_fully_coalescing(ops in ops()) {
        let mut z = BuddyZone::new(0x1_0000, 6, 12); // 256 KiB zone
        let mut live: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(sz) => {
                    if let Ok(a) = z.alloc(sz) {
                        live.push(a);
                    }
                }
                Op::FreeNth(i) => {
                    if !live.is_empty() {
                        let a = live.swap_remove(i % live.len());
                        prop_assert!(z.free(a).is_ok());
                    }
                }
            }
            // Disjointness of all live blocks.
            let mut spans: Vec<(u64, u64)> = live
                .iter()
                .map(|&a| z.containing(a).expect("live block"))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].0 + w[0].1 <= w[1].0, "overlap {w:?}");
            }
        }
        for a in live {
            prop_assert!(z.free(a).is_ok());
        }
        prop_assert!(z.fully_coalesced());
    }

    /// Double frees are always rejected, whatever preceded them.
    #[test]
    fn buddy_rejects_double_free(sizes in prop::collection::vec(1u64..512, 1..32)) {
        let mut z = BuddyZone::new(0, 6, 12);
        let addrs: Vec<u64> = sizes.iter().filter_map(|&s| z.alloc(s).ok()).collect();
        for &a in &addrs {
            prop_assert!(z.free(a).is_ok());
            prop_assert!(z.free(a).is_err());
        }
    }

    /// NUMA allocation falls back but never fabricates: every returned
    /// address frees cleanly in some zone.
    #[test]
    fn numa_alloc_free_roundtrip(reqs in prop::collection::vec((0usize..4, 1u64..512), 1..64)) {
        let mut n = NumaAllocator::new(4, 6, 10);
        let mut live = Vec::new();
        for (zone, sz) in reqs {
            if let Ok((addr, _)) = n.alloc(zone, sz) {
                live.push(addr);
            }
        }
        for a in live {
            prop_assert!(n.free(a).is_ok());
        }
        for z in 0..4 {
            prop_assert!(n.zone(z).fully_coalesced());
        }
    }

    /// Any task set the admission controller accepts meets every deadline
    /// under preemptive EDF (optimality on one CPU).
    #[test]
    fn edf_admitted_sets_never_miss(raw in prop::collection::vec((1u64..50, 50u64..500), 1..8)) {
        // Build an admissible subset in order.
        let mut q = Edf::new();
        let mut admitted = Vec::new();
        for (i, (slice, period)) in raw.into_iter().enumerate() {
            let t = EdfTask {
                id: i as u64,
                deadline: Cycles(period),
                period: Cycles(period),
                slice: Cycles(slice.min(period)),
            };
            if q.admit(t) {
                admitted.push(t);
            }
        }
        prop_assume!(!admitted.is_empty());
        let misses = edf_simulate(&admitted, Cycles(20_000));
        prop_assert_eq!(misses, 0, "admitted set missed deadlines: {:?}", admitted);
    }
}
