//! Property tests for the telemetry plane on the executor: the
//! cycle-attribution ledger balances exactly, per-CPU span lanes never
//! overlap, and an attached sink never perturbs the simulation.

use interweave_core::machine::MachineConfig;
use interweave_core::telemetry::{find_overlap, well_bracketed, Layer, Level, Sink};
use interweave_core::time::Cycles;
use interweave_core::{FaultConfig, FaultPlan};
use interweave_kernel::executor::Executor;
use interweave_kernel::work::{LoopWork, ScriptedWork, WorkStep};
use proptest::prelude::*;

/// Build an executor with the given workload and fault pressure, run it to
/// quiescence, and return it (the sink stays attached to its clones).
fn run_workload(
    tasks: &[(usize, u64, u64)],
    yields: &[(usize, u64)],
    quantum: u64,
    drop_ipi: f64,
    seed: u64,
    sink: Sink,
) -> Executor {
    let mc = MachineConfig::test(4);
    let mut e = Executor::new(mc, Cycles(quantum));
    e.set_telemetry(sink);
    if drop_ipi > 0.0 {
        e.set_fault_plan(FaultPlan::new(FaultConfig {
            drop_ipi,
            delay_ipi: drop_ipi / 2.0,
            ..FaultConfig::quiet(seed)
        }));
        // The watchdog is what makes lost kicks recoverable at all.
        e.enable_watchdog(Cycles(quantum / 2 + 100));
    }
    for &(cpu, iters, cost) in tasks {
        e.spawn(cpu, Box::new(LoopWork::new(iters, Cycles(cost))));
    }
    for &(cpu, cost) in yields {
        let steps: Vec<WorkStep> = (0..3)
            .flat_map(|_| [WorkStep::Compute(Cycles(cost)), WorkStep::Yield])
            .chain([WorkStep::Done])
            .collect();
        e.spawn(cpu, Box::new(ScriptedWork::new(steps)));
    }
    assert!(e.run(), "workload must quiesce");
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The attribution invariant holds on arbitrary workloads under fault
    /// pressure: every simulated cycle lands in exactly one
    /// `(layer, mechanism)` category, so the ledger sums to
    /// makespan × CPUs — no gaps, no double counting.
    #[test]
    fn attributed_cycles_sum_to_machine_clock(
        tasks in prop::collection::vec((0usize..4, 1u64..12, 50u64..3_000), 1..10),
        yields in prop::collection::vec((0usize..4, 200u64..2_000), 0..3),
        quantum in 1_000u64..20_000,
        drop_sel in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let drop_ipi = [0.0, 0.2, 0.4][drop_sel];
        let sink = Sink::on(Level::Full);
        let e = run_workload(&tasks, &yields, quantum, drop_ipi, seed, sink.clone());
        prop_assert!(
            sink.verify_attribution(e.attribution_clock()).is_ok(),
            "ledger {} vs clock {}",
            sink.attributed(),
            e.attribution_clock()
        );
        // The ledger decomposes the clock; the registry mirrors the stats.
        prop_assert_eq!(sink.counter("kernel.sched.preemptions"), e.stats.preemptions);
        prop_assert_eq!(sink.counter("kernel.sched.yields"), e.stats.yields);
    }

    /// Spans on one `(layer, track)` lane of the kernel scheduler never
    /// overlap: one CPU runs one thing at a time, and stall intervals end
    /// exactly where the rescued dispatch begins.
    #[test]
    fn per_cpu_span_lanes_never_overlap(
        tasks in prop::collection::vec((0usize..4, 1u64..12, 50u64..3_000), 1..10),
        quantum in 1_000u64..20_000,
        drop_sel in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let drop_ipi = [0.0, 0.2, 0.4][drop_sel];
        let sink = Sink::on(Level::Full);
        run_workload(&tasks, &[], quantum, drop_ipi, seed, sink.clone());
        let spans = sink.spans();
        prop_assert!(!spans.is_empty(), "a full-level sink must collect spans");
        prop_assert!(spans.iter().all(|s| s.layer == Layer::Kernel));
        if let Some((a, b)) = find_overlap(&spans) {
            prop_assert!(false, "overlap on cpu {}: {:?} vs {:?}", a.track, a, b);
        }
        // Strict non-overlap implies the weaker nesting invariant too.
        prop_assert!(well_bracketed(&spans).is_none());
    }

    /// An attached sink is an observer: the simulation with telemetry on is
    /// bit-identical to the same workload with telemetry off.
    #[test]
    fn sink_never_perturbs_the_simulation(
        tasks in prop::collection::vec((0usize..4, 1u64..12, 50u64..3_000), 1..10),
        quantum in 1_000u64..20_000,
        drop_sel in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let drop_ipi = [0.0, 0.2, 0.4][drop_sel];
        let on = run_workload(&tasks, &[], quantum, drop_ipi, seed, Sink::on(Level::Full));
        let off = run_workload(&tasks, &[], quantum, drop_ipi, seed, Sink::off());
        prop_assert_eq!(on.stats.makespan, off.stats.makespan);
        prop_assert_eq!(on.stats.preemptions, off.stats.preemptions);
        prop_assert_eq!(on.stats.recovered_stalls, off.stats.recovered_stalls);
        prop_assert_eq!(on.stats.switch_cycles, off.stats.switch_cycles);
        prop_assert_eq!(&on.stats.task_executed, &off.stats.task_executed);
    }
}
