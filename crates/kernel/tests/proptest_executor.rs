//! Property tests for the preemptive executor: work conservation, makespan
//! bounds, and trace well-formedness for arbitrary task sets.

use interweave_core::machine::MachineConfig;
use interweave_core::time::Cycles;
use interweave_kernel::executor::Executor;
use interweave_kernel::work::LoopWork;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every spawned task completes, executes exactly its submitted work,
    /// and the makespan is bounded below by the busiest CPU's work and
    /// above by total work plus switch costs.
    #[test]
    fn work_conservation_and_makespan_bounds(
        tasks in prop::collection::vec((0usize..4, 1u64..20, 10u64..2_000), 1..12),
        quantum in 500u64..50_000,
    ) {
        let mc = MachineConfig::test(4);
        let mut e = Executor::new(mc, Cycles(quantum));
        let mut per_cpu = [0u64; 4];
        let mut per_task = Vec::new();
        for &(cpu, iters, cost) in &tasks {
            e.spawn(cpu, Box::new(LoopWork::new(iters, Cycles(cost))));
            per_cpu[cpu] += iters * cost;
            per_task.push(iters * cost);
        }
        e.enable_tracing();
        prop_assert!(e.run(), "all tasks must complete");
        for (i, &expect) in per_task.iter().enumerate() {
            prop_assert_eq!(e.stats.task_executed[i].get(), expect, "task {}", i);
        }
        let busiest = *per_cpu.iter().max().unwrap();
        prop_assert!(e.stats.makespan.get() >= busiest);
        let total: u64 = per_task.iter().sum();
        prop_assert!(
            e.stats.makespan.get() <= total + e.stats.switch_cycles.get() + 1,
            "makespan {} vs total {} + switches {}",
            e.stats.makespan,
            total,
            e.stats.switch_cycles
        );
        // Trace intervals never overlap per CPU.
        prop_assert!(interweave_core::telemetry::find_overlap(&e.trace).is_none());
    }

    /// Preemption count is bounded by total work / quantum (+1 per task).
    #[test]
    fn preemption_count_bounded(
        iters in 1u64..40,
        cost in 100u64..2_000,
        quantum in 1_000u64..20_000,
    ) {
        let mc = MachineConfig::test(1);
        let mut e = Executor::new(mc, Cycles(quantum));
        e.spawn(0, Box::new(LoopWork::new(iters, Cycles(cost))));
        e.spawn(0, Box::new(LoopWork::new(iters, Cycles(cost))));
        prop_assert!(e.run());
        let total = 2 * iters * cost;
        prop_assert!(
            e.stats.preemptions <= total / quantum + 2,
            "{} preemptions for {} work at quantum {}",
            e.stats.preemptions,
            total,
            quantum
        );
    }
}
