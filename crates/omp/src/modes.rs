//! Per-design cost profiles for the OpenMP execution modes.
//!
//! Every mode runs the same workload semantics; these profiles price the
//! runtime events — parallel-region fork, barrier, per-chunk scheduling —
//! and say whether the design suffers OS noise. Costs compose from the
//! machine's `CostModel` through the kernel crate's OS models, so a
//! hardware change propagates to Fig. 6 automatically.

use interweave_core::machine::MachineConfig;
use interweave_core::rng::SplitMix64;
use interweave_core::time::Cycles;
use interweave_kernel::os::{AsterModel, LinuxModel, NkModel, OsModel};

/// The execution designs of §V-A, plus the framekernel mid-point of the
/// OS axis (unmodified libomp on an Aster-like kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OmpMode {
    /// Commodity baseline: user-level libomp on Linux.
    LinuxUser,
    /// Unmodified libomp on the Aster-like framekernel: the runtime still
    /// calls thread/synchronization services, but they are bounds-checked
    /// in-kernel calls rather than syscalls, and background noise is far
    /// lighter.
    AsterUser,
    /// Runtime in kernel.
    Rtk,
    /// Process in kernel.
    Pik,
    /// Custom compilation for kernel (task-based).
    Cck,
}

impl OmpMode {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OmpMode::LinuxUser => "Linux",
            OmpMode::AsterUser => "Aster",
            OmpMode::Rtk => "RTK",
            OmpMode::Pik => "PIK",
            OmpMode::Cck => "CCK",
        }
    }

    /// All modes, baseline first, then down the OS axis into the kernel
    /// designs.
    pub fn all() -> [OmpMode; 5] {
        [
            OmpMode::LinuxUser,
            OmpMode::AsterUser,
            OmpMode::Rtk,
            OmpMode::Pik,
            OmpMode::Cck,
        ]
    }

    /// The kernel-interwoven designs Fig. 6 plots against the Linux
    /// baseline, in the figure's column order.
    pub const KERNEL: [OmpMode; 3] = [OmpMode::Rtk, OmpMode::Pik, OmpMode::Cck];
}

/// Priced runtime events for one mode on one machine.
pub struct ModeCosts {
    mode: OmpMode,
    linux: LinuxModel,
    aster: AsterModel,
    nk: NkModel,
}

impl ModeCosts {
    /// Cost profile for `mode` on `mc`.
    pub fn new(mode: OmpMode, mc: &MachineConfig) -> ModeCosts {
        ModeCosts {
            mode,
            linux: LinuxModel::new(mc.clone()),
            aster: AsterModel::new(mc.clone()),
            nk: NkModel::new(mc.clone()),
        }
    }

    fn log2p(p: usize) -> u64 {
        (usize::BITS - p.max(1).leading_zeros()) as u64
    }

    /// Master-side cost to open a parallel region with `p` workers.
    pub fn fork_master(&self, p: usize) -> Cycles {
        let p64 = p as u64;
        match self.mode {
            // Tree release of spinning workers, some of which have dozed
            // off into futex waits between regions.
            OmpMode::LinuxUser => {
                Cycles(600) + Cycles(25) * p64 + {
                    let (wake, _) = self.linux.wake_remote();
                    // A fraction of workers (grows with p) passed their spin
                    // timeout and must be woken through the kernel.
                    Cycles(wake.get() * (p64 / 16))
                }
            }
            // Same tree release, but the dozed-off fraction is woken
            // through an in-kernel service call, not a futex syscall.
            OmpMode::AsterUser => {
                Cycles(450) + Cycles(18) * p64 + {
                    let (wake, _) = self.aster.wake_remote();
                    Cycles(wake.get() * (p64 / 16))
                }
            }
            OmpMode::Rtk => Cycles(300) + Cycles(12) * p64,
            OmpMode::Pik => Cycles(380) + Cycles(13) * p64,
            // Serial enqueue of the region's task batch into the kernel
            // task framework (4 tasks per worker).
            OmpMode::Cck => Cycles(200) + Cycles(120) * (4 * p64),
        }
    }

    /// Latency until a worker starts executing region work after the fork.
    pub fn fork_worker_latency(&self, p: usize) -> Cycles {
        let l = Self::log2p(p);
        match self.mode {
            OmpMode::LinuxUser => Cycles(300) + Cycles(60) * l,
            OmpMode::AsterUser => Cycles(220) + Cycles(50) * l,
            OmpMode::Rtk => Cycles(150) + Cycles(40) * l,
            OmpMode::Pik => Cycles(170) + Cycles(42) * l,
            // Tasks start when dequeued; contention on the central queue
            // grows with p.
            OmpMode::Cck => Cycles(80) + Cycles(80) * (1 + p as u64 / 32),
        }
    }

    /// Per-participant barrier cost once everyone has arrived.
    pub fn barrier(&self, p: usize) -> Cycles {
        let l = Self::log2p(p);
        match self.mode {
            // Spin tree + a futex component that grows with the blocking
            // fraction at scale.
            OmpMode::LinuxUser => {
                Cycles(150) * l + Cycles(self.linux.barrier_block().get() * (p as u64 / 24))
            }
            // The blocking fraction blocks through the checked waitqueue —
            // no crossings, so the superlogarithmic component is milder.
            OmpMode::AsterUser => {
                Cycles(125) * l + Cycles(self.aster.barrier_block().get() * (p as u64 / 24))
            }
            OmpMode::Rtk => Cycles(100) * l,
            OmpMode::Pik => Cycles(110) * l,
            // Completion counter, no barrier proper.
            OmpMode::Cck => Cycles(250),
        }
    }

    /// Per-chunk scheduling cost (dynamic grabs; static pays once).
    pub fn chunk_grab(&self, p: usize) -> Cycles {
        match self.mode {
            OmpMode::LinuxUser | OmpMode::AsterUser | OmpMode::Rtk | OmpMode::Pik => Cycles(60),
            OmpMode::Cck => Cycles(80) * (1 + p as u64 / 32),
        }
    }

    /// Sample stolen cycles from OS noise within a compute window of
    /// `window` cycles. Zero for kernel-interwoven designs (§III:
    /// interrupts steered away; no daemons).
    pub fn noise_in_window(&self, window: Cycles, rng: &mut SplitMix64) -> Cycles {
        let os: &dyn OsModel = match self.mode {
            OmpMode::LinuxUser => &self.linux,
            // The framekernel has no per-CPU tick, only rare maintenance
            // work — light but nonzero.
            OmpMode::AsterUser => &self.aster,
            _ => return Cycles::ZERO,
        };
        let mut stolen = Cycles::ZERO;
        let mut t = Cycles::ZERO;
        while let Some(n) = os.sample_noise(rng) {
            t += n.after;
            if t >= window {
                break;
            }
            stolen += n.duration;
        }
        stolen
    }

    /// Whether this design smooths imbalance through tasking (CCK maps
    /// regions to 4 tasks per worker, so static imbalance averages out).
    pub fn task_smoothing(&self) -> u64 {
        match self.mode {
            OmpMode::Cck => 4,
            _ => 1,
        }
    }

    /// The underlying NK model (for reuse by reports).
    pub fn nk(&self) -> &NkModel {
        &self.nk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(mode: OmpMode) -> ModeCosts {
        ModeCosts::new(mode, &MachineConfig::phi_knl())
    }

    #[test]
    fn kernel_modes_fork_cheaper_than_linux() {
        for p in [2, 8, 64] {
            let lx = costs(OmpMode::LinuxUser).fork_master(p);
            let rtk = costs(OmpMode::Rtk).fork_master(p);
            assert!(rtk < lx, "p={p}: rtk {rtk} vs linux {lx}");
        }
    }

    #[test]
    fn linux_barrier_grows_superlogarithmically_at_scale() {
        let small = costs(OmpMode::LinuxUser).barrier(8);
        let large = costs(OmpMode::LinuxUser).barrier(64);
        let rtk_small = costs(OmpMode::Rtk).barrier(8);
        let rtk_large = costs(OmpMode::Rtk).barrier(64);
        let lx_growth = large.as_f64() / small.as_f64();
        let rtk_growth = rtk_large.as_f64() / rtk_small.as_f64();
        assert!(lx_growth > rtk_growth, "{lx_growth} vs {rtk_growth}");
    }

    #[test]
    fn only_linux_suffers_noise() {
        let mut rng = SplitMix64::new(7);
        let window = Cycles(50_000_000);
        assert!(costs(OmpMode::LinuxUser).noise_in_window(window, &mut rng) > Cycles::ZERO);
        for m in [OmpMode::Rtk, OmpMode::Pik, OmpMode::Cck] {
            assert_eq!(costs(m).noise_in_window(window, &mut rng), Cycles::ZERO);
        }
    }

    #[test]
    fn aster_sits_between_linux_and_the_kernel_modes() {
        for p in [2, 8, 64] {
            let lx = costs(OmpMode::LinuxUser).fork_master(p);
            let aster = costs(OmpMode::AsterUser).fork_master(p);
            let rtk = costs(OmpMode::Rtk).fork_master(p);
            assert!(rtk < aster && aster < lx, "p={p}: {rtk} {aster} {lx}");
            let lx_b = costs(OmpMode::LinuxUser).barrier(p);
            let aster_b = costs(OmpMode::AsterUser).barrier(p);
            let rtk_b = costs(OmpMode::Rtk).barrier(p);
            assert!(
                rtk_b < aster_b && aster_b <= lx_b,
                "p={p}: {rtk_b} {aster_b} {lx_b}"
            );
        }
    }

    #[test]
    fn aster_noise_is_much_lighter_than_linux() {
        let window = Cycles(500_000_000);
        let mut rng_lx = SplitMix64::new(11);
        let mut rng_as = SplitMix64::new(11);
        let lx = costs(OmpMode::LinuxUser).noise_in_window(window, &mut rng_lx);
        let aster = costs(OmpMode::AsterUser).noise_in_window(window, &mut rng_as);
        assert!(aster < lx / 10, "aster {aster} vs linux {lx}");
    }

    #[test]
    fn cck_fork_scales_worst_but_barrier_is_flat() {
        let cck = costs(OmpMode::Cck);
        let rtk = costs(OmpMode::Rtk);
        assert!(cck.fork_master(64) > rtk.fork_master(64) * 5);
        assert!(cck.barrier(64) < rtk.barrier(64));
    }

    #[test]
    fn pik_tracks_rtk_closely() {
        for p in [4, 16, 64] {
            let pik = costs(OmpMode::Pik).fork_master(p).as_f64();
            let rtk = costs(OmpMode::Rtk).fork_master(p).as_f64();
            assert!((pik / rtk) < 1.4, "p={p}: pik/rtk {}", pik / rtk);
        }
    }
}
