//! The Fig. 6 scaling simulation.
//!
//! Per time step, per region: the master forks, each worker computes its
//! share (plus static imbalance, plus — on Linux — noise stolen inside the
//! compute window), everyone meets at the barrier, the master runs the
//! serial section. The makespan accumulates across regions and steps; the
//! figure's y-axis is performance relative to the Linux baseline at the
//! same CPU count.
//!
//! The dominant scale effect is *noise amplification*: one late worker
//! delays the whole barrier, and the probability that someone is late grows
//! with the worker count — which is why the kernel designs' advantage grows
//! with scale (§V-A: 22 % geometric mean on KNL; ~20 % on the 192-core
//! 8-socket machine).

use crate::modes::{ModeCosts, OmpMode};
use crate::nas::WorkloadSpec;
use interweave_core::machine::MachineConfig;
use interweave_core::rng::SplitMix64;
use interweave_core::stats::geomean;
use interweave_core::time::Cycles;

/// Result of one (workload, mode, CPU count) run.
#[derive(Debug, Clone)]
pub struct OmpResult {
    /// Execution design.
    pub mode: OmpMode,
    /// Worker count.
    pub cpus: usize,
    /// Total makespan in cycles.
    pub total: Cycles,
    /// Cycles lost to runtime machinery (forks + barriers + grabs).
    pub runtime_overhead: Cycles,
    /// Cycles stolen by OS noise (max-per-region aggregate on the critical
    /// path).
    pub noise_on_critical_path: Cycles,
}

/// Simulate `spec` under `mode` with `p` workers.
pub fn run_omp(
    spec: &WorkloadSpec,
    mode: OmpMode,
    p: usize,
    mc: &MachineConfig,
    seed: u64,
) -> OmpResult {
    assert!(p >= 1 && p <= mc.cores);
    let costs = ModeCosts::new(mode, mc);
    let mut rng = SplitMix64::new(seed ^ (p as u64) << 8 ^ spec.iters as u64);

    let mut total = Cycles::ZERO;
    let mut overhead = Cycles::ZERO;
    let mut noise_cp = Cycles::ZERO;

    let share = spec.work_per_region / p as u64;
    let smoothing = costs.task_smoothing();

    for _step in 0..spec.iters {
        for _region in 0..spec.regions_per_iter {
            // Fork.
            let fork = costs.fork_master(p);
            total += fork;
            overhead += fork;
            let start_lat = costs.fork_worker_latency(p);

            // Workers compute; the region ends when the slowest arrives.
            let mut makespan = Cycles::ZERO;
            let mut base_max = Cycles::ZERO;
            for _w in 0..p {
                // Static imbalance, smoothed by tasking designs.
                let imb = 1.0 + rng.f64() * spec.imbalance / smoothing as f64;
                let compute = Cycles((share.as_f64() * imb) as u64);
                // Per-chunk scheduling costs.
                let grabs = spec.chunks_per_worker as u64 * smoothing;
                let grab_cost = costs.chunk_grab(p) * grabs;
                let noise = costs.noise_in_window(compute, &mut rng);
                let arrive = start_lat + compute + grab_cost + noise;
                if arrive > makespan {
                    makespan = arrive;
                }
                let base = start_lat + compute + grab_cost;
                if base > base_max {
                    base_max = base;
                }
                overhead += grab_cost;
            }
            noise_cp += makespan - base_max;

            // Barrier.
            let bar = costs.barrier(p);
            total += makespan + bar;
            overhead += bar + (makespan - base_max);
        }
        total += spec.serial_per_iter;
    }

    OmpResult {
        mode,
        cpus: p,
        total,
        runtime_overhead: overhead,
        noise_on_critical_path: noise_cp,
    }
}

/// One Fig. 6 data point: mode performance relative to Linux at the same
/// scale (higher is better).
#[derive(Debug, Clone)]
pub struct RelPerf {
    /// Benchmark name.
    pub bench: &'static str,
    /// Worker count.
    pub cpus: usize,
    /// Execution design.
    pub mode: OmpMode,
    /// Linux time / mode time.
    pub relative: f64,
}

/// Produce the Fig. 6 series for one workload across CPU counts: each mode
/// in `modes` relative to the Linux baseline at the same scale. The figure
/// uses [`OmpMode::KERNEL`]; ablations can pass a subset.
pub fn fig6_series(
    spec: &WorkloadSpec,
    mc: &MachineConfig,
    cpu_counts: &[usize],
    modes: &[OmpMode],
    seed: u64,
) -> Vec<RelPerf> {
    let mut out = Vec::new();
    for &p in cpu_counts {
        let linux = run_omp(spec, OmpMode::LinuxUser, p, mc, seed);
        for &mode in modes {
            let r = run_omp(spec, mode, p, mc, seed);
            out.push(RelPerf {
                bench: spec.name,
                cpus: p,
                mode,
                relative: linux.total.as_f64() / r.total.as_f64(),
            });
        }
    }
    out
}

/// Geometric-mean relative performance of one mode over a set of points.
pub fn geomean_rel(points: &[RelPerf], mode: OmpMode) -> f64 {
    let v: Vec<f64> = points
        .iter()
        .filter(|r| r.mode == mode)
        .map(|r| r.relative)
        .collect();
    geomean(&v)
}

/// The standard KNL scale sweep of Fig. 6.
pub fn knl_cpu_counts() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32, 64]
}

/// Noise-sensitivity ablation: RTK's advantage at a fixed scale as a
/// function of how noisy the Linux baseline is. `noise_scale` multiplies
/// the default daemon-noise frequency (1.0 = default; 0.0 = a noiseless,
/// tickless Linux). Isolates how much of Fig. 6 is noise amplification
/// versus primitive costs.
pub fn noise_sensitivity(
    spec: &WorkloadSpec,
    mc: &MachineConfig,
    p: usize,
    noise_scales: &[f64],
    seed: u64,
) -> Vec<(f64, f64)> {
    use crate::modes::ModeCosts;
    let rtk = run_omp(spec, OmpMode::Rtk, p, mc, seed).total;
    noise_scales
        .iter()
        .map(|&scale| {
            // Rebuild the Linux run with scaled noise by tweaking the
            // simulation inline (same structure as run_omp, Linux only).
            let costs = ModeCosts::new(OmpMode::LinuxUser, mc);
            let mut lx = interweave_kernel::os::LinuxModel::new(mc.clone());
            if scale <= 0.0 {
                lx.p.noise_interval_us = f64::INFINITY;
                lx.p.tick_work = Cycles(0);
            } else {
                lx.p.noise_interval_us /= scale;
            }
            let mut rng = SplitMix64::new(seed ^ (p as u64) << 8 ^ spec.iters as u64);
            let share = spec.work_per_region / p as u64;
            let mut total = Cycles::ZERO;
            for _step in 0..spec.iters {
                for _region in 0..spec.regions_per_iter {
                    total += costs.fork_master(p);
                    let start_lat = costs.fork_worker_latency(p);
                    let mut makespan = Cycles::ZERO;
                    for _w in 0..p {
                        let imb = 1.0 + rng.f64() * spec.imbalance;
                        let compute = Cycles((share.as_f64() * imb) as u64);
                        let grab = costs.chunk_grab(p) * spec.chunks_per_worker as u64;
                        // Noise via the scaled Linux model.
                        let mut stolen = Cycles::ZERO;
                        let mut t = Cycles::ZERO;
                        while let Some(n) =
                            interweave_kernel::os::OsModel::sample_noise(&lx, &mut rng)
                        {
                            t += n.after;
                            if t >= compute {
                                break;
                            }
                            stolen += n.duration;
                        }
                        let arrive = start_lat + compute + grab + stolen;
                        makespan = makespan.max(arrive);
                    }
                    total += makespan + costs.barrier(p);
                }
                total += spec.serial_per_iter;
            }
            (scale, total.as_f64() / rtk.as_f64())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nas::{bt, fig6_specs, sp};

    fn knl() -> MachineConfig {
        MachineConfig::phi_knl()
    }

    fn all_points() -> Vec<RelPerf> {
        let mut pts = Vec::new();
        for spec in fig6_specs() {
            pts.extend(fig6_series(
                &spec,
                &knl(),
                &knl_cpu_counts(),
                &OmpMode::KERNEL,
                42,
            ));
        }
        pts
    }

    #[test]
    fn rtk_geomean_gain_matches_the_paper_band() {
        // §V-A: "The average performance gain of RTK over Linux OpenMP on
        // Phi KNL across all scales and benchmarks is 22% (geometric mean)."
        let g = geomean_rel(&all_points(), OmpMode::Rtk);
        assert!(
            (1.10..=1.40).contains(&g),
            "RTK geomean {g:.3} outside the expected band"
        );
    }

    #[test]
    fn pik_performs_similarly_to_rtk() {
        let pts = all_points();
        let rtk = geomean_rel(&pts, OmpMode::Rtk);
        let pik = geomean_rel(&pts, OmpMode::Pik);
        assert!(
            (rtk - pik).abs() / rtk < 0.08,
            "rtk {rtk:.3} vs pik {pik:.3}"
        );
        assert!(pik > 1.05);
    }

    #[test]
    fn gains_grow_with_scale() {
        let spec = bt();
        let pts = fig6_series(&spec, &knl(), &knl_cpu_counts(), &OmpMode::KERNEL, 42);
        let rel = |p: usize| {
            pts.iter()
                .find(|r| r.cpus == p && r.mode == OmpMode::Rtk)
                .unwrap()
                .relative
        };
        assert!(rel(64) > rel(4), "64c {} vs 4c {}", rel(64), rel(4));
        assert!(rel(64) > 1.2, "64c gain {}", rel(64));
        // At 1 CPU there is little for interweaving to win.
        assert!(rel(1) < 1.1);
    }

    #[test]
    fn cck_is_not_easily_summarized() {
        // §V-A's wording: CCK helps at small scale (cheap tasking) and
        // hurts at large scale (centralized queue) — i.e. it crosses RTK.
        let spec = sp();
        let pts = fig6_series(&spec, &knl(), &knl_cpu_counts(), &OmpMode::KERNEL, 42);
        let get = |p: usize, m: OmpMode| {
            pts.iter()
                .find(|r| r.cpus == p && r.mode == m)
                .unwrap()
                .relative
        };
        let small_gap = get(2, OmpMode::Cck) - get(2, OmpMode::Rtk);
        let large_gap = get(64, OmpMode::Cck) - get(64, OmpMode::Rtk);
        assert!(
            large_gap < small_gap,
            "CCK should fall behind RTK at scale: {small_gap:.3} → {large_gap:.3}"
        );
    }

    #[test]
    fn big_server_repetition_shows_similar_gains() {
        // §V-A: "A repetition of the study on an 8 socket, 192 core machine
        // found similar results (~20% for RTK and PIK)."
        let mc = MachineConfig::big_server_8s();
        let counts = [1, 4, 16, 48, 96, 192];
        let mut pts = Vec::new();
        for spec in fig6_specs() {
            let spec = spec.scaled(8);
            pts.extend(fig6_series(&spec, &mc, &counts, &OmpMode::KERNEL, 7));
        }
        let rtk = geomean_rel(&pts, OmpMode::Rtk);
        assert!(
            (1.08..=1.45).contains(&rtk),
            "big-server RTK geomean {rtk:.3}"
        );
    }

    #[test]
    fn rtk_advantage_tracks_baseline_noise() {
        // The ablation: quieting Linux shrinks RTK's win; louder noise
        // widens it — noise amplification is the mechanism, as §V-A
        // implies.
        let spec = bt();
        let pts = noise_sensitivity(&spec, &knl(), 32, &[0.0, 1.0, 4.0], 42);
        let rel = |i: usize| pts[i].1;
        assert!(
            rel(0) < rel(1),
            "noiseless {} vs default {}",
            rel(0),
            rel(1)
        );
        assert!(rel(1) < rel(2), "default {} vs 4x noise {}", rel(1), rel(2));
        // Even a noiseless Linux still loses on primitive costs alone.
        assert!(rel(0) > 1.0, "primitive-cost-only advantage {}", rel(0));
    }

    #[test]
    fn noise_is_the_dominant_linux_penalty_at_scale() {
        let spec = bt();
        let lx = run_omp(&spec, OmpMode::LinuxUser, 64, &knl(), 42);
        assert!(
            lx.noise_on_critical_path.get() > lx.total.get() / 20,
            "noise {} of total {}",
            lx.noise_on_critical_path,
            lx.total
        );
        let rtk = run_omp(&spec, OmpMode::Rtk, 64, &knl(), 42);
        assert_eq!(rtk.noise_on_critical_path, Cycles::ZERO);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = sp();
        let a = run_omp(&spec, OmpMode::LinuxUser, 16, &knl(), 9);
        let b = run_omp(&spec, OmpMode::LinuxUser, 16, &knl(), 9);
        assert_eq!(a.total, b.total);
    }
}
