//! EPCC-style OpenMP overhead microbenchmarks.
//!
//! §V-A: "All three implementations can run the full Edinburgh OpenMP
//! microbenchmarks." The EPCC suite measures the overhead of individual
//! constructs — `parallel`, `barrier`, `for` with each schedule — as a
//! function of thread count. This module produces that table for every
//! execution mode: the per-construct costs come straight from the mode
//! profiles, so the table doubles as a legible summary of *why* Fig. 6
//! comes out the way it does.

use crate::modes::{ModeCosts, OmpMode};
use interweave_core::machine::MachineConfig;
use interweave_core::time::Cycles;

/// The EPCC constructs measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Construct {
    /// `#pragma omp parallel` (fork + join).
    Parallel,
    /// `#pragma omp barrier`.
    Barrier,
    /// `#pragma omp for schedule(dynamic, 1)` per-chunk overhead × chunks.
    ForDynamic,
    /// `#pragma omp parallel for reduction(+:x)` — the tree combine after
    /// the loop.
    Reduction,
    /// `#pragma omp task` + `taskwait` per task (the EPCC tasking suite of
    /// \[16\]; CCK's native shape).
    Task,
}

impl Construct {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Construct::Parallel => "parallel",
            Construct::Barrier => "barrier",
            Construct::ForDynamic => "for (dynamic)",
            Construct::Reduction => "reduction",
            Construct::Task => "task",
        }
    }

    /// All constructs.
    pub fn all() -> [Construct; 5] {
        [
            Construct::Parallel,
            Construct::Barrier,
            Construct::ForDynamic,
            Construct::Reduction,
            Construct::Task,
        ]
    }
}

/// One microbenchmark measurement.
#[derive(Debug, Clone)]
pub struct EpccRow {
    /// Construct measured.
    pub construct: Construct,
    /// Execution design.
    pub mode: OmpMode,
    /// Thread count.
    pub threads: usize,
    /// Overhead in cycles per construct execution.
    pub overhead: Cycles,
}

/// Overhead of one construct at one scale under one mode.
pub fn construct_overhead(
    construct: Construct,
    mode: OmpMode,
    threads: usize,
    mc: &MachineConfig,
) -> Cycles {
    let c = ModeCosts::new(mode, mc);
    match construct {
        Construct::Parallel => {
            c.fork_master(threads) + c.fork_worker_latency(threads) + c.barrier(threads)
        }
        Construct::Barrier => c.barrier(threads),
        // 16 chunks per thread, EPCC-style tiny bodies.
        Construct::ForDynamic => c.chunk_grab(threads) * 16 + c.barrier(threads),
        // Tree combine: log2(threads) levels of partial-sum exchange, then
        // the implicit barrier.
        Construct::Reduction => {
            let levels = (usize::BITS - threads.max(1).leading_zeros()) as u64;
            interweave_core::time::Cycles(90) * levels + c.barrier(threads)
        }
        // Spawn + run + completion bookkeeping for one child task; CCK's
        // chunk-grab path doubles as its task queue.
        Construct::Task => c.chunk_grab(threads) * 2 + c.fork_worker_latency(threads) / 2,
    }
}

/// The full table across modes and thread counts.
pub fn epcc_table(mc: &MachineConfig, thread_counts: &[usize]) -> Vec<EpccRow> {
    let mut rows = Vec::new();
    for &construct in Construct::all().iter() {
        for mode in OmpMode::all() {
            for &t in thread_counts {
                rows.push(EpccRow {
                    construct,
                    mode,
                    threads: t,
                    overhead: construct_overhead(construct, mode, t, mc),
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knl() -> MachineConfig {
        MachineConfig::phi_knl()
    }

    #[test]
    fn rtk_beats_linux_on_every_construct_at_every_scale() {
        for row in epcc_table(&knl(), &[2, 8, 32, 64]) {
            if row.mode != OmpMode::Rtk {
                continue;
            }
            let lx = construct_overhead(row.construct, OmpMode::LinuxUser, row.threads, &knl());
            assert!(
                row.overhead < lx,
                "{} @{}: rtk {} vs linux {}",
                row.construct.name(),
                row.threads,
                row.overhead,
                lx
            );
        }
    }

    #[test]
    fn barrier_overhead_grows_with_threads() {
        for mode in [OmpMode::LinuxUser, OmpMode::Rtk] {
            let small = construct_overhead(Construct::Barrier, mode, 2, &knl());
            let large = construct_overhead(Construct::Barrier, mode, 64, &knl());
            assert!(large > small, "{mode:?}");
        }
    }

    #[test]
    fn table_is_complete() {
        let rows = epcc_table(&knl(), &[2, 4, 8]);
        assert_eq!(rows.len(), 5 * OmpMode::all().len() * 3);
    }

    #[test]
    fn cck_tasks_are_the_cheapest_tasking_path_at_small_scale() {
        // CCK compiles tasks straight into the kernel task framework; at
        // small scale its per-task overhead beats the thread-based designs.
        let cck = construct_overhead(Construct::Task, OmpMode::Cck, 4, &knl());
        let lx = construct_overhead(Construct::Task, OmpMode::LinuxUser, 4, &knl());
        assert!(cck < lx, "cck {cck} vs linux {lx}");
    }

    #[test]
    fn reduction_tracks_barrier_plus_combine() {
        for mode in OmpMode::all() {
            let red = construct_overhead(Construct::Reduction, mode, 16, &knl());
            let bar = construct_overhead(Construct::Barrier, mode, 16, &knl());
            assert!(red > bar, "{mode:?}: reduction must exceed its barrier");
        }
    }
}
