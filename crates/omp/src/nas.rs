//! NAS-style workload specifications.
//!
//! Fig. 6 evaluates BT and SP from the NAS parallel benchmarks: iterative
//! ADI solvers that, per time step, sweep the grid in several parallel
//! regions separated by barriers, with a small serial section. What the
//! mode comparison is sensitive to is the *shape* — regions per iteration,
//! work per region, serial fraction, imbalance — so a specification
//! captures exactly those.

use interweave_core::time::Cycles;

/// A fork/join workload shape.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Benchmark name.
    pub name: &'static str,
    /// Time steps.
    pub iters: u32,
    /// Parallel regions per time step (BT/SP: x-, y-, z-solve + rhs).
    pub regions_per_iter: u32,
    /// Total work per region in cycles (split across workers).
    pub work_per_region: Cycles,
    /// Master-only serial work per time step.
    pub serial_per_iter: Cycles,
    /// Static imbalance: worker shares vary by U(0, imbalance).
    pub imbalance: f64,
    /// Iterations per region for dynamic scheduling cost (chunk grabs).
    pub chunks_per_worker: u32,
}

/// NAS BT (block tri-diagonal) — larger regions, 4 per step.
pub fn bt() -> WorkloadSpec {
    WorkloadSpec {
        name: "BT",
        iters: 24,
        regions_per_iter: 4,
        work_per_region: Cycles(2_400_000),
        serial_per_iter: Cycles(36_000),
        imbalance: 0.03,
        chunks_per_worker: 1,
    }
}

/// NAS SP (scalar penta-diagonal) — more, smaller regions per step; more
/// barrier-sensitive than BT.
pub fn sp() -> WorkloadSpec {
    WorkloadSpec {
        name: "SP",
        iters: 32,
        regions_per_iter: 6,
        work_per_region: Cycles(1_100_000),
        serial_per_iter: Cycles(30_000),
        imbalance: 0.04,
        chunks_per_worker: 1,
    }
}

/// The Fig. 6 benchmark pair.
pub fn fig6_specs() -> Vec<WorkloadSpec> {
    vec![bt(), sp()]
}

impl WorkloadSpec {
    /// Scale the per-region work by `factor` — a larger NAS class for a
    /// larger machine (the 192-core repetition runs a bigger problem, as
    /// strong-scaling a class-A-sized grid to 192 cores would leave
    /// microseconds of work per region).
    pub fn scaled(mut self, factor: u64) -> WorkloadSpec {
        self.work_per_region = self.work_per_region * factor;
        self.serial_per_iter = self.serial_per_iter * factor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sp_is_more_barrier_intensive_than_bt() {
        let (bt, sp) = (bt(), sp());
        let bt_grain = bt.work_per_region.get();
        let sp_grain = sp.work_per_region.get();
        assert!(sp.regions_per_iter > bt.regions_per_iter);
        assert!(sp_grain < bt_grain);
    }

    #[test]
    fn specs_have_sane_serial_fractions() {
        for s in fig6_specs() {
            let parallel = s.work_per_region.get() * s.regions_per_iter as u64;
            let frac = s.serial_per_iter.get() as f64 / parallel as f64;
            assert!(frac < 0.02, "{}: serial fraction {frac}", s.name);
        }
    }
}
