//! OpenMP loop-scheduling semantics: static, dynamic, guided.
//!
//! The scheduling *semantics* are identical across the four execution
//! designs — only the costs differ — so the chunk-assignment logic lives
//! here once, tested for the OpenMP-specified properties: full coverage, no
//! overlap, static determinism, and guided's geometrically shrinking
//! chunks.

/// An OpenMP `schedule(...)` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// `schedule(static)`: iterations pre-divided into contiguous blocks,
    /// one per thread.
    Static,
    /// `schedule(static, chunk)`: round-robin chunks.
    StaticChunk(u64),
    /// `schedule(dynamic, chunk)`: threads grab chunks from a shared
    /// counter.
    Dynamic(u64),
    /// `schedule(guided, min_chunk)`: chunk = remaining / threads, floored.
    Guided(u64),
}

/// A contiguous iteration chunk `[lo, hi)` assigned to a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Owning thread.
    pub thread: usize,
    /// First iteration.
    pub lo: u64,
    /// One past last iteration.
    pub hi: u64,
}

/// Compute the full chunk assignment for `n` iterations over `threads`
/// threads. For `Dynamic`/`Guided`, the grab order models each thread
/// taking the next chunk round-robin (the cost model charges the atomic per
/// grab; the *assignment* here is the deterministic reference order).
pub fn assign(schedule: Schedule, n: u64, threads: usize) -> Vec<Chunk> {
    assert!(threads > 0);
    let t = threads as u64;
    let mut out = Vec::new();
    match schedule {
        Schedule::Static => {
            // Blocked: ceil distribution, earlier threads get the extras.
            let base = n / t;
            let extra = n % t;
            let mut lo = 0;
            for th in 0..t {
                let len = base + u64::from(th < extra);
                if len > 0 {
                    out.push(Chunk {
                        thread: th as usize,
                        lo,
                        hi: lo + len,
                    });
                }
                lo += len;
            }
        }
        Schedule::StaticChunk(c) => {
            let c = c.max(1);
            let mut lo = 0;
            let mut th = 0usize;
            while lo < n {
                let hi = (lo + c).min(n);
                out.push(Chunk { thread: th, lo, hi });
                th = (th + 1) % threads;
                lo = hi;
            }
        }
        Schedule::Dynamic(c) => {
            let c = c.max(1);
            let mut lo = 0;
            let mut th = 0usize;
            while lo < n {
                let hi = (lo + c).min(n);
                out.push(Chunk { thread: th, lo, hi });
                th = (th + 1) % threads;
                lo = hi;
            }
        }
        Schedule::Guided(min) => {
            let min = min.max(1);
            let mut lo = 0;
            let mut th = 0usize;
            while lo < n {
                let remaining = n - lo;
                let c = (remaining / t).max(min).min(remaining);
                out.push(Chunk {
                    thread: th,
                    lo,
                    hi: lo + c,
                });
                th = (th + 1) % threads;
                lo += c;
            }
        }
    }
    out
}

/// Number of scheduling events (chunk grabs) — what the dynamic-schedule
/// cost model charges atomics for.
pub fn grab_count(schedule: Schedule, n: u64, threads: usize) -> usize {
    assign(schedule, n, threads).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(chunks: &[Chunk], n: u64) {
        let mut seen = vec![false; n as usize];
        for c in chunks {
            for i in c.lo..c.hi {
                assert!(!seen[i as usize], "iteration {i} assigned twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "missing iterations");
    }

    #[test]
    fn all_schedules_cover_exactly_once() {
        for s in [
            Schedule::Static,
            Schedule::StaticChunk(7),
            Schedule::Dynamic(5),
            Schedule::Guided(3),
        ] {
            for &(n, t) in &[(100u64, 4usize), (17, 5), (1, 3), (64, 64), (0, 2)] {
                let chunks = assign(s, n, t);
                check_cover(&chunks, n);
            }
        }
    }

    #[test]
    fn static_is_balanced_within_one() {
        let chunks = assign(Schedule::Static, 103, 10);
        let mut per = [0u64; 10];
        for c in &chunks {
            per[c.thread] += c.hi - c.lo;
        }
        let max = *per.iter().max().unwrap();
        let min = *per.iter().min().unwrap();
        assert!(max - min <= 1, "imbalance {max}-{min}");
    }

    #[test]
    fn guided_chunks_shrink_geometrically() {
        let chunks = assign(Schedule::Guided(1), 1000, 4);
        let sizes: Vec<u64> = chunks.iter().map(|c| c.hi - c.lo).collect();
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0], "guided chunks must not grow: {sizes:?}");
        }
        assert!(sizes[0] >= 250 - 1);
        assert!(*sizes.last().unwrap() >= 1);
    }

    #[test]
    fn dynamic_has_more_grabs_than_static() {
        let d = grab_count(Schedule::Dynamic(4), 1000, 8);
        let s = grab_count(Schedule::Static, 1000, 8);
        assert!(d > s);
        assert_eq!(d, 250);
        assert_eq!(s, 8);
    }

    #[test]
    fn static_chunk_round_robins() {
        let chunks = assign(Schedule::StaticChunk(10), 40, 2);
        let owners: Vec<usize> = chunks.iter().map(|c| c.thread).collect();
        assert_eq!(owners, vec![0, 1, 0, 1]);
    }
}
