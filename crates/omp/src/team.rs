//! A runnable OpenMP-style team: `parallel_for` executing on the kernel
//! executor.
//!
//! The rest of this crate prices OpenMP's constructs; this module *runs*
//! them: a team of worker tasks on the preemptive executor, iterations
//! dispatched by a [`Schedule`] — statically pre-assigned, or dynamically
//! grabbed from a shared chunk queue exactly the way `schedule(dynamic)`
//! works. The classic result (dynamic rescues imbalanced loops, static wins
//! on uniform ones by skipping grab overhead) falls out of execution rather
//! than assertion.

use crate::modes::{ModeCosts, OmpMode};
use crate::schedule::{assign, Chunk, Schedule};
use interweave_core::machine::MachineConfig;
use interweave_core::time::Cycles;
use interweave_kernel::executor::Executor;
use interweave_kernel::work::{Work, WorkStep};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Per-iteration cost function.
pub type IterCost = Rc<dyn Fn(u64) -> Cycles>;

/// How iterations reach workers at run time.
enum Dispatch {
    /// Pre-assigned chunk list (static flavours).
    Fixed(Vec<Chunk>),
    /// Shared grab queue (dynamic/guided).
    Queue(Rc<RefCell<VecDeque<Chunk>>>),
}

/// A team worker: runs region-entry latency, then its iterations, then the
/// barrier arrival cost.
struct TeamWorker {
    dispatch: Dispatch,
    cost: IterCost,
    grab_cost: Cycles,
    entry_cost: Cycles,
    barrier_cost: Cycles,
    state: WorkerState,
    current: Option<(u64, u64)>, // (next_iter, end)
    fixed_at: usize,
    /// Dynamic dispatch yields between chunks so grab order follows
    /// *simulated time* (the executor orders CPUs through its event queue
    /// only at scheduling points).
    yielded_before_grab: bool,
}

enum WorkerState {
    Entering,
    Running,
    Exiting,
    Done,
}

impl TeamWorker {
    fn next_chunk(&mut self) -> Option<(u64, u64, bool)> {
        match &mut self.dispatch {
            Dispatch::Fixed(chunks) => {
                let c = chunks.get(self.fixed_at)?;
                self.fixed_at += 1;
                Some((c.lo, c.hi, false))
            }
            Dispatch::Queue(q) => {
                let c = q.borrow_mut().pop_front()?;
                Some((c.lo, c.hi, true))
            }
        }
    }
}

impl Work for TeamWorker {
    fn step(&mut self, _cpu: usize, _now: Cycles) -> WorkStep {
        loop {
            match self.state {
                WorkerState::Entering => {
                    self.state = WorkerState::Running;
                    if self.entry_cost.get() > 0 {
                        return WorkStep::Compute(self.entry_cost);
                    }
                }
                WorkerState::Running => {
                    if let Some((at, end)) = self.current {
                        if at < end {
                            self.current = Some((at + 1, end));
                            return WorkStep::Compute((self.cost)(at));
                        }
                        self.current = None;
                    }
                    // Dynamic grabbing must observe global time order:
                    // yield first so the executor lets the least-advanced
                    // CPU grab next.
                    if matches!(self.dispatch, Dispatch::Queue(_)) && !self.yielded_before_grab {
                        self.yielded_before_grab = true;
                        return WorkStep::Yield;
                    }
                    self.yielded_before_grab = false;
                    match self.next_chunk() {
                        Some((lo, hi, grabbed)) => {
                            self.current = Some((lo, hi));
                            if grabbed && self.grab_cost.get() > 0 {
                                return WorkStep::Compute(self.grab_cost);
                            }
                        }
                        None => self.state = WorkerState::Exiting,
                    }
                }
                WorkerState::Exiting => {
                    self.state = WorkerState::Done;
                    if self.barrier_cost.get() > 0 {
                        return WorkStep::Compute(self.barrier_cost);
                    }
                }
                WorkerState::Done => return WorkStep::Done,
            }
        }
    }
}

/// Result of one parallel region.
#[derive(Debug, Clone)]
pub struct RegionResult {
    /// Completion time (fork + slowest worker + barrier).
    pub makespan: Cycles,
    /// Per-worker compute cycles (iterations only).
    pub per_worker: Vec<Cycles>,
    /// Total overhead cycles (fork + entry + grabs + barrier), derived.
    pub overhead: Cycles,
}

/// An OpenMP-style thread team bound to an execution design.
///
/// ```
/// use interweave_omp::team::Team;
/// use interweave_omp::schedule::Schedule;
/// use interweave_omp::OmpMode;
/// use interweave_core::machine::MachineConfig;
/// use interweave_core::Cycles;
///
/// let mc = MachineConfig::phi_knl().with_cores(4);
/// let team = Team::new(4, OmpMode::Rtk, mc);
/// let result = team.parallel_for(1_000, Schedule::Static, |_i| Cycles(100));
/// // 1000 iterations × 100 cycles over 4 workers ≈ 25k cycles + overheads.
/// assert!(result.makespan.get() >= 25_000);
/// assert!(result.makespan.get() < 40_000);
/// ```
pub struct Team {
    /// Worker count.
    pub threads: usize,
    /// Execution design (prices fork/barrier/grab).
    pub mode: OmpMode,
    mc: MachineConfig,
}

impl Team {
    /// A team of `threads` workers under `mode` on `mc`.
    pub fn new(threads: usize, mode: OmpMode, mc: MachineConfig) -> Team {
        assert!(threads >= 1 && threads <= mc.cores);
        Team { threads, mode, mc }
    }

    /// Execute `for i in 0..n` with per-iteration costs from `cost`,
    /// scheduled per `schedule`, and return the measured region result.
    pub fn parallel_for(
        &self,
        n: u64,
        schedule: Schedule,
        cost: impl Fn(u64) -> Cycles + 'static,
    ) -> RegionResult {
        let costs = ModeCosts::new(self.mode, &self.mc);
        let cost: IterCost = Rc::new(cost);
        let chunks = assign(schedule, n, self.threads);
        let dynamic = matches!(schedule, Schedule::Dynamic(_) | Schedule::Guided(_));
        let shared: Rc<RefCell<VecDeque<Chunk>>> =
            Rc::new(RefCell::new(chunks.iter().copied().collect()));

        // Effectively non-preemptive: the region is one schedule window.
        let mut exec = Executor::new(self.mc.clone(), Cycles(u64::MAX / 8));
        for t in 0..self.threads {
            let dispatch = if dynamic {
                Dispatch::Queue(Rc::clone(&shared))
            } else {
                Dispatch::Fixed(chunks.iter().filter(|c| c.thread == t).copied().collect())
            };
            exec.spawn(
                t,
                Box::new(TeamWorker {
                    dispatch,
                    cost: Rc::clone(&cost),
                    grab_cost: costs.chunk_grab(self.threads),
                    entry_cost: costs.fork_worker_latency(self.threads),
                    barrier_cost: costs.barrier(self.threads),
                    state: WorkerState::Entering,
                    current: None,
                    fixed_at: 0,
                    yielded_before_grab: false,
                }),
            );
        }
        assert!(exec.run(), "team workers must complete");

        // Iteration-only compute per worker: recompute from the schedule's
        // ground truth for fixed dispatch; for dynamic, derive from totals.
        let fork = ModeCosts::new(self.mode, &self.mc).fork_master(self.threads);
        let makespan = exec.stats.makespan + fork;
        let iter_total: Cycles = (0..n).map(|i| (cost)(i)).sum();
        let executed_total: Cycles = exec.stats.task_executed.iter().copied().sum();
        RegionResult {
            makespan,
            per_worker: exec.stats.task_executed.clone(),
            overhead: fork + (executed_total - iter_total),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knl(threads: usize) -> MachineConfig {
        MachineConfig::phi_knl().with_cores(threads.max(1))
    }

    #[test]
    fn all_iterations_execute_once() {
        let team = Team::new(4, OmpMode::Rtk, knl(4));
        let n = 1000;
        let r = team.parallel_for(n, Schedule::Static, |_| Cycles(100));
        let iter_cycles: u64 = 100 * n;
        let executed: u64 = r.per_worker.iter().map(|c| c.get()).sum();
        // Workers also execute entry/grab/barrier compute; iteration cycles
        // are a lower bound and the overhead accounts for the rest.
        assert!(executed >= iter_cycles);
        assert_eq!(
            executed - iter_cycles,
            (r.overhead - ModeCosts::new(OmpMode::Rtk, &knl(4)).fork_master(4)).get()
        );
    }

    #[test]
    fn dynamic_rescues_imbalanced_loops() {
        // First 10% of iterations are 20x heavier.
        let heavy = |i: u64| {
            if i < 100 {
                Cycles(2_000)
            } else {
                Cycles(100)
            }
        };
        let team = Team::new(8, OmpMode::Rtk, knl(8));
        let stat = team.parallel_for(1_000, Schedule::Static, heavy);
        let dyn_ = team.parallel_for(1_000, Schedule::Dynamic(8), heavy);
        assert!(
            dyn_.makespan.as_f64() < 0.75 * stat.makespan.as_f64(),
            "dynamic {} vs static {}",
            dyn_.makespan,
            stat.makespan
        );
    }

    #[test]
    fn static_wins_on_uniform_loops() {
        let team = Team::new(8, OmpMode::Rtk, knl(8));
        let stat = team.parallel_for(4_000, Schedule::Static, |_| Cycles(50));
        let dyn_ = team.parallel_for(4_000, Schedule::Dynamic(1), |_| Cycles(50));
        // Dynamic pays a grab per iteration here; static pays none.
        assert!(
            stat.makespan < dyn_.makespan,
            "static {} vs dynamic {}",
            stat.makespan,
            dyn_.makespan
        );
    }

    #[test]
    fn team_measurements_are_consistent_with_the_cost_model() {
        // The executor-level Team and the analytic fig-6 cost model must
        // agree on a balanced region's makespan to within a few percent:
        // fork + entry + n/p iterations + barrier.
        let p = 8usize;
        let n = 4_000u64;
        let per_iter = 60u64;
        let team = Team::new(p, OmpMode::Rtk, knl(p));
        let r = team.parallel_for(n, Schedule::Static, move |_| Cycles(per_iter));
        let costs = ModeCosts::new(OmpMode::Rtk, &knl(p));
        let predicted = costs.fork_master(p)
            + costs.fork_worker_latency(p)
            + Cycles(n / p as u64 * per_iter)
            + costs.barrier(p);
        let ratio = r.makespan.as_f64() / predicted.as_f64();
        assert!(
            (0.95..=1.1).contains(&ratio),
            "measured {} vs predicted {predicted} (ratio {ratio:.3})",
            r.makespan
        );
    }

    #[test]
    fn kernel_mode_regions_complete_faster_than_linux_mode() {
        let heavy = |_| Cycles(60);
        let lx =
            Team::new(16, OmpMode::LinuxUser, knl(16)).parallel_for(2_000, Schedule::Static, heavy);
        let rtk = Team::new(16, OmpMode::Rtk, knl(16)).parallel_for(2_000, Schedule::Static, heavy);
        assert!(
            rtk.makespan < lx.makespan,
            "rtk {} vs linux {}",
            rtk.makespan,
            lx.makespan
        );
    }

    #[test]
    fn guided_handles_tail_imbalance() {
        // Guided's geometrically shrinking chunks are built for *tail*
        // imbalance: big early chunks amortize grabs, small late chunks
        // spread the heavy tail. (Front-loaded imbalance is guided's known
        // weakness — the first huge chunk swallows it.)
        let heavy_tail = |i: u64| if i >= 720 { Cycles(1_500) } else { Cycles(80) };
        let team = Team::new(8, OmpMode::Rtk, knl(8));
        let stat = team
            .parallel_for(800, Schedule::Static, heavy_tail)
            .makespan;
        let guided = team
            .parallel_for(800, Schedule::Guided(4), heavy_tail)
            .makespan;
        assert!(
            guided.as_f64() < 0.8 * stat.as_f64(),
            "guided {guided} vs static {stat}"
        );
    }
}
