//! # interweave-omp
//!
//! OpenMP in the kernel (§V-A of the paper; Ma et al., "Paths to OpenMP in
//! the kernel", SC 2021).
//!
//! "The OpenMP run-time system is increasingly looking like a kernel, and
//! we are interweaving it with the Nautilus kernel framework so that it
//! *becomes* the kernel." Three interwoven designs are compared against the
//! commodity baseline:
//!
//! - **Linux user-level** (baseline): libomp-style runtime above the
//!   kernel; pays futex wakeups, fair-scheduler picks, crossings, and —
//!   decisively at scale — OS noise amplified by every barrier.
//! - **RTK** (runtime in kernel): the OpenMP runtime ported into the
//!   kernel; kernel-mode worker threads, no crossings, no noise.
//! - **PIK** (process in kernel): unmodified user programs recompiled into
//!   a kernel-mode process simulacrum; performs like RTK with a small
//!   abstraction tax.
//! - **CCK** (custom compilation for kernel): OpenMP pragmas compiled
//!   directly to kernel tasks (SoftIRQ-like); a different shape — cheap at
//!   small scale, centralized-queue contention at large scale ("not easily
//!   summarized").
//!
//! Modules: [`schedule`] (loop-scheduling semantics: static/dynamic/
//! guided), [`modes`] (per-design cost profiles), [`nas`] (BT/SP-like
//! workload specifications), [`sim`] (the Fig. 6 scaling simulation),
//! [`epcc`] (EPCC-style overhead microbenchmarks), and [`team`] (a
//! runnable parallel-for team on the kernel executor).

#![warn(missing_docs)]

pub mod epcc;
pub mod modes;
pub mod nas;
pub mod schedule;
pub mod sim;
pub mod team;

pub use modes::OmpMode;
pub use sim::{run_omp, OmpResult};
