//! Property tests for OpenMP loop scheduling: every schedule covers every
//! iteration exactly once with sane ownership, for arbitrary parameters.

use interweave_omp::schedule::{assign, grab_count, Schedule};
use proptest::prelude::*;

fn schedules() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static),
        (1u64..64).prop_map(Schedule::StaticChunk),
        (1u64..64).prop_map(Schedule::Dynamic),
        (1u64..64).prop_map(Schedule::Guided),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Exactly-once coverage with valid thread ownership.
    #[test]
    fn coverage_exactly_once(s in schedules(), n in 0u64..5000, threads in 1usize..64) {
        let chunks = assign(s, n, threads);
        let mut seen = vec![false; n as usize];
        for c in &chunks {
            prop_assert!(c.thread < threads);
            prop_assert!(c.lo < c.hi, "empty chunk emitted");
            for i in c.lo..c.hi {
                prop_assert!(!seen[i as usize], "iteration {} twice", i);
                seen[i as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&x| x), "coverage gap");
    }

    /// Static assignment balances within one iteration across threads.
    #[test]
    fn static_balance(n in 1u64..5000, threads in 1usize..64) {
        let chunks = assign(Schedule::Static, n, threads);
        let mut per = vec![0u64; threads];
        for c in &chunks {
            per[c.thread] += c.hi - c.lo;
        }
        let max = per.iter().copied().max().unwrap();
        let min_nonzero = per.iter().copied().filter(|&x| x > 0).min().unwrap_or(0);
        prop_assert!(max - min_nonzero.min(max) <= 1);
    }

    /// Guided chunks never grow and respect the floor (except the last).
    #[test]
    fn guided_monotone(n in 1u64..5000, threads in 1usize..32, min in 1u64..32) {
        let chunks = assign(Schedule::Guided(min), n, threads);
        let sizes: Vec<u64> = chunks.iter().map(|c| c.hi - c.lo).collect();
        for w in sizes.windows(2) {
            prop_assert!(w[1] <= w[0]);
        }
        for &s in &sizes[..sizes.len().saturating_sub(1)] {
            prop_assert!(s >= min.min(n));
        }
    }

    /// Grab counts: dynamic = ceil(n/chunk); static = min(threads, n).
    #[test]
    fn grab_counts(n in 1u64..5000, threads in 1usize..64, chunk in 1u64..64) {
        prop_assert_eq!(
            grab_count(Schedule::Dynamic(chunk), n, threads) as u64,
            n.div_ceil(chunk)
        );
        prop_assert_eq!(
            grab_count(Schedule::Static, n, threads) as u64,
            (threads as u64).min(n)
        );
    }
}
