//! Property tests for the Fig. 6 simulation: the kernel designs never lose
//! to Linux, gains are monotone-ish in scale, and the simulation conserves
//! its own accounting.

use interweave_core::machine::MachineConfig;
use interweave_omp::nas::{bt, sp};
use interweave_omp::sim::run_omp;
use interweave_omp::OmpMode;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// RTK never loses to Linux at any sampled scale/seed, on either
    /// benchmark shape.
    #[test]
    fn rtk_never_loses(seed in any::<u64>(), p_idx in 0usize..6, which in 0usize..2) {
        let p = [1usize, 2, 4, 8, 16, 32][p_idx];
        let spec = if which == 0 { bt() } else { sp() };
        let mc = MachineConfig::phi_knl();
        let lx = run_omp(&spec, OmpMode::LinuxUser, p, &mc, seed).total;
        let rtk = run_omp(&spec, OmpMode::Rtk, p, &mc, seed).total;
        prop_assert!(rtk <= lx, "p={p}: rtk {rtk} vs linux {lx}");
    }

    /// The accounting identity holds: overheads and noise never exceed the
    /// total, and kernel-interwoven modes carry zero noise. (The user-level
    /// modes may carry noise — heavy on Linux, light on the Aster-like
    /// framekernel.)
    #[test]
    fn accounting_identity(seed in any::<u64>(), p_idx in 0usize..5) {
        let p = [2usize, 4, 8, 16, 32][p_idx];
        let mc = MachineConfig::phi_knl();
        for mode in OmpMode::all() {
            let r = run_omp(&bt(), mode, p, &mc, seed);
            prop_assert!(r.runtime_overhead <= r.total);
            prop_assert!(r.noise_on_critical_path <= r.runtime_overhead);
            if !matches!(mode, OmpMode::LinuxUser | OmpMode::AsterUser) {
                prop_assert_eq!(r.noise_on_critical_path.get(), 0);
            }
        }
    }
}
