//! Real-time fibers: EDF-scheduled periodic execution of interpreted
//! programs.
//!
//! §III: Nautilus "provides predictable behavior through a variety of
//! means, including hard real-time scheduling"; Fig. 4's parameter space
//! includes {RT} × {fibers}. This module executes *real programs* (IR, via
//! fuel-bounded interpretation) as periodic EDF jobs: each fiber releases a
//! job of `slice` interpreter cycles every `period`; the earliest-deadline
//! pending job runs, preempted at releases with the fiber switch cost.
//! Admission control makes the hard-RT promise checkable: admitted sets
//! meet every deadline; over-admission (forced past the controller) shows
//! exactly the misses EDF theory predicts.

use interweave_core::machine::MachineConfig;
use interweave_core::stack::OsPoint;
use interweave_core::time::Cycles;
use interweave_ir::interp::{ExecStatus, Interp, InterpConfig, NullHooks};
use interweave_ir::programs::Program;
use interweave_kernel::sched::{Edf, EdfTask};
use interweave_kernel::threads::{switch_cost, SwitchKind};

/// One periodic real-time fiber.
pub struct RtFiber {
    /// The program this fiber interprets (restarted when it completes).
    pub program: Program,
    /// Release period (= relative deadline).
    pub period: Cycles,
    /// Interpreter-cycle budget per job.
    pub slice: Cycles,
    interp: Interp,
    started: bool,
}

impl RtFiber {
    /// A fiber running `program` with the given period and per-job slice.
    pub fn new(program: Program, period: Cycles, slice: Cycles) -> RtFiber {
        RtFiber {
            program,
            period,
            slice,
            interp: Interp::new(InterpConfig::default()),
            started: false,
        }
    }

    /// Run up to `fuel` cycles of the program; restarts it upon completion
    /// so a periodic fiber always has work.
    fn execute(&mut self, fuel: u64) -> u64 {
        let before = self.interp.stats.cycles;
        let mut left = fuel;
        while left > 0 {
            if !self.started || self.interp.finished() {
                self.interp
                    .start(&self.program.module, self.program.entry, &self.program.args);
                self.started = true;
            }
            match self.interp.run(&self.program.module, &mut NullHooks, left) {
                ExecStatus::Done(_) => {
                    let used = self.interp.stats.cycles - before;
                    if used >= fuel {
                        break;
                    }
                    left = fuel - used;
                }
                ExecStatus::OutOfFuel | ExecStatus::Yielded => break,
                ExecStatus::Trapped(t) => panic!("rt fiber trapped: {t:?}"),
            }
        }
        self.interp.stats.cycles - before
    }
}

/// Outcome of one RT run.
#[derive(Debug, Clone, Default)]
pub struct RtReport {
    /// Jobs released.
    pub jobs: u64,
    /// Jobs that finished by their deadline.
    pub met: u64,
    /// Jobs that missed.
    pub missed: u64,
    /// Preemptions performed.
    pub preemptions: u64,
    /// Total switch cycles charged.
    pub switch_cycles: u64,
    /// Admitted utilization.
    pub utilization: f64,
}

/// The RT fiber runtime on one CPU.
pub struct RtRuntime {
    mc: MachineConfig,
    fibers: Vec<RtFiber>,
    utilization: f64,
    rejected: Option<RtFiber>,
}

impl RtRuntime {
    /// A runtime on `mc` (one CPU's worth of schedule).
    pub fn new(mc: MachineConfig) -> RtRuntime {
        RtRuntime {
            mc,
            fibers: Vec::new(),
            utilization: 0.0,
            rejected: None,
        }
    }

    /// Admit a fiber if utilization permits; returns false (and drops it)
    /// otherwise.
    pub fn admit(&mut self, fiber: RtFiber) -> bool {
        let mut edf = Edf::new();
        // Recheck the whole set including switch overhead slack (5%).
        let mut ok = true;
        for (i, f) in self
            .fibers
            .iter()
            .chain(std::iter::once(&fiber))
            .enumerate()
        {
            let padded = Cycles((f.slice.as_f64() * 1.05) as u64 + 1);
            ok &= edf.admit(EdfTask {
                id: i as u64,
                deadline: f.period,
                period: f.period,
                slice: padded,
            });
        }
        if ok {
            self.utilization = edf.utilization();
            self.fibers.push(fiber);
        }
        ok
    }

    /// Force a fiber in without admission control (to demonstrate misses).
    pub fn admit_unchecked(&mut self, fiber: RtFiber) {
        self.fibers.push(fiber);
        self.utilization = f64::NAN;
    }

    /// Run the schedule for `horizon` cycles of wall time.
    pub fn run(&mut self, horizon: Cycles) -> RtReport {
        #[derive(Debug, Clone, Copy)]
        struct Job {
            fiber: usize,
            deadline: u64,
            remaining: u64,
        }

        let switch = switch_cost(
            &self.mc,
            OsPoint::NkLike,
            SwitchKind::FiberCompilerTimed,
            true,
            false,
        )
        .total()
        .get();

        // Releases for every fiber up to the horizon.
        let mut releases: Vec<(u64, usize)> = Vec::new();
        for (fi, f) in self.fibers.iter().enumerate() {
            let mut t = 0u64;
            while t < horizon.get() {
                releases.push((t, fi));
                t += f.period.get();
            }
        }
        releases.sort_unstable();

        let mut report = RtReport {
            jobs: releases.len() as u64,
            utilization: self.utilization,
            ..RtReport::default()
        };

        let mut pending: Vec<Job> = Vec::new();
        let mut now = 0u64;
        let mut next_rel = 0usize;
        let mut last_fiber: Option<usize> = None;

        loop {
            while next_rel < releases.len() && releases[next_rel].0 <= now {
                let (t, fi) = releases[next_rel];
                pending.push(Job {
                    fiber: fi,
                    deadline: t + self.fibers[fi].period.get(),
                    remaining: self.fibers[fi].slice.get(),
                });
                next_rel += 1;
            }
            // Earliest deadline first (stable pick for determinism).
            pending.sort_by_key(|j| (j.deadline, j.fiber));
            let Some(mut job) = (if pending.is_empty() {
                None
            } else {
                Some(pending.remove(0))
            }) else {
                if next_rel >= releases.len() {
                    break;
                }
                now = releases[next_rel].0;
                continue;
            };

            // Context switch when the running fiber changes.
            if last_fiber != Some(job.fiber) {
                now += switch;
                report.switch_cycles += switch;
                if last_fiber.is_some() {
                    report.preemptions += 1;
                }
                last_fiber = Some(job.fiber);
            }

            // Run until job completion or next release.
            let until = releases.get(next_rel).map(|&(t, _)| t).unwrap_or(u64::MAX);
            let budget = job.remaining.min(until.saturating_sub(now));
            if budget == 0 {
                // A release is due immediately; requeue and loop.
                pending.push(job);
                now = until;
                continue;
            }
            let used = self.fibers[job.fiber].execute(budget).max(1);
            now += used;
            job.remaining = job.remaining.saturating_sub(used);
            if job.remaining == 0 {
                if now <= job.deadline {
                    report.met += 1;
                } else {
                    report.missed += 1;
                }
            } else {
                pending.push(job);
            }
        }
        // Jobs still pending at horizon count as misses if past deadline.
        for j in pending {
            if now > j.deadline {
                report.missed += 1;
            } else {
                report.met += 1; // incomplete but not yet late at horizon
            }
        }
        report
    }
}

/// Partitioned multi-CPU EDF: fibers are packed onto per-CPU runtimes by
/// first-fit decreasing utilization (the standard partitioned-EDF
/// heuristic); each CPU then runs its own optimal uniprocessor EDF
/// schedule.
pub struct PartitionedRt {
    /// Per-CPU runtimes.
    pub cpus: Vec<RtRuntime>,
}

impl PartitionedRt {
    /// A partitioned runtime over `mc.cores` CPUs.
    pub fn new(mc: &MachineConfig) -> PartitionedRt {
        PartitionedRt {
            cpus: (0..mc.cores).map(|_| RtRuntime::new(mc.clone())).collect(),
        }
    }

    /// Partition `fibers` by first-fit decreasing utilization. Returns the
    /// CPU index per admitted fiber, or `None` for fibers nothing could
    /// accept.
    pub fn partition(&mut self, mut fibers: Vec<RtFiber>) -> Vec<Option<usize>> {
        // Decreasing utilization order.
        let mut order: Vec<usize> = (0..fibers.len()).collect();
        order.sort_by(|&a, &b| {
            let ua = fibers[a].slice.as_f64() / fibers[a].period.as_f64();
            let ub = fibers[b].slice.as_f64() / fibers[b].period.as_f64();
            ub.partial_cmp(&ua).expect("finite utilizations")
        });
        let mut placement = vec![None; fibers.len()];
        // Drain in sorted order; placeholders keep indices stable.
        for idx in order {
            let fiber = std::mem::replace(
                &mut fibers[idx],
                RtFiber::new(
                    interweave_ir::programs::fib(1),
                    Cycles(1_000_000),
                    Cycles(1),
                ),
            );
            let mut placed = None;
            let mut candidate = Some(fiber);
            for (c, cpu) in self.cpus.iter_mut().enumerate() {
                let f = candidate.take().expect("present");
                if cpu.admit_or_return(f) {
                    placed = Some(c);
                    break;
                } else {
                    // admit_or_return gives the fiber back on rejection.
                    candidate = cpu.take_rejected();
                }
            }
            placement[idx] = placed;
        }
        placement
    }

    /// Run every CPU's schedule for `horizon`; returns the merged report.
    pub fn run(&mut self, horizon: Cycles) -> RtReport {
        let mut total = RtReport::default();
        let mut total_util = 0.0;
        for cpu in &mut self.cpus {
            let r = cpu.run(horizon);
            total.jobs += r.jobs;
            total.met += r.met;
            total.missed += r.missed;
            total.preemptions += r.preemptions;
            total.switch_cycles += r.switch_cycles;
            total_util += if r.utilization.is_nan() {
                0.0
            } else {
                r.utilization
            };
        }
        total.utilization = total_util;
        total
    }
}

impl RtRuntime {
    /// Admission that hands the fiber back on rejection (for partitioning).
    fn admit_or_return(&mut self, fiber: RtFiber) -> bool {
        if self.admit_probe(&fiber) {
            self.fibers.push(fiber);
            true
        } else {
            self.rejected = Some(fiber);
            false
        }
    }

    fn take_rejected(&mut self) -> Option<RtFiber> {
        self.rejected.take()
    }

    /// Would this fiber be admissible alongside the current set?
    fn admit_probe(&self, fiber: &RtFiber) -> bool {
        let mut edf = Edf::new();
        let mut ok = true;
        for (i, f) in self.fibers.iter().chain(std::iter::once(fiber)).enumerate() {
            let padded = Cycles((f.slice.as_f64() * 1.05) as u64 + 1);
            ok &= edf.admit(EdfTask {
                id: i as u64,
                deadline: f.period,
                period: f.period,
                slice: padded,
            });
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interweave_ir::programs;

    fn mc() -> MachineConfig {
        MachineConfig::phi_knl()
    }

    #[test]
    fn admitted_sets_meet_every_deadline() {
        let mut rt = RtRuntime::new(mc());
        assert!(rt.admit(RtFiber::new(
            programs::stream_triad(64),
            Cycles(100_000),
            Cycles(20_000),
        )));
        assert!(rt.admit(RtFiber::new(
            programs::fib(30),
            Cycles(250_000),
            Cycles(100_000),
        )));
        assert!(rt.admit(RtFiber::new(
            programs::histogram(4_000, 64),
            Cycles(500_000),
            Cycles(120_000),
        )));
        let report = rt.run(Cycles(5_000_000));
        assert!(report.jobs > 50);
        assert_eq!(report.missed, 0, "admitted set missed: {report:?}");
        assert!(report.utilization <= 1.0);
    }

    #[test]
    fn admission_control_rejects_overload() {
        let mut rt = RtRuntime::new(mc());
        assert!(rt.admit(RtFiber::new(
            programs::fib(30),
            Cycles(100_000),
            Cycles(70_000),
        )));
        // 70% + 40% > 100%: rejected.
        assert!(!rt.admit(RtFiber::new(
            programs::fib(30),
            Cycles(100_000),
            Cycles(40_000),
        )));
    }

    #[test]
    fn forced_overload_misses_deadlines() {
        let mut rt = RtRuntime::new(mc());
        rt.admit_unchecked(RtFiber::new(
            programs::fib(30),
            Cycles(100_000),
            Cycles(70_000),
        ));
        rt.admit_unchecked(RtFiber::new(
            programs::fib(30),
            Cycles(100_000),
            Cycles(70_000),
        ));
        let report = rt.run(Cycles(2_000_000));
        assert!(report.missed > 0, "140% utilization must miss: {report:?}");
    }

    #[test]
    fn partitioning_packs_by_first_fit_decreasing() {
        let mc = MachineConfig::phi_knl().with_cores(2);
        let mut prt = PartitionedRt::new(&mc);
        // Utilizations: 0.6, 0.6, 0.5, 0.25 — FFD packs {0.6,0.25} + {0.6,
        // 0.5}... decreasing order: 0.6,0.6,0.5,0.25 → cpu0: 0.6; cpu1:
        // 0.6; cpu1 can't take 0.5? 0.6+0.5=1.1 > 1 → neither cpu takes
        // 0.5 on cpu0 (1.1) → unplaced? cpu0 0.6+0.5 > 1... so 0.5 goes
        // unplaced only if both full; here both at 0.6 → rejected; 0.25
        // fits cpu0.
        let fibers = vec![
            RtFiber::new(programs::fib(25), Cycles(100_000), Cycles(57_000)),
            RtFiber::new(programs::fib(25), Cycles(100_000), Cycles(57_000)),
            RtFiber::new(programs::fib(25), Cycles(100_000), Cycles(47_000)),
            RtFiber::new(programs::fib(25), Cycles(100_000), Cycles(23_000)),
        ];
        let placement = prt.partition(fibers);
        assert_eq!(placement[0], Some(0));
        assert_eq!(placement[1], Some(1));
        assert_eq!(placement[2], None, "0.5 cannot fit beside 0.6 anywhere");
        assert!(placement[3].is_some());
    }

    #[test]
    fn partitioned_schedules_meet_deadlines_on_all_cpus() {
        let mc = MachineConfig::phi_knl().with_cores(3);
        let mut prt = PartitionedRt::new(&mc);
        let fibers = vec![
            RtFiber::new(programs::stream_triad(64), Cycles(120_000), Cycles(40_000)),
            RtFiber::new(programs::fib(30), Cycles(200_000), Cycles(90_000)),
            RtFiber::new(
                programs::histogram(2_000, 64),
                Cycles(300_000),
                Cycles(110_000),
            ),
            RtFiber::new(programs::fib(30), Cycles(150_000), Cycles(60_000)),
            RtFiber::new(programs::dot(96), Cycles(250_000), Cycles(70_000)),
        ];
        let placement = prt.partition(fibers);
        assert!(placement.iter().all(|p| p.is_some()), "{placement:?}");
        let report = prt.run(Cycles(3_000_000));
        assert!(report.jobs > 40);
        assert_eq!(report.missed, 0, "{report:?}");
    }

    #[test]
    fn preemptions_charge_fiber_switch_costs() {
        let mut rt = RtRuntime::new(mc());
        rt.admit(RtFiber::new(
            programs::stream_triad(64),
            Cycles(50_000),
            Cycles(10_000),
        ));
        rt.admit(RtFiber::new(
            programs::fib(30),
            Cycles(80_000),
            Cycles(20_000),
        ));
        let report = rt.run(Cycles(2_000_000));
        assert!(report.preemptions > 0);
        assert!(report.switch_cycles > 0);
        // Switch costs are the *fiber* kind: far below thread switches.
        let per_switch = report.switch_cycles / (report.preemptions + 1);
        assert!(per_switch < 1_000, "per-switch {per_switch}");
    }
}
