//! The fiber runtime: one CPU multiplexing interpreted programs under
//! either preemption mechanism.
//!
//! - [`PreemptMode::CompilerTimed`]: programs carry injected time checks;
//!   when a check observes the quantum elapsed it yields, and the runtime
//!   performs a *fiber* switch (callee-saved state only, no interrupt).
//! - [`PreemptMode::HardwareTimer`]: programs are unmodified; a simulated
//!   LAPIC timer preempts at the quantum boundary and the runtime performs
//!   an interrupt-driven *thread* switch (dispatch + full frame + `iretq`).
//!
//! Both runs complete the identical workload, so total cycles compare
//! directly: the difference is pure mechanism cost — the Fig. 4 argument in
//! executable form.

use interweave_core::machine::MachineConfig;
use interweave_core::stack::OsPoint;
use interweave_core::stats::Summary;
use interweave_ir::interp::{ExecStatus, HookAction, Interp, InterpConfig, Memory, RuntimeHooks};
use interweave_ir::programs::Program;
use interweave_ir::types::Val;
use interweave_ir::Intrinsic;
use interweave_kernel::threads::{switch_cost, SwitchKind};

use crate::timing_pass::InjectTiming;
use interweave_ir::passes::Pass;

/// How fibers/threads are preempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptMode {
    /// Compiler-injected time checks drive `yield()` (interwoven design).
    CompilerTimed,
    /// Hardware timer interrupts preempt (commodity design).
    HardwareTimer,
}

/// Per-fiber time-check hooks: yield when the quantum has elapsed.
struct QuantumHooks {
    quantum: u64,
    last_yield: u64,
    checks: u64,
}

impl RuntimeHooks for QuantumHooks {
    fn intrinsic(
        &mut self,
        which: Intrinsic,
        _args: &[Val],
        _mem: &mut Memory,
        now: u64,
    ) -> HookAction {
        match which {
            Intrinsic::TimeCheck => {
                self.checks += 1;
                // The injected check compiles to a counter decrement and a
                // predicted branch: ~2 cycles when not taken.
                if now.saturating_sub(self.last_yield) >= self.quantum {
                    self.last_yield = now;
                    HookAction::Yield { cycles: 2 }
                } else {
                    HookAction::Continue {
                        value: None,
                        cycles: 2,
                    }
                }
            }
            Intrinsic::ReadTimer => HookAction::Continue {
                value: Some(Val::I(now as i64)),
                cycles: 1,
            },
            _ => HookAction::Continue {
                value: None,
                cycles: 0,
            },
        }
    }
}

/// Outcome of multiplexing a workload to completion.
#[derive(Debug, Clone)]
pub struct FiberReport {
    /// Preemption mechanism used.
    pub mode: PreemptMode,
    /// Quantum in cycles.
    pub quantum: u64,
    /// Context switches performed.
    pub switches: u64,
    /// Cycles spent inside switches (mechanism cost).
    pub switch_cycles: u64,
    /// Cycles spent in injected checks (compiler-timed only).
    pub check_cycles: u64,
    /// Useful program cycles.
    pub work_cycles: u64,
    /// Total cycles (work + mechanism).
    pub total_cycles: u64,
    /// Distribution of slice lengths (achieved preemption granularity).
    pub slice: Summary,
    /// Program results, in submission order.
    pub results: Vec<Option<Val>>,
}

impl FiberReport {
    /// Mechanism overhead as a fraction of total time.
    pub fn overhead_fraction(&self) -> f64 {
        (self.switch_cycles + self.check_cycles) as f64 / self.total_cycles as f64
    }
}

/// Run `programs` to completion on one CPU with the given quantum.
pub fn run_fibers(
    programs: &[Program],
    quantum: u64,
    mc: &MachineConfig,
    mode: PreemptMode,
) -> FiberReport {
    assert!(quantum > 0);
    struct Fiber {
        module: interweave_ir::Module,
        interp: Interp,
        hooks: QuantumHooks,
        fp: bool,
        done: bool,
        result: Option<Val>,
    }

    let mut fibers: Vec<Fiber> = programs
        .iter()
        .map(|p| {
            let mut module = p.module.clone();
            if mode == PreemptMode::CompilerTimed {
                InjectTiming::default().run(&mut module);
            }
            let fp = module.funcs.iter().any(|f| f.touches_fp());
            let mut interp = Interp::new(InterpConfig::default());
            interp.start(&module, p.entry, &p.args);
            Fiber {
                module,
                interp,
                hooks: QuantumHooks {
                    quantum,
                    last_yield: 0,
                    checks: 0,
                },
                fp,
                done: false,
                result: None,
            }
        })
        .collect();

    let mut report = FiberReport {
        mode,
        quantum,
        switches: 0,
        switch_cycles: 0,
        check_cycles: 0,
        work_cycles: 0,
        total_cycles: 0,
        slice: Summary::new(),
        results: vec![None; programs.len()],
    };

    // Round-robin until all fibers finish.
    let mut live = fibers.len();
    while live > 0 {
        for f in fibers.iter_mut() {
            if f.done {
                continue;
            }
            let before = f.interp.stats.cycles;
            let status = match mode {
                PreemptMode::CompilerTimed => {
                    // Fuel is effectively unbounded; the checks yield.
                    f.interp.run(&f.module, &mut f.hooks, u64::MAX / 4)
                }
                PreemptMode::HardwareTimer => {
                    // The timer preempts at the quantum boundary.
                    f.interp.run(&f.module, &mut f.hooks, quantum)
                }
            };
            let ran = f.interp.stats.cycles - before;
            report.slice.add(ran as f64);
            match status {
                ExecStatus::Done(v) => {
                    f.done = true;
                    f.result = v;
                    live -= 1;
                }
                ExecStatus::Yielded | ExecStatus::OutOfFuel => {
                    // A preemption: charge the mechanism.
                    let kind = match mode {
                        PreemptMode::CompilerTimed => SwitchKind::FiberCompilerTimed,
                        PreemptMode::HardwareTimer => SwitchKind::ThreadInterrupt,
                    };
                    let cost = switch_cost(mc, OsPoint::NkLike, kind, false, f.fp).total();
                    report.switches += 1;
                    report.switch_cycles += cost.get();
                }
                ExecStatus::Trapped(t) => panic!("fiber trapped: {t:?}"),
            }
        }
    }

    for (i, f) in fibers.iter().enumerate() {
        report.results[i] = f.result;
        report.work_cycles += f.interp.stats.cycles - f.interp.stats.injected_cycles;
        report.check_cycles += f.interp.stats.injected_cycles;
    }
    report.total_cycles = report.work_cycles + report.check_cycles + report.switch_cycles;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use interweave_ir::interp::NullHooks;
    use interweave_ir::programs;

    fn workload() -> Vec<Program> {
        vec![
            programs::stream_triad(48),
            programs::matvec(10),
            programs::fib(13),
            programs::histogram(200, 16),
        ]
    }

    fn knl() -> MachineConfig {
        MachineConfig::phi_knl()
    }

    fn baseline_results(programs: &[Program]) -> Vec<Option<Val>> {
        programs
            .iter()
            .map(|p| {
                let mut it = Interp::new(InterpConfig::default());
                it.start(&p.module, p.entry, &p.args);
                Some(it.run_to_completion(&p.module, &mut NullHooks).unwrap())
            })
            .collect()
    }

    #[test]
    fn both_modes_complete_the_workload_correctly() {
        let w = workload();
        let expected = baseline_results(&w);
        for mode in [PreemptMode::CompilerTimed, PreemptMode::HardwareTimer] {
            let r = run_fibers(&w, 5_000, &knl(), mode);
            assert_eq!(r.results, expected, "{mode:?}");
            assert!(r.switches > 0, "{mode:?} never preempted");
        }
    }

    #[test]
    fn compiler_timing_is_cheaper_at_fine_grain() {
        // §IV-C: at fine quanta the interrupt mechanism's per-switch cost
        // dominates; compiler timing wins even while paying per-check.
        let w = workload();
        let quantum = 2_000; // ~1.4 µs on KNL
        let ct = run_fibers(&w, quantum, &knl(), PreemptMode::CompilerTimed);
        let hw = run_fibers(&w, quantum, &knl(), PreemptMode::HardwareTimer);
        assert!(
            ct.total_cycles < hw.total_cycles,
            "compiler-timed {} vs hw-timer {}",
            ct.total_cycles,
            hw.total_cycles
        );
        assert!(ct.overhead_fraction() < hw.overhead_fraction());
    }

    #[test]
    fn achieved_slices_track_the_quantum() {
        // Long-running programs so completion slices are a small minority.
        let w = vec![
            programs::stream_triad(400),
            programs::matvec(24),
            programs::fib(17),
            programs::histogram(2_000, 32),
        ];
        let quantum = 3_000u64;
        let r = run_fibers(&w, quantum, &knl(), PreemptMode::CompilerTimed);
        // No slice may overshoot the quantum by more than the check-
        // placement bound (≤400 cycles, see timing_pass) plus one check.
        assert!(
            r.slice.max() <= (quantum + 600) as f64,
            "max slice {} vs quantum {quantum}",
            r.slice.max()
        );
        // The mean sits near the quantum (final partial slices pull it
        // down slightly).
        let mean = r.slice.mean();
        assert!(
            (quantum as f64 * 0.5..=quantum as f64 * 1.2).contains(&mean),
            "mean slice {mean} vs quantum {quantum}"
        );
    }

    #[test]
    fn coarse_quanta_make_overhead_negligible() {
        let w = workload();
        let r = run_fibers(&w, 500_000, &knl(), PreemptMode::CompilerTimed);
        assert!(
            r.overhead_fraction() < 0.15,
            "overhead {:.3}",
            r.overhead_fraction()
        );
    }

    #[test]
    fn switch_cost_scales_with_fp_content() {
        // A pure-integer workload switches cheaper than an FP one.
        let int_only = vec![programs::fib(16), programs::histogram(400, 16)];
        let fp_heavy = vec![programs::stream_triad(96), programs::matvec(12)];
        let a = run_fibers(&int_only, 3_000, &knl(), PreemptMode::CompilerTimed);
        let b = run_fibers(&fp_heavy, 3_000, &knl(), PreemptMode::CompilerTimed);
        let per_switch_a = a.switch_cycles as f64 / a.switches.max(1) as f64;
        let per_switch_b = b.switch_cycles as f64 / b.switches.max(1) as f64;
        assert!(
            per_switch_b > per_switch_a * 2.0,
            "fp per-switch {per_switch_b} vs int {per_switch_a}"
        );
    }
}
