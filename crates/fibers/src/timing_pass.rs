//! The timing-injection pass.
//!
//! §IV-C: "the compiler transform needs to introduce timing calls
//! statically, so that they occur dynamically at some desired rate
//! regardless of the code path taken through the kernel+application
//! ensemble as it runs. Modern compiler analysis makes this possible."
//!
//! Placement policy (the standard result from the SC'20 system):
//! - at the top of every natural-loop *header* — every iteration of every
//!   loop passes a check;
//! - at every function entry — call chains (including recursion) cannot
//!   escape checking;
//! - inside any straight-line run longer than [`InjectTiming::max_run`]
//!   instructions — long blocks cannot stretch the gap unboundedly.
//!
//! With this policy the dynamic gap between two consecutive checks is
//! bounded by the cost of the longest check-free path: at most `max_run`
//! instructions plus one block's worth of non-loop straight-line code. The
//! `placement_bound_holds` test measures actual gaps over the benchmark
//! suite to validate the bound.

use interweave_ir::analysis::{Cfg, Dominators, LoopForest};
use interweave_ir::inst::{Inst, Intrinsic};
use interweave_ir::passes::{Pass, PassStats};
use interweave_ir::Module;

/// The injection pass.
#[derive(Debug, Clone)]
pub struct InjectTiming {
    /// Maximum instructions in a straight-line run before an extra check is
    /// inserted.
    pub max_run: usize,
}

impl Default for InjectTiming {
    fn default() -> InjectTiming {
        InjectTiming { max_run: 48 }
    }
}

impl Pass for InjectTiming {
    fn name(&self) -> &'static str {
        "inject-timing"
    }

    fn run(&mut self, m: &mut Module) -> PassStats {
        let mut stats = PassStats::default();
        for f in &mut m.funcs {
            let cfg = Cfg::build(f);
            let dom = Dominators::compute(&cfg);
            let loops = LoopForest::find(&cfg, &dom);
            let mut check_blocks: Vec<usize> = vec![0]; // function entry
            for l in &loops.loops {
                check_blocks.push(l.header.index());
            }
            check_blocks.sort_unstable();
            check_blocks.dedup();

            for (bi, b) in f.blocks.iter_mut().enumerate() {
                let mut out = Vec::with_capacity(b.insts.len() + 2);
                if check_blocks.contains(&bi) {
                    out.push(Inst::Intr(None, Intrinsic::TimeCheck, vec![]));
                    stats.bump("checks_inserted", 1);
                }
                let mut run = 0usize;
                for inst in b.insts.drain(..) {
                    // A call transfers to a function whose entry checks, so
                    // it resets the straight-line run.
                    let resets = matches!(
                        inst,
                        Inst::Call(_, _, _) | Inst::Intr(_, Intrinsic::TimeCheck, _)
                    );
                    out.push(inst);
                    run = if resets { 0 } else { run + 1 };
                    if run >= self.max_run {
                        out.push(Inst::Intr(None, Intrinsic::TimeCheck, vec![]));
                        stats.bump("checks_inserted", 1);
                        run = 0;
                    }
                }
                b.insts = out;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interweave_ir::interp::{HookAction, Interp, InterpConfig, Memory, RuntimeHooks};
    use interweave_ir::programs;
    use interweave_ir::types::Val;
    use interweave_ir::verify::assert_valid;

    /// Hooks that record the cycle gap between consecutive time checks.
    #[derive(Default)]
    struct GapRecorder {
        last: Option<u64>,
        max_gap: u64,
        checks: u64,
    }

    impl RuntimeHooks for GapRecorder {
        fn intrinsic(
            &mut self,
            which: Intrinsic,
            _args: &[Val],
            _mem: &mut Memory,
            now: u64,
        ) -> HookAction {
            if which == Intrinsic::TimeCheck {
                if let Some(l) = self.last {
                    self.max_gap = self.max_gap.max(now - l);
                }
                self.last = Some(now);
                self.checks += 1;
            }
            HookAction::Continue {
                value: None,
                cycles: if which == Intrinsic::TimeCheck { 2 } else { 0 },
            }
        }
    }

    #[test]
    fn inserts_checks_at_entries_and_loop_headers() {
        let p = programs::stream_triad(16);
        let mut m = p.module.clone();
        let stats = InjectTiming::default().run(&mut m);
        assert_valid(&m);
        // Entry + 3 loop headers at minimum.
        assert!(stats.get("checks_inserted") >= 4);
    }

    #[test]
    fn placement_bound_holds_across_the_suite() {
        // §IV-C's key property: checks execute at a bounded dynamic
        // interval on every path. With max_run=48 and instruction costs of
        // 1–3 cycles (+30 for allocs), a gap beyond ~400 cycles would mean
        // a check-free path escaped the policy.
        for prog in programs::suite(1) {
            let mut m = prog.module.clone();
            InjectTiming::default().run(&mut m);
            assert_valid(&m);
            let mut rec = GapRecorder::default();
            let mut it = Interp::new(InterpConfig::default());
            it.start(&m, prog.entry, &prog.args);
            it.run_to_completion(&m, &mut rec);
            assert!(rec.checks > 0, "{}: no checks executed", prog.name);
            assert!(
                rec.max_gap <= 400,
                "{}: max check gap {} cycles",
                prog.name,
                rec.max_gap
            );
        }
    }

    #[test]
    fn recursion_is_checked_via_function_entries() {
        let prog = programs::fib(14);
        let mut m = prog.module.clone();
        InjectTiming::default().run(&mut m);
        let mut rec = GapRecorder::default();
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, prog.entry, &prog.args);
        it.run_to_completion(&m, &mut rec);
        // fib(14) makes ~1200 calls; every call checks.
        assert!(rec.checks > 1000);
        assert!(rec.max_gap <= 100, "max gap {}", rec.max_gap);
    }

    #[test]
    fn long_straight_line_blocks_get_mid_block_checks() {
        use interweave_ir::{BinOp, FunctionBuilder};
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("straight", 1);
        let mut v = fb.param(0);
        let one = fb.const_i(1);
        for _ in 0..200 {
            v = fb.bin(BinOp::Add, v, one);
        }
        fb.ret(Some(v));
        m.add(fb.finish());
        let stats = InjectTiming { max_run: 48 }.run(&mut m);
        // Entry check + ~4 mid-block checks.
        assert!(stats.get("checks_inserted") >= 4);
    }

    #[test]
    fn transformation_preserves_results() {
        use interweave_ir::interp::NullHooks;
        for prog in programs::suite(1) {
            let mut base = Interp::new(InterpConfig::default());
            base.start(&prog.module, prog.entry, &prog.args);
            let expected = base.run_to_completion(&prog.module, &mut NullHooks);

            let mut m = prog.module.clone();
            InjectTiming::default().run(&mut m);
            let mut it = Interp::new(InterpConfig::default());
            it.start(&m, prog.entry, &prog.args);
            let got = it.run_to_completion(&m, &mut GapRecorder::default());
            assert_eq!(got, expected, "{}", prog.name);
        }
    }
}
