//! # interweave-fibers
//!
//! Compiler-based timing for fine-grain preemptive parallelism (§IV-C of
//! the paper; Ghosh et al., SC 2020).
//!
//! The conventional stack derives preemption from a hardware timer
//! interrupt: ~1000 cycles of dispatch, a full-frame save, and an `iretq`
//! per switch. Compiler-based timing replaces the interrupt with *injected
//! time checks*: the whole codebase is transformed so that, on every
//! execution path, a cheap check executes at a bounded dynamic interval;
//! when the check notices the quantum has elapsed it calls `yield()`.
//! Threads become *fibers* — switched at call sites where the compiler
//! knows most state is dead — and preemption granularity drops below 600
//! cycles on KNL (Fig. 4).
//!
//! - [`timing_pass`]: the injection pass (loop headers, function entries,
//!   long straight-line runs) with its placement-bound guarantee.
//! - [`runtime`]: a single-CPU fiber runtime multiplexing interpreted
//!   programs under either preemption mechanism, measuring slice lengths
//!   and overheads.
//! - [`study`]: the Fig. 4 experiment — switch-cost decomposition rows plus
//!   measured granularity floors.
//! - [`rt`]: the real-time corner of the figure — EDF-scheduled periodic
//!   fibers executing real programs under admission control.

#![warn(missing_docs)]

pub mod rt;
pub mod runtime;
pub mod study;
pub mod timing_pass;

pub use runtime::{run_fibers, FiberReport, PreemptMode};
pub use timing_pass::InjectTiming;
