//! The Fig. 4 study: switch-cost decomposition and granularity floors.
//!
//! Combines the analytic switch-cost rows (from the kernel crate's cost
//! composition) with *measured* runtime behaviour: a sweep over preemption
//! quanta finds the smallest quantum at which mechanism overhead stays
//! under 50 % — the "granularity floor" §IV-C reports as <600 cycles for
//! compiler-timed fibers on KNL, against >4× coarser for the commodity
//! Linux thread design.

use crate::runtime::{run_fibers, PreemptMode};
use interweave_core::machine::MachineConfig;
use interweave_core::stack::OsPoint;
use interweave_ir::programs::{self, Program};
use interweave_kernel::threads::{
    fig4_rows, granularity_floor, switch_cost, SwitchBreakdown, SwitchKind,
};

/// One analytic row of Fig. 4.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Configuration label (as in the figure).
    pub label: String,
    /// Uses FP state.
    pub fp: bool,
    /// Cost decomposition.
    pub breakdown: SwitchBreakdown,
}

/// The analytic half of the figure.
pub fn analytic_rows(mc: &MachineConfig) -> Vec<Fig4Row> {
    fig4_rows(mc)
        .into_iter()
        .map(|(label, fp, breakdown)| Fig4Row {
            label,
            fp,
            breakdown,
        })
        .collect()
}

/// Measured overhead for one (mode, quantum) point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Preemption mechanism.
    pub mode: PreemptMode,
    /// Quantum in cycles.
    pub quantum: u64,
    /// Mechanism overhead fraction (switches + checks over total).
    pub overhead: f64,
    /// Switches performed.
    pub switches: u64,
}

fn sweep_workload() -> Vec<Program> {
    vec![
        programs::stream_triad(32),
        programs::matvec(8),
        programs::fib(12),
        programs::histogram(128, 16),
    ]
}

/// Sweep quanta for both mechanisms.
pub fn overhead_sweep(mc: &MachineConfig, quanta: &[u64]) -> Vec<SweepPoint> {
    let w = sweep_workload();
    let mut out = Vec::new();
    for &q in quanta {
        for mode in [PreemptMode::CompilerTimed, PreemptMode::HardwareTimer] {
            let r = run_fibers(&w, q, mc, mode);
            out.push(SweepPoint {
                mode,
                quantum: q,
                overhead: r.overhead_fraction(),
                switches: r.switches,
            });
        }
    }
    out
}

/// The analytic granularity floor (quantum where switch overhead = 50 %)
/// for a mechanism, per §IV-C's definition.
pub fn floor_cycles(mc: &MachineConfig, kind: SwitchKind, os: OsPoint, fp: bool) -> u64 {
    granularity_floor(switch_cost(mc, os, kind, false, fp).total()).get()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knl() -> MachineConfig {
        MachineConfig::phi_knl()
    }

    #[test]
    fn comptime_floor_under_600_and_4x_better_than_linux() {
        // The two headline callouts of Fig. 4.
        let fiber_nofp = floor_cycles(
            &knl(),
            SwitchKind::FiberCompilerTimed,
            OsPoint::NkLike,
            false,
        );
        assert!(fiber_nofp < 600, "floor {fiber_nofp}");
        let linux_fp = floor_cycles(
            &knl(),
            SwitchKind::ThreadInterrupt,
            OsPoint::LinuxLike,
            true,
        );
        let fiber_fp = floor_cycles(
            &knl(),
            SwitchKind::FiberCompilerTimed,
            OsPoint::NkLike,
            true,
        );
        let ratio = linux_fp as f64 / fiber_fp as f64;
        assert!(
            ratio > 3.0,
            "granularity ratio linux/fiber = {ratio:.1} ({linux_fp} vs {fiber_fp})"
        );
    }

    #[test]
    fn sweep_shows_crossover_structure() {
        // At fine quanta compiler timing wins decisively; at coarse quanta
        // both mechanisms' overheads converge toward zero.
        let pts = overhead_sweep(&knl(), &[2_000, 200_000]);
        let get = |q, m| {
            pts.iter()
                .find(|p| p.quantum == q && p.mode == m)
                .unwrap()
                .overhead
        };
        let fine_ct = get(2_000, PreemptMode::CompilerTimed);
        let fine_hw = get(2_000, PreemptMode::HardwareTimer);
        assert!(
            fine_ct < fine_hw,
            "fine: ct {fine_ct:.3} vs hw {fine_hw:.3}"
        );
        let coarse_ct = get(200_000, PreemptMode::CompilerTimed);
        let coarse_hw = get(200_000, PreemptMode::HardwareTimer);
        assert!(coarse_ct < 0.2 && coarse_hw < 0.2);
    }

    #[test]
    fn analytic_rows_are_complete_and_ordered() {
        let rows = analytic_rows(&knl());
        assert_eq!(rows.len(), 16);
        let find = |label: &str| {
            rows.iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("missing row {label}"))
                .breakdown
                .total()
        };
        // Ordering of the figure: Linux threads > Aster threads > NK
        // threads > fibers — the OS axis left to right.
        assert!(find("Linux threads (non-RT, FP)") > find("Aster threads (non-RT, FP)"));
        assert!(find("Aster threads (non-RT, FP)") > find("Threads (non-RT, FP)"));
        assert!(find("Threads (non-RT, FP)") > find("Fibers-CompTime (FP)"));
        assert!(find("Fibers-CompTime (no-FP)") < find("Fibers-CompTime (FP)"));
    }
}
