//! Contract test for the scoreboard file: the `BenchSummary` schema the
//! `summary` binary writes to `BENCH_summary.json` must be parseable JSON,
//! and every experiment's embedded [`StackConfig`] must deserialize back
//! to exactly the composition that was serialized — bookkeeping scripts
//! key on it.

use interweave_bench::harness::{
    BenchSummary, ExperimentSummary, FaultBreakdownEntry, MetricsWindow, PrimitiveEntry,
};
use interweave_core::stack::StackConfig;
use interweave_core::FaultClass;
use serde::Deserialize;

fn scoreboard() -> (BenchSummary, Vec<StackConfig>) {
    let stacks = vec![
        StackConfig::commodity(),
        StackConfig::nautilus(),
        StackConfig::rtk(),
        StackConfig::pik(),
        StackConfig::cck(),
        StackConfig::interwoven(),
    ];
    let experiments = stacks
        .iter()
        .enumerate()
        .map(|(i, &stack)| ExperimentSummary {
            experiment: format!("exp-{i}"),
            claim: "stays standing".into(),
            stack,
            os: stack.os.name().to_string(),
            measured: "1.0x".into(),
            wall_ms: 0.25,
            shards: i + 1,
        })
        .collect();
    let fault_breakdown = FaultClass::ALL
        .iter()
        .enumerate()
        .map(|(i, &class)| FaultBreakdownEntry {
            class: class.name().to_string(),
            injected: 10 * (i as u64 + 1),
            recovered: 7 * (i as u64 + 1),
            shed: 2 * (i as u64 + 1),
            absorbed: i as u64 + 1,
        })
        .collect();
    let serve_timeseries = (0..3)
        .map(|i| MetricsWindow {
            window: i,
            start_cycles: i * 1_000,
            offered: 10 + i,
            completed: 8 + i,
            shed: 2,
            queue_depth_max: 4,
            p50_us: 15.0 + i as f64,
            p99_us: 120.0 + i as f64,
        })
        .collect();
    (
        BenchSummary {
            total_wall_ms: 1.5,
            experiments,
            counters: Vec::new(),
            fault_breakdown,
            serve_timeseries,
            primitives: vec![PrimitiveEntry {
                name: "thread create".into(),
                linux_cycles: 42_000,
                aster_cycles: 3_200,
                nautilus_cycles: 900,
            }],
        },
        stacks,
    )
}

#[test]
fn embedded_stack_configs_round_trip_through_the_summary_file() {
    let (summary, stacks) = scoreboard();
    // The same serialization path the summary binary uses for the file.
    let json = serde_json::to_string_pretty(&summary).expect("serializable summary");
    let doc = serde::json::parse(&json).expect("the file is valid JSON");
    let experiments = match doc.get("experiments") {
        Some(serde::json::JsonValue::Arr(a)) => a,
        other => panic!("experiments must be an array, got {other:?}"),
    };
    assert_eq!(experiments.len(), stacks.len());
    for (exp, want) in experiments.iter().zip(&stacks) {
        let embedded = exp.get("stack").expect("every experiment embeds its stack");
        let got = StackConfig::deserialize_json(embedded).expect("stack parses back");
        assert_eq!(&got, want, "embedded composition must round-trip exactly");
    }
}

#[test]
fn summary_file_keeps_its_bookkeeping_fields() {
    let (summary, _) = scoreboard();
    let json = serde_json::to_string_pretty(&summary).expect("serializable summary");
    let doc = serde::json::parse(&json).expect("valid JSON");
    assert!(doc.get("total_wall_ms").is_some());
    assert!(doc.get("counters").is_some());
    assert!(doc.get("fault_breakdown").is_some());
    let exp = match doc.get("experiments") {
        Some(serde::json::JsonValue::Arr(a)) => &a[0],
        other => panic!("experiments must be an array, got {other:?}"),
    };
    for field in [
        "experiment",
        "claim",
        "stack",
        "os",
        "measured",
        "wall_ms",
        "shards",
    ] {
        assert!(exp.get(field).is_some(), "missing field {field}");
    }
}

#[test]
fn experiment_os_field_matches_the_embedded_stack() {
    let (summary, stacks) = scoreboard();
    let json = serde_json::to_string_pretty(&summary).expect("serializable summary");
    let doc = serde::json::parse(&json).expect("valid JSON");
    let experiments = match doc.get("experiments") {
        Some(serde::json::JsonValue::Arr(a)) => a,
        other => panic!("experiments must be an array, got {other:?}"),
    };
    for (exp, want) in experiments.iter().zip(&stacks) {
        match exp.get("os") {
            Some(serde::json::JsonValue::Str(s)) => assert_eq!(s, want.os.name()),
            other => panic!("os must be a string, got {other:?}"),
        }
    }
}

#[test]
fn primitive_table_round_trips_all_three_os_columns() {
    let (summary, _) = scoreboard();
    let json = serde_json::to_string_pretty(&summary).expect("serializable summary");
    let doc = serde::json::parse(&json).expect("valid JSON");
    let rows = match doc.get("primitives") {
        Some(serde::json::JsonValue::Arr(a)) => a,
        other => panic!("primitives must be an array, got {other:?}"),
    };
    assert_eq!(rows.len(), summary.primitives.len());
    let num = |row: &serde::json::JsonValue, field: &str| -> u64 {
        match row.get(field) {
            Some(serde::json::JsonValue::Num(n)) => n.parse().expect("integral cycles"),
            other => panic!("{field} must be a number, got {other:?}"),
        }
    };
    for (row, want) in rows.iter().zip(&summary.primitives) {
        match row.get("name") {
            Some(serde::json::JsonValue::Str(s)) => assert_eq!(s, &want.name),
            other => panic!("name must be a string, got {other:?}"),
        }
        assert_eq!(num(row, "linux_cycles"), want.linux_cycles);
        assert_eq!(num(row, "aster_cycles"), want.aster_cycles);
        assert_eq!(num(row, "nautilus_cycles"), want.nautilus_cycles);
    }
}

#[test]
fn shard_counts_round_trip_through_the_summary_file() {
    let (summary, stacks) = scoreboard();
    let json = serde_json::to_string_pretty(&summary).expect("serializable summary");
    let doc = serde::json::parse(&json).expect("valid JSON");
    let experiments = match doc.get("experiments") {
        Some(serde::json::JsonValue::Arr(a)) => a,
        other => panic!("experiments must be an array, got {other:?}"),
    };
    // Each record reports the true shard count its section ran with.
    for (i, exp) in experiments.iter().enumerate() {
        let got: usize = match exp.get("shards") {
            Some(serde::json::JsonValue::Num(n)) => n.parse().expect("integral shard count"),
            other => panic!("shards must be a number, got {other:?}"),
        };
        assert_eq!(got, i + 1, "shard count must round-trip exactly");
    }
    assert_eq!(experiments.len(), stacks.len());
}

#[test]
fn serve_timeseries_round_trips_window_by_window() {
    let (summary, _) = scoreboard();
    let json = serde_json::to_string_pretty(&summary).expect("serializable summary");
    let doc = serde::json::parse(&json).expect("valid JSON");
    let rows = match doc.get("serve_timeseries") {
        Some(serde::json::JsonValue::Arr(a)) => a,
        other => panic!("serve_timeseries must be an array, got {other:?}"),
    };
    assert_eq!(rows.len(), summary.serve_timeseries.len());
    for (row, want) in rows.iter().zip(&summary.serve_timeseries) {
        let num = |field: &str| -> u64 {
            match row.get(field) {
                Some(serde::json::JsonValue::Num(n)) => n.parse().expect("integral count"),
                other => panic!("{field} must be a number, got {other:?}"),
            }
        };
        assert_eq!(num("window"), want.window);
        assert_eq!(num("start_cycles"), want.start_cycles);
        assert_eq!(num("offered"), want.offered);
        assert_eq!(num("completed"), want.completed);
        assert_eq!(num("shed"), want.shed);
        assert_eq!(num("queue_depth_max"), want.queue_depth_max);
        assert!(row.get("p50_us").is_some() && row.get("p99_us").is_some());
    }
}

#[test]
fn fault_breakdown_round_trips_per_class_and_balances() {
    let (summary, _) = scoreboard();
    let json = serde_json::to_string_pretty(&summary).expect("serializable summary");
    let doc = serde::json::parse(&json).expect("valid JSON");
    let rows = match doc.get("fault_breakdown") {
        Some(serde::json::JsonValue::Arr(a)) => a,
        other => panic!("fault_breakdown must be an array, got {other:?}"),
    };
    assert_eq!(rows.len(), FaultClass::ALL.len());
    let num = |row: &serde::json::JsonValue, field: &str| -> u64 {
        match row.get(field) {
            Some(serde::json::JsonValue::Num(n)) => n.parse().expect("integral count"),
            other => panic!("{field} must be a number, got {other:?}"),
        }
    };
    for (row, &class) in rows.iter().zip(FaultClass::ALL.iter()) {
        match row.get("class") {
            Some(serde::json::JsonValue::Str(s)) => assert_eq!(s, class.name()),
            other => panic!("class must be a string, got {other:?}"),
        }
        let (injected, recovered) = (num(row, "injected"), num(row, "recovered"));
        let (shed, absorbed) = (num(row, "shed"), num(row, "absorbed"));
        // The robustness invariant the file exists to expose: no fault
        // vanishes unaccounted.
        assert_eq!(injected, recovered + shed + absorbed, "ledger must balance");
    }
}
