//! The counter registry is a faithful witness of the fault campaign: each
//! `tab_faults` segment, replayed here with a telemetry sink attached,
//! must land exactly the counts the campaign's own statistics report —
//! injections, watchdog re-kicks, shed tasks, quarantines, and virtine
//! restarts. Plus: the Perfetto trace export must be parseable JSON with
//! the documented event shape.

use interweave_carat::defrag::fragmentation_demo;
use interweave_carat::pik::PikSystem;
use interweave_carat::quarantine_and_relocate;
use interweave_core::machine::MachineConfig;
use interweave_core::telemetry::{chrome_trace_json, Level, Sink};
use interweave_core::time::Cycles;
use interweave_core::{FaultClass, FaultConfig, FaultPlan};
use interweave_ir::interp::ExecStatus;
use interweave_ir::types::Val;
use interweave_kernel::work::LoopWork;
use interweave_kernel::{Executor, NumaAllocator};
use interweave_virtines::extract::extract_one;
use interweave_virtines::wasp::Wasp;

/// Same seed as `tab_faults`: the replayed segments see the identical
/// injection stream, so the registry must reproduce the table's counts.
const SEED: u64 = 0xFA017;

/// The IPI segment: lost/late kicks, watchdog rescues. The registry's
/// watchdog and fault counters must equal the executor's statistics.
#[test]
fn ipi_campaign_counters_match_stats() {
    let mc = MachineConfig::xeon_server_2s();
    let mut e = Executor::new(mc, Cycles(10_000));
    let sink = Sink::on(Level::Counters);
    e.set_telemetry(sink.clone());
    e.set_fault_plan(FaultPlan::new(FaultConfig {
        drop_ipi: 0.25,
        delay_ipi: 0.25,
        ..FaultConfig::quiet(SEED)
    }));
    e.enable_watchdog(Cycles(5_000));
    for cpu in 0..8 {
        for _ in 0..3 {
            e.spawn(cpu, Box::new(LoopWork::new(50, Cycles(400))));
        }
    }
    assert!(e.run(), "watchdog must rescue every lost kick");
    let plan = e.take_fault_plan().expect("plan installed above");

    assert!(e.stats.recovered_stalls > 0, "campaign must stall");
    assert_eq!(
        sink.counter("kernel.watchdog.rekicks"),
        e.stats.watchdog_rekicks
    );
    assert_eq!(
        sink.counter("core.fault.lost_ipi"),
        plan.injected(FaultClass::LostIpi)
    );
    assert_eq!(
        sink.counter("core.fault.delayed_ipi"),
        plan.injected(FaultClass::DelayedIpi)
    );
    // Delivery-fabric outcomes partition the kick stream.
    assert_eq!(
        sink.counter("core.irq.dropped"),
        plan.injected(FaultClass::LostIpi)
    );
    assert_eq!(
        sink.counter("core.irq.delayed"),
        plan.injected(FaultClass::DelayedIpi)
    );
    assert_eq!(
        sink.counter("kernel.sched.preemptions"),
        e.stats.preemptions
    );
}

/// The OOM segment: injected allocation failures shed tasks. The shed
/// counter, the buddy OOM counter, and the injection counter agree.
#[test]
fn alloc_campaign_counters_match_stats() {
    let mc = MachineConfig::xeon_server_2s();
    let mut e = Executor::new(mc.clone(), Cycles(10_000));
    let sink = Sink::on(Level::Counters);
    e.set_telemetry(sink.clone());
    e.set_stack_allocator(NumaAllocator::new(mc.sockets, 14, 4));
    e.set_fault_plan(FaultPlan::new(FaultConfig {
        alloc_fail: 0.25,
        ..FaultConfig::quiet(SEED)
    }));
    let mut shed = 0u64;
    for i in 0..24 {
        if e.try_spawn(i % mc.cores, Box::new(LoopWork::new(20, Cycles(500))))
            .is_err()
        {
            shed += 1;
        }
    }
    assert!(e.run(), "surviving tasks must complete after shedding");
    let plan = e.take_fault_plan().expect("plan installed above");

    assert!(shed > 0, "campaign must shed");
    assert_eq!(sink.counter("kernel.sched.shed_tasks"), shed);
    assert_eq!(sink.counter("kernel.sched.shed_tasks"), e.stats.shed_tasks);
    assert_eq!(
        sink.counter("core.fault.alloc_fail"),
        plan.injected(FaultClass::AllocFail)
    );
    // Capacity covers every spawn the fault plane lets through, so each
    // buddy OOM is an injected one.
    assert_eq!(sink.counter("kernel.buddy.oom"), shed);
}

/// The bit-flip segment: a CARAT audit catches the corruption and
/// quarantine-and-relocate heals it; the registry reports both.
#[test]
fn carat_campaign_counters_match_report() {
    let (m, entry) = fragmentation_demo("list");
    let mut sys = PikSystem::new();
    let (m, att) = sys.compile(m);
    let pid = sys
        .admit(m, att, entry, vec![Val::I(64)])
        .expect("attested module admits");
    loop {
        match sys.processes[pid].run_slice(100_000) {
            ExecStatus::Yielded => break,
            ExecStatus::OutOfFuel => continue,
            other => panic!("unexpected status before quiesce: {other:?}"),
        }
    }
    let sink = Sink::on(Level::Counters);
    let p = &mut sys.processes[pid];
    let holders = p.runtime.escape_holders();
    let mut plan = FaultPlan::new(FaultConfig {
        bit_flip: 1.0,
        ..FaultConfig::quiet(SEED)
    });
    plan.set_sink(sink.clone());
    let (site, bit) = plan
        .flip_spec(holders.len() as u64)
        .expect("p=1.0 must fire");
    p.interp
        .mem
        .flip_bit(holders[site as usize], bit)
        .expect("escape holders are integer words");

    let corruptions = p.runtime.audit_escapes(&p.interp.mem);
    assert_eq!(corruptions.len(), 1, "exactly the flipped word");
    let report = quarantine_and_relocate(&mut p.interp, &mut p.runtime, &corruptions);
    assert_eq!(report.repaired_words, 1);
    p.runtime.publish_telemetry(&sink);

    assert_eq!(
        sink.counter("core.fault.bit_flip"),
        plan.injected(FaultClass::BitFlip)
    );
    assert_eq!(sink.counter("carat.corruptions"), 1);
    // One corrupted frame → one quarantined region held out of reuse.
    assert_eq!(sink.counter("carat.quarantined"), 1);
    assert!(report.quarantined_bytes > 0);
    assert_eq!(sink.counter("carat.audits"), p.runtime.stats.audits);
}

/// The virtine segment: kills mid-call, snapshot restarts. The registry's
/// restart/detection counters equal the pool statistics exactly.
#[test]
fn virtine_campaign_counters_match_stats() {
    let mc = MachineConfig::xeon_server_2s();
    let fibp = interweave_ir::programs::fib(18);
    let image = extract_one(&fibp.module, fibp.entry);
    let mut probe = interweave_virtines::context::Virtine::new(image.clone());
    probe.invoke(&fibp.args, u64::MAX / 4);
    let budget = probe.guest_cycles + probe.guest_cycles / 3;

    let sink = Sink::on(Level::Counters);
    let mut faults = FaultPlan::new(FaultConfig {
        virtine_kill: 0.5,
        ..FaultConfig::quiet(SEED)
    });
    faults.set_sink(sink.clone());
    let mut w = Wasp::new(image, mc);
    w.set_telemetry(sink.clone());
    let mut restarts = 0u64;
    for _ in 0..20 {
        let (outcome, _, r) = w.invoke_recovering(&fibp.args, budget, &mut faults, 16);
        assert!(matches!(
            outcome,
            interweave_virtines::context::VirtineOutcome::Returned(_)
        ));
        restarts += r as u64;
    }

    assert!(restarts > 0, "p=0.5 kills over 20 requests must land");
    assert_eq!(sink.counter("virtines.restarts"), restarts);
    assert_eq!(sink.counter("virtines.restarts"), w.stats.restarts);
    assert_eq!(
        sink.counter("virtines.faults_detected"),
        w.stats.faults_detected
    );
    assert_eq!(
        sink.counter("core.fault.virtine_kill"),
        faults.injected(FaultClass::VirtineKill)
    );
    assert_eq!(sink.counter("virtines.invocations"), w.stats.invocations);
}

/// The Chrome/Perfetto export parses as JSON and every event carries the
/// documented shape: `ph:"M"` process-name metadata first, then `ph:"X"`
/// duration events with numeric ts/dur/pid/tid.
#[test]
fn chrome_trace_export_parses_and_validates() {
    use serde::json::{parse, JsonValue};

    let mc = MachineConfig::xeon_server_2s().with_cores(4);
    let mut e = Executor::new(mc, Cycles(10_000));
    let sink = Sink::on(Level::Full);
    e.set_telemetry(sink.clone());
    for cpu in 0..4 {
        e.spawn(cpu, Box::new(LoopWork::new(10, Cycles(4_000))));
    }
    assert!(e.run());
    let spans = sink.spans();
    assert!(!spans.is_empty());

    let doc = parse(&chrome_trace_json(&spans, 2_100)).expect("export must be valid JSON");
    let events = match &doc {
        JsonValue::Arr(events) => events,
        other => panic!("trace document must be an array, got {other:?}"),
    };
    let mut metadata = 0usize;
    let mut durations = 0usize;
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("every event has a ph");
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .expect("every event has a name");
        assert!(!name.is_empty());
        for field in ["pid", "tid"] {
            assert!(
                matches!(ev.get(field), Some(JsonValue::Num(_))),
                "{field} must be numeric"
            );
        }
        match ph {
            "M" => {
                assert_eq!(name, "process_name");
                let label = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
                    .expect("metadata names its process");
                assert!(!label.is_empty());
                metadata += 1;
            }
            "X" => {
                for field in ["ts", "dur"] {
                    assert!(
                        matches!(ev.get(field), Some(JsonValue::Num(_))),
                        "{field} must be numeric"
                    );
                }
                assert!(ev.get("cat").and_then(|v| v.as_str()).is_some());
                durations += 1;
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert_eq!(durations, spans.len(), "one duration event per span");
    assert!(metadata >= 1, "at least one process-name track");
}
