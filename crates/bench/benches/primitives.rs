//! Criterion microbenchmarks for the hot substrate primitives: the event
//! queue, the work-stealing deque, the buddy allocator, one coherence-
//! protocol step, and the IR interpreter.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    use interweave_core::{Cycles, EventQueue};
    c.bench_function("event_queue push+pop 1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(Cycles(i * 7 % 997), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum)
        })
    });
}

fn bench_deque(c: &mut Criterion) {
    use interweave_heartbeat::deque::WorkDeque;
    c.bench_function("work_deque mixed 1k", |b| {
        b.iter(|| {
            let mut d = WorkDeque::new();
            for i in 0..1000 {
                d.push(i);
                if i % 3 == 0 {
                    black_box(d.steal());
                }
                if i % 5 == 0 {
                    black_box(d.pop());
                }
            }
            while d.pop().is_some() {}
            black_box(d.pushed)
        })
    });
}

fn bench_buddy(c: &mut Criterion) {
    use interweave_kernel::buddy::BuddyZone;
    c.bench_function("buddy alloc/free 256", |b| {
        b.iter(|| {
            let mut z = BuddyZone::new(0, 6, 14);
            let addrs: Vec<u64> = (0..256)
                .map(|i| z.alloc(64 * (1 + i % 4)).unwrap())
                .collect();
            for a in addrs {
                z.free(a).unwrap();
            }
            black_box(z.fully_coalesced())
        })
    });
}

fn bench_mesi_step(c: &mut Criterion) {
    use interweave_coherence::protocol::{CohMode, System, SystemConfig};
    c.bench_function("mesi read/write 1k accesses", |b| {
        b.iter(|| {
            let mut s = System::new(SystemConfig::test(4, CohMode::Full));
            let mut lat = 0u64;
            for i in 0..1000u64 {
                let core = (i % 4) as usize;
                if i % 3 == 0 {
                    lat += s.write(core, i % 64);
                } else {
                    lat += s.read(core, i % 64);
                }
            }
            black_box(lat)
        })
    });
}

fn bench_interp(c: &mut Criterion) {
    use interweave_ir::interp::{Interp, InterpConfig, NullHooks};
    use interweave_ir::programs;
    let p = programs::fib(15);
    c.bench_function("interp fib(15)", |b| {
        b.iter(|| {
            let mut it = Interp::new(InterpConfig::default());
            it.start(&p.module, p.entry, &p.args);
            black_box(it.run_to_completion(&p.module, &mut NullHooks))
        })
    });
}

fn bench_text_format(c: &mut Criterion) {
    use interweave_ir::programs;
    use interweave_ir::text::{parse_module, print_module};
    let p = programs::matvec(8);
    let text = print_module(&p.module);
    c.bench_function("text print matvec", |b| {
        b.iter(|| black_box(print_module(&p.module)))
    });
    c.bench_function("text parse matvec", |b| {
        b.iter(|| black_box(parse_module(&text).expect("parses")))
    });
}

fn bench_carat_analyses(c: &mut Criterion) {
    use interweave_carat::coverage::verify_coverage;
    use interweave_carat::instrument;
    use interweave_ir::programs;
    let p = programs::matvec(8);
    let mut m = p.module.clone();
    instrument(&mut m, true);
    c.bench_function("coverage verify matvec", |b| {
        b.iter(|| black_box(verify_coverage(&m)))
    });
}

fn bench_inline(c: &mut Criterion) {
    use interweave_ir::inline::Inline;
    use interweave_ir::passes::Pass;
    use interweave_ir::programs;
    let p = programs::stencil1d(32, 2);
    c.bench_function("inline pass stencil", |b| {
        b.iter(|| {
            let mut m = p.module.clone();
            black_box(Inline::default().run(&mut m))
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_deque,
    bench_buddy,
    bench_mesi_step,
    bench_interp,
    bench_text_format,
    bench_carat_analyses,
    bench_inline
);
criterion_main!(benches);
