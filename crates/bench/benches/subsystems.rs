//! Criterion benchmarks for whole-subsystem runs (one reduced-scale
//! execution of each experiment) and for the ablations DESIGN.md calls out:
//! the CARAT optimization ladder and the pipeline-interrupt delivery mode.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_heartbeat(c: &mut Criterion) {
    use interweave_core::stack::OsPoint;
    use interweave_core::Cycles;
    use interweave_heartbeat::sim::{run_heartbeat, HeartbeatConfig};
    for (label, os) in [
        ("heartbeat nk 20us 5ms", OsPoint::NkLike),
        ("heartbeat aster 20us 5ms", OsPoint::AsterLike),
        ("heartbeat linux 20us 5ms", OsPoint::LinuxLike),
    ] {
        let mut cfg = HeartbeatConfig::fig3(os, 20.0, Cycles(1000));
        cfg.duration_us = 5_000.0;
        c.bench_function(label, |b| b.iter(|| black_box(run_heartbeat(&cfg))));
    }
}

fn bench_omp(c: &mut Criterion) {
    use interweave_core::machine::MachineConfig;
    use interweave_omp::nas::bt;
    use interweave_omp::sim::run_omp;
    use interweave_omp::OmpMode;
    let mc = MachineConfig::phi_knl();
    let spec = bt();
    c.bench_function("omp bt rtk 32c", |b| {
        b.iter(|| black_box(run_omp(&spec, OmpMode::Rtk, 32, &mc, 42)))
    });
    c.bench_function("omp bt linux 32c", |b| {
        b.iter(|| black_box(run_omp(&spec, OmpMode::LinuxUser, 32, &mc, 42)))
    });
}

fn bench_coherence(c: &mut Criterion) {
    use interweave_coherence::experiment::run_one;
    use interweave_coherence::protocol::CohMode;
    use interweave_coherence::workloads::fig7_mixes;
    let mix = &fig7_mixes()[0];
    c.bench_function("coherence samplesort full 8c", |b| {
        b.iter(|| black_box(run_one(mix, 8, CohMode::Full, 11)))
    });
    c.bench_function("coherence samplesort selective 8c", |b| {
        b.iter(|| black_box(run_one(mix, 8, CohMode::Selective, 11)))
    });
}

fn bench_carat_ladder(c: &mut Criterion) {
    // Ablation: how much wall time the optimization passes themselves take,
    // and the guarded program's execution under each rung.
    use interweave_carat::instrument;
    use interweave_carat::runtime::CaratRuntime;
    use interweave_ir::interp::{Interp, InterpConfig};
    use interweave_ir::programs;
    let p = programs::stream_triad(128);
    c.bench_function("carat transform (inject+hoist+elide)", |b| {
        b.iter(|| {
            let mut m = p.module.clone();
            black_box(instrument(&mut m, true))
        })
    });
    let mut naive = p.module.clone();
    instrument(&mut naive, false);
    let mut opt = p.module.clone();
    instrument(&mut opt, true);
    c.bench_function("carat run naive-guarded", |b| {
        b.iter(|| {
            let mut rt = CaratRuntime::new();
            let mut it = Interp::new(InterpConfig::default());
            it.start(&naive, p.entry, &p.args);
            black_box(it.run_to_completion(&naive, &mut rt))
        })
    });
    c.bench_function("carat run optimized-guarded", |b| {
        b.iter(|| {
            let mut rt = CaratRuntime::new();
            let mut it = Interp::new(InterpConfig::default());
            it.start(&opt, p.entry, &p.args);
            black_box(it.run_to_completion(&opt, &mut rt))
        })
    });
}

fn bench_fibers(c: &mut Criterion) {
    use interweave_core::machine::MachineConfig;
    use interweave_fibers::runtime::{run_fibers, PreemptMode};
    use interweave_ir::programs;
    let w = vec![programs::stream_triad(64), programs::fib(14)];
    let mc = MachineConfig::phi_knl();
    c.bench_function("fibers comp-timed q=5k", |b| {
        b.iter(|| black_box(run_fibers(&w, 5_000, &mc, PreemptMode::CompilerTimed)))
    });
    c.bench_function("fibers hw-timer q=5k", |b| {
        b.iter(|| black_box(run_fibers(&w, 5_000, &mc, PreemptMode::HardwareTimer)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_heartbeat, bench_omp, bench_coherence, bench_carat_ladder, bench_fibers
}
criterion_main!(benches);
