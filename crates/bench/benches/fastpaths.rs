//! Microbenchmarks for the simulation-kernel fast paths, each measured
//! against an inline reimplementation of the seed code it replaced:
//!
//! - event-queue cancellation: tombstoning handles vs. the old
//!   drain-and-rebuild `cancel_where` (10k-event workload);
//! - coherence line lookup: the unified line-state table vs. the old four
//!   parallel per-line maps (100k-access workload);
//! - sweep dispatch: `parallel_map` fan-out over a simulator-shaped
//!   workload on the bounded worker pool;
//! - interpreter core: page-backed memory + clone-free dispatch vs. a
//!   mini seed-layout interpreter (per-word `BTreeMap` memory, linear
//!   allocation bookkeeping, instruction clone per step) on three
//!   workloads — load/store-heavy loop, alloc/free churn, call-heavy fib.
//!
//! The baselines live here (not in the library) so the comparison stays
//! runnable after the seed implementations are gone.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use interweave_core::{Cycles, EventHandle, EventQueue, SplitMix64};
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};

// ---------------------------------------------------------------------------
// Baseline 1: the seed event queue — cancel_where drains and rebuilds.

struct SeedScheduled {
    at: Cycles,
    seq: u64,
    payload: u64,
}

impl PartialEq for SeedScheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for SeedScheduled {}
impl Ord for SeedScheduled {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for SeedScheduled {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

#[derive(Default)]
struct SeedQueue {
    heap: BinaryHeap<SeedScheduled>,
    next_seq: u64,
}

impl SeedQueue {
    fn schedule(&mut self, at: Cycles, payload: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(SeedScheduled { at, seq, payload });
    }

    /// The seed's cancellation: drain the whole heap and rebuild it.
    fn cancel_where(&mut self, mut pred: impl FnMut(&u64) -> bool) -> usize {
        let before = self.heap.len();
        let kept: Vec<SeedScheduled> = self.heap.drain().filter(|s| !pred(&s.payload)).collect();
        self.heap = kept.into();
        before - self.heap.len()
    }

    fn pop(&mut self) -> Option<(Cycles, u64)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }
}

/// The cancellation workload from the acceptance criteria: 10k pending
/// events, of which every tenth is retracted *individually* — the
/// executor's pattern (a timer is cancelled when its task unblocks early,
/// one at a time, identified by which event it is). The seed's only
/// cancellation mechanism was `cancel_where`, so each point-cancel paid a
/// full drain-and-rebuild of the heap.
const QUEUE_EVENTS: u64 = 10_000;

fn queue_cancel_seed(c: &mut Criterion) {
    c.bench_function("queue_cancel/seed_drain_rebuild_10k", |b| {
        b.iter(|| {
            let mut q = SeedQueue::default();
            for i in 0..QUEUE_EVENTS {
                q.schedule(Cycles(1 + i % 977), i);
            }
            for doomed in (0..QUEUE_EVENTS).step_by(10) {
                black_box(q.cancel_where(|p| *p == doomed));
            }
            let mut sum = 0u64;
            while let Some((_, p)) = q.pop() {
                sum = sum.wrapping_add(p);
            }
            black_box(sum)
        })
    });
}

fn queue_cancel_tombstone(c: &mut Criterion) {
    c.bench_function("queue_cancel/tombstone_handles_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut handles: Vec<EventHandle> = Vec::with_capacity(QUEUE_EVENTS as usize);
            for i in 0..QUEUE_EVENTS {
                handles.push(q.schedule_cancellable(Cycles(1 + i % 977), i));
            }
            // Same doomed set, cancelled in O(1) per event via handles.
            for doomed in (0..QUEUE_EVENTS).step_by(10) {
                black_box(q.cancel(handles[doomed as usize]));
            }
            let mut sum = 0u64;
            while let Some((_, p)) = q.pop() {
                sum = sum.wrapping_add(p);
            }
            black_box(sum)
        })
    });
}

fn queue_schedule_pop(c: &mut Criterion) {
    // The no-cancellation path: schedule/pop churn must not regress from
    // the tombstone machinery.
    c.bench_function("queue_churn/schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut sum = 0u64;
            for i in 0..QUEUE_EVENTS {
                q.schedule_in(Cycles(1 + i % 977), i);
                if i % 2 == 1 {
                    if let Some((_, p)) = q.pop() {
                        sum = sum.wrapping_add(p);
                    }
                }
            }
            while let Some((_, p)) = q.pop() {
                sum = sum.wrapping_add(p);
            }
            black_box(sum)
        })
    });
}

// ---------------------------------------------------------------------------
// Baseline 2: the seed's four parallel per-line maps vs. the unified table.

#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    Uncached,
    Exclusive(usize),
    Sharers(u64),
}

#[derive(Clone, Copy)]
enum Class {
    Private(usize),
    ReadOnly,
    Shared,
}

/// The seed layout: one map per concern, so each access pays four lookups
/// (class, directory, L3, version) plus up to four write-backs.
#[derive(Default)]
struct FourMaps {
    dir: HashMap<u64, Dir>,
    l3: HashMap<u64, u64>,
    latest: HashMap<u64, u64>,
    class: HashMap<u64, Class>,
}

impl FourMaps {
    fn access(&mut self, line: u64, write: bool) -> u64 {
        let class = self.class.get(&line).copied().unwrap_or(Class::Shared);
        let d = self.dir.get(&line).copied().unwrap_or(Dir::Uncached);
        let v = self.latest.get(&line).copied().unwrap_or(0);
        let l3v = self.l3.get(&line).copied();
        let mut score = v ^ l3v.unwrap_or(0);
        match class {
            Class::Private(c) => score ^= c as u64,
            Class::ReadOnly => {}
            Class::Shared => {
                score ^= match d {
                    Dir::Uncached => 0,
                    Dir::Exclusive(c) => 1 + c as u64,
                    Dir::Sharers(m) => m,
                };
            }
        }
        if write {
            self.latest.insert(line, v + 1);
            self.dir.insert(line, Dir::Exclusive((line % 24) as usize));
            self.l3.insert(line, v + 1);
        } else {
            self.dir.insert(
                line,
                Dir::Sharers(match d {
                    Dir::Sharers(m) => m | (1 << (line % 24)),
                    _ => 1 << (line % 24),
                }),
            );
        }
        score
    }
}

/// The unified layout: one record per line, one lookup and one write-back
/// per access.
#[derive(Clone, Copy)]
struct LineState {
    dir: Dir,
    l3: Option<u64>,
    latest: u64,
    class: Option<Class>,
}

impl Default for LineState {
    fn default() -> LineState {
        LineState {
            dir: Dir::Uncached,
            l3: None,
            latest: 0,
            class: None,
        }
    }
}

#[derive(Default)]
struct UnifiedTable {
    lines: HashMap<u64, LineState>,
}

impl UnifiedTable {
    fn access(&mut self, line: u64, write: bool) -> u64 {
        let mut st = self.lines.get(&line).copied().unwrap_or_default();
        let mut score = st.latest ^ st.l3.unwrap_or(0);
        match st.class.unwrap_or(Class::Shared) {
            Class::Private(c) => score ^= c as u64,
            Class::ReadOnly => {}
            Class::Shared => {
                score ^= match st.dir {
                    Dir::Uncached => 0,
                    Dir::Exclusive(c) => 1 + c as u64,
                    Dir::Sharers(m) => m,
                };
            }
        }
        if write {
            st.latest += 1;
            st.dir = Dir::Exclusive((line % 24) as usize);
            st.l3 = Some(st.latest);
        } else {
            st.dir = Dir::Sharers(match st.dir {
                Dir::Sharers(m) => m | (1 << (line % 24)),
                _ => 1 << (line % 24),
            });
        }
        self.lines.insert(line, st);
        score
    }
}

/// 100k accesses over a fig7-sized footprint (~32k lines), 30% writes.
/// The access trace is generated once so the measured loop is table work
/// only; per-iteration tables start from a cloned pre-classified template,
/// as a real run starts from a classified layout.
const LINE_ACCESSES: u64 = 100_000;
const LINE_FOOTPRINT: u64 = 32 * 1024;

fn line_trace() -> Vec<(u64, bool)> {
    let mut rng = SplitMix64::new(7);
    (0..LINE_ACCESSES)
        .map(|_| (rng.below(LINE_FOOTPRINT), rng.chance(0.3)))
        .collect()
}

fn line_class(line: u64) -> Option<Class> {
    match line % 4 {
        0 => Some(Class::ReadOnly),
        1 => Some(Class::Private((line % 24) as usize)),
        _ => None,
    }
}

fn line_table_seed(c: &mut Criterion) {
    let trace = line_trace();
    let mut template = FourMaps::default();
    for line in 0..LINE_FOOTPRINT {
        if let Some(cl) = line_class(line) {
            template.class.insert(line, cl);
        }
    }
    c.bench_function("line_table/seed_four_maps_100k", |b| {
        b.iter(|| {
            let mut t = FourMaps {
                dir: HashMap::new(),
                l3: HashMap::new(),
                latest: HashMap::new(),
                class: template.class.clone(),
            };
            let mut acc = 0u64;
            for &(line, write) in &trace {
                acc = acc.wrapping_add(t.access(line, write));
            }
            black_box(acc)
        })
    });
}

fn line_table_unified(c: &mut Criterion) {
    let trace = line_trace();
    let mut template = UnifiedTable::default();
    template.lines.reserve(LINE_FOOTPRINT as usize);
    for line in 0..LINE_FOOTPRINT {
        if let Some(cl) = line_class(line) {
            template.lines.entry(line).or_default().class = Some(cl);
        }
    }
    c.bench_function("line_table/unified_state_100k", |b| {
        b.iter(|| {
            let mut t = UnifiedTable {
                lines: template.lines.clone(),
            };
            t.lines.reserve(LINE_FOOTPRINT as usize);
            let mut acc = 0u64;
            for &(line, write) in &trace {
                acc = acc.wrapping_add(t.access(line, write));
            }
            black_box(acc)
        })
    });
}

fn coherence_end_to_end(c: &mut Criterion) {
    use interweave_coherence::protocol::{CohMode, System, SystemConfig};
    // The real protocol engine (now on the unified table) under a shared
    // read/write mix — tracks the end-to-end effect of the refactor.
    c.bench_function("line_table/protocol_shared_mix", |b| {
        b.iter(|| {
            let mut s = System::new(SystemConfig::test(8, CohMode::Full));
            s.reserve_lines(4096);
            let mut rng = SplitMix64::new(11);
            let mut cycles = 0u64;
            for _ in 0..20_000 {
                let core = rng.below(8) as usize;
                let line = rng.below(4096);
                if rng.chance(0.3) {
                    cycles += s.write(core, line);
                } else {
                    cycles += s.read(core, line);
                }
            }
            black_box(cycles)
        })
    });
}

// ---------------------------------------------------------------------------
// Sweep dispatch: the bounded worker pool.

fn sweep_dispatch(c: &mut Criterion) {
    c.bench_function("sweep/parallel_map_200pt", |b| {
        b.iter(|| {
            // A 200-point sweep of small deterministic simulations: enough
            // work per point that dispatch overhead is visible but not
            // dominant, like the figure binaries' sweeps.
            let points: Vec<u64> = (0..200).collect();
            let out = interweave_bench::parallel_map(points, |p| {
                let mut rng = SplitMix64::new(p);
                let mut acc = 0u64;
                for _ in 0..5_000 {
                    acc = acc.wrapping_add(rng.next_u64());
                }
                acc
            });
            black_box(out)
        })
    });
}

// ---------------------------------------------------------------------------
// Baseline 3: the seed interpreter core, reproduced verbatim — per-word
// `BTreeMap` memory (two tree lookups per access, range-scan `containing`,
// key-collection `free`) and clone-per-step dispatch. It executes the *same*
// `Module`s as the current interpreter, with the same dyn-dispatched hook
// calls and cycle accounting, so the measured delta is exactly the
// page-backed storage, the allocation cache, and the clone-free step.

mod seed_interp {
    use interweave_ir::interp::{AllocId, Allocation, InterpConfig, Trap};
    use interweave_ir::types::{BlockId, FuncId, Reg, Val};
    use interweave_ir::{BinOp, CmpOp, Inst, Intrinsic, Module, Term};
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct MemCell {
        val: Val,
        prov: Option<AllocId>,
    }

    /// The seed `Memory`: one `BTreeMap` entry per stored word.
    #[derive(Debug, Clone)]
    pub struct Memory {
        words: BTreeMap<u64, MemCell>,
        allocs: BTreeMap<u64, Allocation>,
        free: BTreeMap<u64, u64>,
        bump: u64,
        limit: u64,
        next_id: u64,
        pub live_bytes: u64,
    }

    impl Memory {
        pub fn new(cfg: &InterpConfig) -> Memory {
            Memory {
                words: BTreeMap::new(),
                allocs: BTreeMap::new(),
                free: BTreeMap::new(),
                bump: cfg.heap_base,
                limit: cfg.heap_base + cfg.heap_size,
                next_id: 1,
                live_bytes: 0,
            }
        }

        pub fn alloc(&mut self, size: u64) -> Result<Allocation, Trap> {
            let size = size.max(8).div_ceil(8) * 8;
            let slot = self
                .free
                .iter()
                .find(|(_, &sz)| sz >= size)
                .map(|(&b, &sz)| (b, sz));
            let base = if let Some((b, sz)) = slot {
                self.free.remove(&b);
                if sz > size {
                    self.free.insert(b + size, sz - size);
                }
                b
            } else {
                let b = self.bump;
                if b + size > self.limit {
                    return Err(Trap::OutOfMemory);
                }
                self.bump += size;
                b
            };
            let a = Allocation {
                id: AllocId(self.next_id),
                base,
                size,
            };
            self.next_id += 1;
            self.allocs.insert(base, a);
            self.live_bytes += size;
            Ok(a)
        }

        pub fn free(&mut self, addr: u64) -> Result<Allocation, Trap> {
            let a = self.allocs.remove(&addr).ok_or(Trap::BadFree { addr })?;
            // The seed's O(live words) key collection before removal.
            let keys: Vec<u64> = self
                .words
                .range(a.base..a.base + a.size)
                .map(|(&k, _)| k)
                .collect();
            for k in keys {
                self.words.remove(&k);
            }
            self.free.insert(a.base, a.size);
            self.coalesce_around(a.base);
            self.live_bytes -= a.size;
            Ok(a)
        }

        fn coalesce_around(&mut self, base: u64) {
            if let Some(&size) = self.free.get(&base) {
                if let Some((&nb, &nsz)) = self.free.range(base + size..).next() {
                    if nb == base + size {
                        self.free.remove(&nb);
                        *self.free.get_mut(&base).expect("present") = size + nsz;
                    }
                }
            }
            if let Some((&pb, &psz)) = self.free.range(..base).next_back() {
                if pb + psz == base {
                    let size = self.free.remove(&base).expect("present");
                    *self.free.get_mut(&pb).expect("present") = psz + size;
                }
            }
        }

        pub fn containing(&self, addr: u64) -> Option<Allocation> {
            self.allocs
                .range(..=addr)
                .next_back()
                .map(|(_, &a)| a)
                .filter(|a| addr < a.base + a.size)
        }

        pub fn load(&self, addr: u64) -> Result<(Val, Option<AllocId>), Trap> {
            if self.containing(addr).is_none() {
                return Err(Trap::BadAccess { addr, write: false });
            }
            Ok(self
                .words
                .get(&addr)
                .map(|c| (c.val, c.prov))
                .unwrap_or((Val::I(0), None)))
        }

        pub fn store(&mut self, addr: u64, val: Val, prov: Option<AllocId>) -> Result<(), Trap> {
            if self.containing(addr).is_none() {
                return Err(Trap::BadAccess { addr, write: true });
            }
            self.words.insert(addr, MemCell { val, prov });
            Ok(())
        }
    }

    /// The seed hook surface (same dyn-dispatch shape as the real
    /// `RuntimeHooks`, so the baseline pays identical virtual-call costs).
    pub trait SeedHooks {
        fn check_access(&mut self, _addr: u64, _write: bool, _now: u64) -> Result<u64, Trap> {
            Ok(0)
        }
        fn on_alloc(&mut self, _a: Allocation) {}
        fn on_free(&mut self, _a: Allocation) {}
        fn intrinsic(&mut self, _which: Intrinsic, _args: &[Val], _now: u64) -> (Option<Val>, u64) {
            (Some(Val::I(0)), 0)
        }
    }

    /// No-op hooks, like `NullHooks`.
    pub struct SeedNullHooks;
    impl SeedHooks for SeedNullHooks {}

    #[derive(Debug, Clone)]
    struct Frame {
        func: FuncId,
        block: BlockId,
        ip: usize,
        regs: Vec<Val>,
        prov: Vec<Option<AllocId>>,
        ret_to: Option<Reg>,
    }

    enum StepOut {
        Continue,
        Trap(Trap),
    }

    /// The seed interpreter: clone-per-step dispatch over the same modules.
    pub struct Interp {
        cfg: InterpConfig,
        pub mem: Memory,
        frames: Vec<Frame>,
        pub cycles: u64,
        pub insts: u64,
        done_value: Option<Val>,
    }

    impl Interp {
        pub fn new(cfg: InterpConfig) -> Interp {
            let mem = Memory::new(&cfg);
            Interp {
                cfg,
                mem,
                frames: Vec::new(),
                cycles: 0,
                insts: 0,
                done_value: None,
            }
        }

        pub fn start(&mut self, module: &Module, f: FuncId, args: &[Val]) {
            let func = module.func(f);
            let mut regs = vec![Val::I(0); func.n_regs];
            let prov = vec![None; func.n_regs];
            regs[..args.len()].copy_from_slice(args);
            self.frames = vec![Frame {
                func: f,
                block: BlockId(0),
                ip: 0,
                regs,
                prov,
                ret_to: None,
            }];
            self.done_value = None;
        }

        pub fn run_to_completion(
            &mut self,
            module: &Module,
            hooks: &mut dyn SeedHooks,
        ) -> Option<Val> {
            loop {
                if self.frames.is_empty() {
                    return self.done_value;
                }
                match self.step(module, hooks) {
                    StepOut::Continue => {}
                    StepOut::Trap(t) => panic!("baseline program trapped: {t:?}"),
                }
            }
        }

        fn charge(&mut self, c: u64) {
            self.cycles += c;
        }

        fn step(&mut self, module: &Module, hooks: &mut dyn SeedHooks) -> StepOut {
            let fi = self.frames.len() - 1;
            let (func_id, block, ip) = {
                let fr = &self.frames[fi];
                (fr.func, fr.block, fr.ip)
            };
            let func = module.func(func_id);
            let blk = &func.blocks[block.index()];

            if ip >= blk.insts.len() {
                self.insts += 1;
                // The seed cloned the terminator out of the block.
                let term = blk.term.clone().expect("verified IR");
                match term {
                    Term::Br(t) => {
                        self.charge(self.cfg.cost_branch);
                        let fr = &mut self.frames[fi];
                        fr.block = t;
                        fr.ip = 0;
                    }
                    Term::CondBr(c, t, e) => {
                        self.charge(self.cfg.cost_branch);
                        let taken = self.frames[fi].regs[c.0 as usize].is_true();
                        let fr = &mut self.frames[fi];
                        fr.block = if taken { t } else { e };
                        fr.ip = 0;
                    }
                    Term::Ret(v) => {
                        self.charge(self.cfg.cost_ret);
                        let (val, prov) = match v {
                            Some(r) => {
                                let fr = &self.frames[fi];
                                (Some(fr.regs[r.0 as usize]), fr.prov[r.0 as usize])
                            }
                            None => (None, None),
                        };
                        let ret_to = self.frames[fi].ret_to;
                        self.frames.pop();
                        match self.frames.last_mut() {
                            Some(caller) => {
                                if let Some(dst) = ret_to {
                                    caller.regs[dst.0 as usize] = val.unwrap_or(Val::I(0));
                                    caller.prov[dst.0 as usize] = prov;
                                }
                            }
                            None => self.done_value = val,
                        }
                    }
                }
                return StepOut::Continue;
            }

            // The seed's per-step clone, then execute.
            let inst = blk.insts[ip].clone();
            self.frames[fi].ip += 1;
            self.insts += 1;

            macro_rules! reg {
                ($r:expr) => {
                    self.frames[fi].regs[$r.0 as usize]
                };
            }
            macro_rules! prov {
                ($r:expr) => {
                    self.frames[fi].prov[$r.0 as usize]
                };
            }
            macro_rules! set {
                ($d:expr, $v:expr, $p:expr) => {{
                    self.frames[fi].regs[$d.0 as usize] = $v;
                    self.frames[fi].prov[$d.0 as usize] = $p;
                }};
            }

            match inst {
                Inst::ConstI(d, v) => {
                    self.charge(self.cfg.cost_arith);
                    set!(d, Val::I(v), None);
                }
                Inst::ConstF(d, v) => {
                    self.charge(self.cfg.cost_arith);
                    set!(d, Val::F(v), None);
                }
                Inst::Mov(d, s) => {
                    self.charge(self.cfg.cost_arith);
                    let (v, p) = (reg!(s), prov!(s));
                    set!(d, v, p);
                }
                Inst::Bin(d, op, a, b) => {
                    self.charge(self.cfg.cost_arith);
                    let (va, vb) = (reg!(a), reg!(b));
                    let val = match op {
                        BinOp::Add => Val::I(va.as_i().wrapping_add(vb.as_i())),
                        BinOp::Sub => Val::I(va.as_i().wrapping_sub(vb.as_i())),
                        BinOp::Mul => Val::I(va.as_i().wrapping_mul(vb.as_i())),
                        _ => unimplemented!("op not used by the bench workloads"),
                    };
                    let p = match op {
                        BinOp::Add | BinOp::Sub => match (prov!(a), prov!(b)) {
                            (Some(p), None) => Some(p),
                            (None, Some(p)) => Some(p),
                            _ => None,
                        },
                        _ => None,
                    };
                    set!(d, val, p);
                }
                Inst::Cmp(d, op, a, b) => {
                    self.charge(self.cfg.cost_arith);
                    let (x, y) = (reg!(a).as_i(), reg!(b).as_i());
                    let r = match op {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    };
                    set!(d, Val::I(r as i64), None);
                }
                Inst::Alloc(d, s) => {
                    self.charge(self.cfg.cost_alloc);
                    let size = reg!(s).as_i().max(0) as u64;
                    match self.mem.alloc(size) {
                        Ok(a) => {
                            hooks.on_alloc(a);
                            set!(d, Val::I(a.base as i64), Some(a.id));
                        }
                        Err(t) => return StepOut::Trap(t),
                    }
                }
                Inst::Free(p) => {
                    self.charge(self.cfg.cost_free);
                    let addr = reg!(p).as_ptr();
                    match self.mem.free(addr) {
                        Ok(a) => hooks.on_free(a),
                        Err(t) => return StepOut::Trap(t),
                    }
                }
                Inst::Load(d, a, off) => {
                    self.charge(self.cfg.cost_load);
                    let addr = (reg!(a).as_i() + off) as u64;
                    match hooks.check_access(addr, false, self.cycles) {
                        Ok(extra) => self.charge(extra),
                        Err(t) => return StepOut::Trap(t),
                    }
                    match self.mem.load(addr) {
                        Ok((v, p)) => set!(d, v, p),
                        Err(t) => return StepOut::Trap(t),
                    }
                }
                Inst::Store(a, off, v) => {
                    self.charge(self.cfg.cost_store);
                    let addr = (reg!(a).as_i() + off) as u64;
                    match hooks.check_access(addr, true, self.cycles) {
                        Ok(extra) => self.charge(extra),
                        Err(t) => return StepOut::Trap(t),
                    }
                    let (val, p) = (reg!(v), prov!(v));
                    if let Err(t) = self.mem.store(addr, val, p) {
                        return StepOut::Trap(t);
                    }
                }
                Inst::Gep(d, b, i, scale, off) => {
                    self.charge(self.cfg.cost_gep);
                    let base = reg!(b).as_i();
                    let idx = reg!(i).as_i();
                    let addr = base.wrapping_add(idx.wrapping_mul(scale)).wrapping_add(off);
                    let p = prov!(b);
                    set!(d, Val::I(addr), p);
                }
                Inst::Call(dst, g, args) => {
                    self.charge(self.cfg.cost_call);
                    if self.frames.len() >= self.cfg.max_depth {
                        return StepOut::Trap(Trap::StackOverflow);
                    }
                    let callee = module.func(g);
                    let mut regs = vec![Val::I(0); callee.n_regs];
                    let mut prov = vec![None; callee.n_regs];
                    for (i, &r) in args.iter().enumerate() {
                        regs[i] = self.frames[fi].regs[r.0 as usize];
                        prov[i] = self.frames[fi].prov[r.0 as usize];
                    }
                    self.frames.push(Frame {
                        func: g,
                        block: BlockId(0),
                        ip: 0,
                        regs,
                        prov,
                        ret_to: dst,
                    });
                }
                Inst::Intr(dst, which, args) => {
                    let argv: Vec<Val> = args
                        .iter()
                        .map(|&r| self.frames[fi].regs[r.0 as usize])
                        .collect();
                    let (value, cycles) = hooks.intrinsic(which, &argv, self.cycles);
                    self.charge(cycles);
                    if let Some(d) = dst {
                        set!(d, value.unwrap_or(Val::I(0)), None);
                    }
                }
                _ => unimplemented!("inst not used by the bench workloads"),
            }
            StepOut::Continue
        }
    }
}

// The three interpreter workloads, each built once through `FunctionBuilder`
// and executed by BOTH interpreters — the seed baseline above and the real
// page-backed one.

/// Load/store workload geometry: `LS_ARRAYS` live allocations (as CARAT's
/// overhead suite keeps many objects live) of `LS_WORDS` words each, written
/// then summed, `LS_PASSES` times. Words are laid out at consecutive byte
/// addresses — each address is an independent word cell in both memory
/// representations (the seed's map was keyed by byte address too), so this
/// is the densest legal layout and both sides execute identical accesses.
const LS_ARRAYS: i64 = 8;
const LS_WORDS: i64 = 32_768;
const LS_PASSES: i64 = 2;
const CHURN_ITERS: i64 = 2_000;
const FIB_N: i64 = 16;

/// Write `LS_WORDS` words in each of `LS_ARRAYS` arrays, then sum them
/// back, `LS_PASSES` times.
fn loadstore_real() -> (interweave_ir::Module, interweave_ir::FuncId) {
    use interweave_ir::{BinOp, CmpOp, FunctionBuilder, Module};
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("loadstore", 0);
    let n = fb.const_i(LS_WORDS);
    let nar = fb.const_i(LS_ARRAYS);
    let passes = fb.const_i(LS_PASSES);
    let zero = fb.const_i(0);
    let one = fb.const_i(1);
    let four = fb.const_i(4);
    let dsize = fb.const_i(LS_ARRAYS * 8);
    let asize = fb.const_i(LS_WORDS);
    let dir = fb.alloc(dsize);
    let sum = fb.mov(zero);
    let p = fb.mov(zero);
    let a = fb.mov(zero);
    let i = fb.mov(zero);
    let arr = fb.mov(zero);
    let (sh, sb, oh) = (fb.new_block(), fb.new_block(), fb.new_block());
    let (awpre, awh, awb, wh, wb, awnext) = (
        fb.new_block(),
        fb.new_block(),
        fb.new_block(),
        fb.new_block(),
        fb.new_block(),
        fb.new_block(),
    );
    let (arpre, arh, arb, rh, rb, arnext) = (
        fb.new_block(),
        fb.new_block(),
        fb.new_block(),
        fb.new_block(),
        fb.new_block(),
        fb.new_block(),
    );
    let (onext, exit) = (fb.new_block(), fb.new_block());
    // Setup: allocate the arrays, parking each pointer in the directory.
    fb.br(sh);
    fb.switch_to(sh);
    let sc = fb.cmp(CmpOp::Lt, a, nar);
    fb.cond_br(sc, sb, oh);
    fb.switch_to(sb);
    let fresh = fb.alloc(asize);
    let slot = fb.gep(dir, a, 8, 0);
    fb.store(slot, 0, fresh);
    fb.bin_to(a, BinOp::Add, a, one);
    fb.br(sh);
    // Pass loop.
    fb.switch_to(oh);
    let oc = fb.cmp(CmpOp::Lt, p, passes);
    fb.cond_br(oc, awpre, exit);
    // Write every word of every array.
    fb.switch_to(awpre);
    fb.mov_to(a, zero);
    fb.br(awh);
    fb.switch_to(awh);
    let awc = fb.cmp(CmpOp::Lt, a, nar);
    fb.cond_br(awc, awb, arpre);
    fb.switch_to(awb);
    let slot_w = fb.gep(dir, a, 8, 0);
    let arr_w = fb.load(slot_w, 0);
    fb.mov_to(arr, arr_w);
    fb.mov_to(i, zero);
    fb.br(wh);
    fb.switch_to(wh);
    let wc = fb.cmp(CmpOp::Lt, i, n);
    fb.cond_br(wc, wb, awnext);
    fb.switch_to(wb);
    // Four consecutive words per iteration through one gep (static store
    // offsets), so memory operations dominate dispatch — as in CARAT's
    // overhead loops, where the guards sit on dense array traffic.
    let addr = fb.gep(arr, i, 1, 0);
    fb.store(addr, 0, i);
    fb.store(addr, 1, i);
    fb.store(addr, 2, i);
    fb.store(addr, 3, i);
    fb.bin_to(i, BinOp::Add, i, four);
    fb.br(wh);
    fb.switch_to(awnext);
    fb.bin_to(a, BinOp::Add, a, one);
    fb.br(awh);
    // Read every word of every array back, summing.
    fb.switch_to(arpre);
    fb.mov_to(a, zero);
    fb.br(arh);
    fb.switch_to(arh);
    let arc = fb.cmp(CmpOp::Lt, a, nar);
    fb.cond_br(arc, arb, onext);
    fb.switch_to(arb);
    let slot_r = fb.gep(dir, a, 8, 0);
    let arr_r = fb.load(slot_r, 0);
    fb.mov_to(arr, arr_r);
    fb.mov_to(i, zero);
    fb.br(rh);
    fb.switch_to(rh);
    let rc = fb.cmp(CmpOp::Lt, i, n);
    fb.cond_br(rc, rb, arnext);
    fb.switch_to(rb);
    let addr2 = fb.gep(arr, i, 1, 0);
    let v0 = fb.load(addr2, 0);
    let v1 = fb.load(addr2, 1);
    let v2 = fb.load(addr2, 2);
    let v3 = fb.load(addr2, 3);
    fb.bin_to(sum, BinOp::Add, sum, v0);
    fb.bin_to(sum, BinOp::Add, sum, v1);
    fb.bin_to(sum, BinOp::Add, sum, v2);
    fb.bin_to(sum, BinOp::Add, sum, v3);
    fb.bin_to(i, BinOp::Add, i, four);
    fb.br(rh);
    fb.switch_to(arnext);
    fb.bin_to(a, BinOp::Add, a, one);
    fb.br(arh);
    fb.switch_to(onext);
    fb.bin_to(p, BinOp::Add, p, one);
    fb.br(oh);
    fb.switch_to(exit);
    fb.ret(Some(sum));
    let entry = m.add(fb.finish());
    (m, entry)
}

/// Alloc → store → load → free churn.
fn allocchurn_real() -> (interweave_ir::Module, interweave_ir::FuncId) {
    use interweave_ir::{BinOp, CmpOp, FunctionBuilder, Module};
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("allocchurn", 0);
    let iters = fb.const_i(CHURN_ITERS);
    let zero = fb.const_i(0);
    let one = fb.const_i(1);
    let sz = fb.const_i(256);
    let k = fb.mov(zero);
    let (h, b, exit) = (fb.new_block(), fb.new_block(), fb.new_block());
    fb.br(h);
    fb.switch_to(h);
    let c = fb.cmp(CmpOp::Lt, k, iters);
    fb.cond_br(c, b, exit);
    fb.switch_to(b);
    let p = fb.alloc(sz);
    fb.store(p, 0, k);
    let _v = fb.load(p, 0);
    fb.free(p);
    fb.bin_to(k, BinOp::Add, k, one);
    fb.br(h);
    fb.switch_to(exit);
    fb.ret(Some(k));
    let entry = m.add(fb.finish());
    (m, entry)
}

/// Naive recursive fib (call-heavy, no memory traffic).
fn fib_real() -> (interweave_ir::Module, interweave_ir::FuncId) {
    use interweave_ir::{BinOp, CmpOp, FunctionBuilder, Module};
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("fib", 1);
    let n = fb.param(0);
    let two = fb.const_i(2);
    let c = fb.cmp(CmpOp::Lt, n, two);
    let (base, rec) = (fb.new_block(), fb.new_block());
    fb.cond_br(c, base, rec);
    fb.switch_to(base);
    fb.ret(Some(n));
    fb.switch_to(rec);
    let one = fb.const_i(1);
    let n1 = fb.bin(BinOp::Sub, n, one);
    let n2 = fb.bin(BinOp::Sub, n, two);
    let f = interweave_ir::FuncId(0);
    let a = fb.call(f, &[n1]);
    let b = fb.call(f, &[n2]);
    let s = fb.bin(BinOp::Add, a, b);
    fb.ret(Some(s));
    let entry = m.add(fb.finish());
    (m, entry)
}

fn run_seed(
    m: &interweave_ir::Module,
    entry: interweave_ir::FuncId,
    args: &[interweave_ir::types::Val],
) -> Option<interweave_ir::types::Val> {
    use interweave_ir::interp::InterpConfig;
    let mut it = seed_interp::Interp::new(InterpConfig::default());
    it.start(m, entry, args);
    it.run_to_completion(m, &mut seed_interp::SeedNullHooks)
}

fn run_real(
    m: &interweave_ir::Module,
    entry: interweave_ir::FuncId,
    args: &[interweave_ir::types::Val],
) -> Option<interweave_ir::types::Val> {
    use interweave_ir::interp::{Interp, InterpConfig, NullHooks};
    let mut it = Interp::new(InterpConfig::default());
    it.start(m, entry, args);
    it.run_to_completion(m, &mut NullHooks)
}

fn interp_loadstore(c: &mut Criterion) {
    use interweave_ir::types::Val;
    // Sanity: both interpreters compute the same sum (accumulated over
    // passes and arrays) from the same module. Position p holds the value
    // `4 * (p / 4)` (each unrolled iteration stores its index into four
    // consecutive words), so one array sums to `8 * m * (m - 1)` with
    // `m = LS_WORDS / 4`.
    let m_words = LS_WORDS / 4;
    let expect = Some(Val::I(LS_PASSES * LS_ARRAYS * 8 * m_words * (m_words - 1)));
    let (m, entry) = loadstore_real();
    assert_eq!(run_seed(&m, entry, &[]), expect);
    assert_eq!(run_real(&m, entry, &[]), expect);

    c.bench_function("interp_loadstore/seed_btree_words", |b| {
        b.iter(|| black_box(run_seed(&m, entry, &[])))
    });
    c.bench_function("interp_loadstore/page_backed", |b| {
        b.iter(|| black_box(run_real(&m, entry, &[])))
    });
}

fn interp_allocchurn(c: &mut Criterion) {
    use interweave_ir::types::Val;
    let (m, entry) = allocchurn_real();
    assert_eq!(run_seed(&m, entry, &[]), Some(Val::I(CHURN_ITERS)));
    assert_eq!(run_real(&m, entry, &[]), Some(Val::I(CHURN_ITERS)));

    c.bench_function("interp_allocchurn/seed_btree_words", |b| {
        b.iter(|| black_box(run_seed(&m, entry, &[])))
    });
    c.bench_function("interp_allocchurn/page_backed", |b| {
        b.iter(|| black_box(run_real(&m, entry, &[])))
    });
}

fn interp_fib(c: &mut Criterion) {
    use interweave_ir::types::Val;
    let (m, entry) = fib_real();
    assert_eq!(run_seed(&m, entry, &[Val::I(FIB_N)]), Some(Val::I(987)));
    assert_eq!(run_real(&m, entry, &[Val::I(FIB_N)]), Some(Val::I(987)));

    c.bench_function("interp_fib/seed_clone_dispatch", |b| {
        b.iter(|| black_box(run_seed(&m, entry, &[Val::I(FIB_N)])))
    });
    c.bench_function("interp_fib/ref_dispatch", |b| {
        b.iter(|| black_box(run_real(&m, entry, &[Val::I(FIB_N)])))
    });
}

// ---------------------------------------------------------------------------
// Telemetry overhead: the same executor workload with the plane off, at
// counters-only, and at full span tracing. "Zero-cost when disabled" is a
// measured claim — publishing through an off sink is one branch — and the
// enabled tiers quantify what an instrumented run pays.

fn telemetry_overhead(c: &mut Criterion) {
    use interweave_core::machine::MachineConfig;
    use interweave_core::telemetry::{Level, Sink};
    use interweave_core::{FaultConfig, FaultPlan};
    use interweave_kernel::work::LoopWork;
    use interweave_kernel::Executor;

    // A preemption-heavy workload under fault pressure, so every publish
    // site (dispatch, switch, watchdog, fault plan) is on the hot path.
    let run = |sink: Sink| {
        let mc = MachineConfig::test(4);
        let mut e = Executor::new(mc, Cycles(5_000));
        e.set_telemetry(sink);
        e.set_fault_plan(FaultPlan::new(FaultConfig {
            drop_ipi: 0.2,
            delay_ipi: 0.1,
            ..FaultConfig::quiet(0x7E1E)
        }));
        e.enable_watchdog(Cycles(2_500));
        for cpu in 0..4 {
            for _ in 0..4 {
                e.spawn(cpu, Box::new(LoopWork::new(40, Cycles(900))));
            }
        }
        assert!(e.run());
        e.stats.makespan
    };
    c.bench_function("telemetry/off", |b| b.iter(|| black_box(run(Sink::off()))));
    c.bench_function("telemetry/counters", |b| {
        b.iter(|| black_box(run(Sink::on(Level::Counters))))
    });
    c.bench_function("telemetry/full_spans", |b| {
        b.iter(|| black_box(run(Sink::on(Level::Full))))
    });

    // Streaming sinks: raw ingest cost of the bounded sketch vs the exact
    // reservoir, and of windowed roll-ups vs no roll-up at all. The
    // "samples_exact" arm is the baseline the serving plane pays today;
    // "sketch" must stay in the same order of magnitude while holding
    // memory flat, and the "off" arm (plain loop over the same values)
    // shows the plane costs nothing when nothing records.
    {
        use interweave_core::stats::{Samples, Sketch};
        use interweave_core::telemetry::TimeSeries;
        let vals: Vec<f64> = (0..4096u64)
            .map(|i| 1.0 + ((i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64))
            .collect();
        c.bench_function("streaming/off", |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for &v in &vals {
                    acc += black_box(v);
                }
                black_box(acc)
            })
        });
        c.bench_function("streaming/samples_exact", |b| {
            b.iter(|| {
                let mut s = Samples::new();
                for &v in &vals {
                    s.add(v);
                }
                black_box(s.count())
            })
        });
        c.bench_function("streaming/sketch", |b| {
            b.iter(|| {
                let mut s = Sketch::for_latency_us();
                for &v in &vals {
                    s.add(v);
                }
                black_box(s.count())
            })
        });
        c.bench_function("streaming/timeseries_windowed", |b| {
            b.iter(|| {
                let mut ts = TimeSeries::new(Cycles(10_000));
                for (i, &v) in vals.iter().enumerate() {
                    let at = Cycles(i as u64 * 97);
                    ts.add(at, "completed", 1);
                    ts.observe(at, "latency_us", v);
                }
                black_box(ts.len())
            })
        });
    }
}

// ---------------------------------------------------------------------------
// OS-axis model evaluation: the cost of materializing each OS model and
// probing the full §III primitive suite through the `OsModel` vtable. The
// figure binaries do this inside sweeps (once per scenario per point), so
// the three arms bound what the axis refactor added to the hot path; they
// also keep the three models honest relative to each other — all arms run
// the identical probe set, so a cost-table edit that accidentally changes
// the *shape* of a model (e.g. making a probe non-constant) shows up here.

fn os_models(c: &mut Criterion) {
    use interweave_core::machine::MachineConfig;
    use interweave_core::stack::OsPoint;
    use interweave_kernel::microbench::primitive_table;
    use interweave_kernel::os::model_for;

    for os in OsPoint::ALL {
        c.bench_function(&format!("os_models/{}_primitives", os.name()), |b| {
            b.iter(|| {
                let m = model_for(black_box(os), MachineConfig::xeon_server_2s());
                let rows = primitive_table(&[(os.name(), m.as_ref())]);
                black_box(rows.iter().map(|r| r.costs[0].get()).sum::<u64>())
            })
        });
    }
}

criterion_group!(
    benches,
    queue_cancel_seed,
    queue_cancel_tombstone,
    queue_schedule_pop,
    line_table_seed,
    line_table_unified,
    coherence_end_to_end,
    sweep_dispatch,
    interp_loadstore,
    interp_allocchurn,
    interp_fib,
    telemetry_overhead,
    os_models,
);
criterion_main!(benches);
