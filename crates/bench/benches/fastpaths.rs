//! Microbenchmarks for the simulation-kernel fast paths, each measured
//! against an inline reimplementation of the seed code it replaced:
//!
//! - event-queue cancellation: tombstoning handles vs. the old
//!   drain-and-rebuild `cancel_where` (10k-event workload);
//! - coherence line lookup: the unified line-state table vs. the old four
//!   parallel per-line maps (100k-access workload);
//! - sweep dispatch: `parallel_map` fan-out over a simulator-shaped
//!   workload on the bounded worker pool.
//!
//! The baselines live here (not in the library) so the comparison stays
//! runnable after the seed implementations are gone.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use interweave_core::{Cycles, EventHandle, EventQueue, SplitMix64};
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};

// ---------------------------------------------------------------------------
// Baseline 1: the seed event queue — cancel_where drains and rebuilds.

struct SeedScheduled {
    at: Cycles,
    seq: u64,
    payload: u64,
}

impl PartialEq for SeedScheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for SeedScheduled {}
impl Ord for SeedScheduled {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for SeedScheduled {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

#[derive(Default)]
struct SeedQueue {
    heap: BinaryHeap<SeedScheduled>,
    next_seq: u64,
}

impl SeedQueue {
    fn schedule(&mut self, at: Cycles, payload: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(SeedScheduled { at, seq, payload });
    }

    /// The seed's cancellation: drain the whole heap and rebuild it.
    fn cancel_where(&mut self, mut pred: impl FnMut(&u64) -> bool) -> usize {
        let before = self.heap.len();
        let kept: Vec<SeedScheduled> = self.heap.drain().filter(|s| !pred(&s.payload)).collect();
        self.heap = kept.into();
        before - self.heap.len()
    }

    fn pop(&mut self) -> Option<(Cycles, u64)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }
}

/// The cancellation workload from the acceptance criteria: 10k pending
/// events, of which every tenth is retracted *individually* — the
/// executor's pattern (a timer is cancelled when its task unblocks early,
/// one at a time, identified by which event it is). The seed's only
/// cancellation mechanism was `cancel_where`, so each point-cancel paid a
/// full drain-and-rebuild of the heap.
const QUEUE_EVENTS: u64 = 10_000;

fn queue_cancel_seed(c: &mut Criterion) {
    c.bench_function("queue_cancel/seed_drain_rebuild_10k", |b| {
        b.iter(|| {
            let mut q = SeedQueue::default();
            for i in 0..QUEUE_EVENTS {
                q.schedule(Cycles(1 + i % 977), i);
            }
            for doomed in (0..QUEUE_EVENTS).step_by(10) {
                black_box(q.cancel_where(|p| *p == doomed));
            }
            let mut sum = 0u64;
            while let Some((_, p)) = q.pop() {
                sum = sum.wrapping_add(p);
            }
            black_box(sum)
        })
    });
}

fn queue_cancel_tombstone(c: &mut Criterion) {
    c.bench_function("queue_cancel/tombstone_handles_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut handles: Vec<EventHandle> = Vec::with_capacity(QUEUE_EVENTS as usize);
            for i in 0..QUEUE_EVENTS {
                handles.push(q.schedule_cancellable(Cycles(1 + i % 977), i));
            }
            // Same doomed set, cancelled in O(1) per event via handles.
            for doomed in (0..QUEUE_EVENTS).step_by(10) {
                black_box(q.cancel(handles[doomed as usize]));
            }
            let mut sum = 0u64;
            while let Some((_, p)) = q.pop() {
                sum = sum.wrapping_add(p);
            }
            black_box(sum)
        })
    });
}

fn queue_schedule_pop(c: &mut Criterion) {
    // The no-cancellation path: schedule/pop churn must not regress from
    // the tombstone machinery.
    c.bench_function("queue_churn/schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut sum = 0u64;
            for i in 0..QUEUE_EVENTS {
                q.schedule_in(Cycles(1 + i % 977), i);
                if i % 2 == 1 {
                    if let Some((_, p)) = q.pop() {
                        sum = sum.wrapping_add(p);
                    }
                }
            }
            while let Some((_, p)) = q.pop() {
                sum = sum.wrapping_add(p);
            }
            black_box(sum)
        })
    });
}

// ---------------------------------------------------------------------------
// Baseline 2: the seed's four parallel per-line maps vs. the unified table.

#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    Uncached,
    Exclusive(usize),
    Sharers(u64),
}

#[derive(Clone, Copy)]
enum Class {
    Private(usize),
    ReadOnly,
    Shared,
}

/// The seed layout: one map per concern, so each access pays four lookups
/// (class, directory, L3, version) plus up to four write-backs.
#[derive(Default)]
struct FourMaps {
    dir: HashMap<u64, Dir>,
    l3: HashMap<u64, u64>,
    latest: HashMap<u64, u64>,
    class: HashMap<u64, Class>,
}

impl FourMaps {
    fn access(&mut self, line: u64, write: bool) -> u64 {
        let class = self.class.get(&line).copied().unwrap_or(Class::Shared);
        let d = self.dir.get(&line).copied().unwrap_or(Dir::Uncached);
        let v = self.latest.get(&line).copied().unwrap_or(0);
        let l3v = self.l3.get(&line).copied();
        let mut score = v ^ l3v.unwrap_or(0);
        match class {
            Class::Private(c) => score ^= c as u64,
            Class::ReadOnly => {}
            Class::Shared => {
                score ^= match d {
                    Dir::Uncached => 0,
                    Dir::Exclusive(c) => 1 + c as u64,
                    Dir::Sharers(m) => m,
                };
            }
        }
        if write {
            self.latest.insert(line, v + 1);
            self.dir.insert(line, Dir::Exclusive((line % 24) as usize));
            self.l3.insert(line, v + 1);
        } else {
            self.dir.insert(
                line,
                Dir::Sharers(match d {
                    Dir::Sharers(m) => m | (1 << (line % 24)),
                    _ => 1 << (line % 24),
                }),
            );
        }
        score
    }
}

/// The unified layout: one record per line, one lookup and one write-back
/// per access.
#[derive(Clone, Copy)]
struct LineState {
    dir: Dir,
    l3: Option<u64>,
    latest: u64,
    class: Option<Class>,
}

impl Default for LineState {
    fn default() -> LineState {
        LineState {
            dir: Dir::Uncached,
            l3: None,
            latest: 0,
            class: None,
        }
    }
}

#[derive(Default)]
struct UnifiedTable {
    lines: HashMap<u64, LineState>,
}

impl UnifiedTable {
    fn access(&mut self, line: u64, write: bool) -> u64 {
        let mut st = self.lines.get(&line).copied().unwrap_or_default();
        let mut score = st.latest ^ st.l3.unwrap_or(0);
        match st.class.unwrap_or(Class::Shared) {
            Class::Private(c) => score ^= c as u64,
            Class::ReadOnly => {}
            Class::Shared => {
                score ^= match st.dir {
                    Dir::Uncached => 0,
                    Dir::Exclusive(c) => 1 + c as u64,
                    Dir::Sharers(m) => m,
                };
            }
        }
        if write {
            st.latest += 1;
            st.dir = Dir::Exclusive((line % 24) as usize);
            st.l3 = Some(st.latest);
        } else {
            st.dir = Dir::Sharers(match st.dir {
                Dir::Sharers(m) => m | (1 << (line % 24)),
                _ => 1 << (line % 24),
            });
        }
        self.lines.insert(line, st);
        score
    }
}

/// 100k accesses over a fig7-sized footprint (~32k lines), 30% writes.
/// The access trace is generated once so the measured loop is table work
/// only; per-iteration tables start from a cloned pre-classified template,
/// as a real run starts from a classified layout.
const LINE_ACCESSES: u64 = 100_000;
const LINE_FOOTPRINT: u64 = 32 * 1024;

fn line_trace() -> Vec<(u64, bool)> {
    let mut rng = SplitMix64::new(7);
    (0..LINE_ACCESSES)
        .map(|_| (rng.below(LINE_FOOTPRINT), rng.chance(0.3)))
        .collect()
}

fn line_class(line: u64) -> Option<Class> {
    match line % 4 {
        0 => Some(Class::ReadOnly),
        1 => Some(Class::Private((line % 24) as usize)),
        _ => None,
    }
}

fn line_table_seed(c: &mut Criterion) {
    let trace = line_trace();
    let mut template = FourMaps::default();
    for line in 0..LINE_FOOTPRINT {
        if let Some(cl) = line_class(line) {
            template.class.insert(line, cl);
        }
    }
    c.bench_function("line_table/seed_four_maps_100k", |b| {
        b.iter(|| {
            let mut t = FourMaps {
                dir: HashMap::new(),
                l3: HashMap::new(),
                latest: HashMap::new(),
                class: template.class.clone(),
            };
            let mut acc = 0u64;
            for &(line, write) in &trace {
                acc = acc.wrapping_add(t.access(line, write));
            }
            black_box(acc)
        })
    });
}

fn line_table_unified(c: &mut Criterion) {
    let trace = line_trace();
    let mut template = UnifiedTable::default();
    template.lines.reserve(LINE_FOOTPRINT as usize);
    for line in 0..LINE_FOOTPRINT {
        if let Some(cl) = line_class(line) {
            template.lines.entry(line).or_default().class = Some(cl);
        }
    }
    c.bench_function("line_table/unified_state_100k", |b| {
        b.iter(|| {
            let mut t = UnifiedTable {
                lines: template.lines.clone(),
            };
            t.lines.reserve(LINE_FOOTPRINT as usize);
            let mut acc = 0u64;
            for &(line, write) in &trace {
                acc = acc.wrapping_add(t.access(line, write));
            }
            black_box(acc)
        })
    });
}

fn coherence_end_to_end(c: &mut Criterion) {
    use interweave_coherence::protocol::{CohMode, System, SystemConfig};
    // The real protocol engine (now on the unified table) under a shared
    // read/write mix — tracks the end-to-end effect of the refactor.
    c.bench_function("line_table/protocol_shared_mix", |b| {
        b.iter(|| {
            let mut s = System::new(SystemConfig::test(8, CohMode::Full));
            s.reserve_lines(4096);
            let mut rng = SplitMix64::new(11);
            let mut cycles = 0u64;
            for _ in 0..20_000 {
                let core = rng.below(8) as usize;
                let line = rng.below(4096);
                if rng.chance(0.3) {
                    cycles += s.write(core, line);
                } else {
                    cycles += s.read(core, line);
                }
            }
            black_box(cycles)
        })
    });
}

// ---------------------------------------------------------------------------
// Sweep dispatch: the bounded worker pool.

fn sweep_dispatch(c: &mut Criterion) {
    c.bench_function("sweep/parallel_map_200pt", |b| {
        b.iter(|| {
            // A 200-point sweep of small deterministic simulations: enough
            // work per point that dispatch overhead is visible but not
            // dominant, like the figure binaries' sweeps.
            let points: Vec<u64> = (0..200).collect();
            let out = interweave_bench::parallel_map(points, |p| {
                let mut rng = SplitMix64::new(p);
                let mut acc = 0u64;
                for _ in 0..5_000 {
                    acc = acc.wrapping_add(rng.next_u64());
                }
                acc
            });
            black_box(out)
        })
    });
}

criterion_group!(
    benches,
    queue_cancel_seed,
    queue_cancel_tombstone,
    queue_schedule_pop,
    line_table_seed,
    line_table_unified,
    coherence_end_to_end,
    sweep_dispatch,
);
criterion_main!(benches);
