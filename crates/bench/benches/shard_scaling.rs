//! Shard-count scaling of the sharded simulation kernel, at two levels:
//!
//! - `kernel`: the raw [`ShardedKernel`] merged driver — schedule/pop
//!   throughput as the same event population spreads over more shards;
//! - `fig7`: the real consumer — the Fig. 7 coherence sweep (reduced
//!   volume) at 1/2/4/8 event-queue shards.
//!
//! The contract being exercised is the determinism one: every shard count
//! must produce identical rows, so each fig7 iteration is also asserted
//! against the single-shard reference. Shard counts here change *batching*
//! (per-shard queues are smaller and windows fire in bursts), not results;
//! wall-clock parity across counts is the expected healthy shape on one
//! host CPU.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use interweave_coherence::experiment::fig7_reduced_sharded;
use interweave_core::{Cycles, ShardedKernel};

/// Schedule `n` events round-robin across shards (with cross-shard sends
/// sprinkled in), then pop all of them through the merged driver.
fn kernel_roundtrip(shards: usize, n: u64) -> u64 {
    let mut k: ShardedKernel<u64> = ShardedKernel::with_lookahead(shards, Cycles(3));
    for i in 0..n {
        let s = (i as usize) % shards;
        if i % 7 == 0 {
            let to = (s + 1) % shards;
            let at = k.shard(s).now() + Cycles(3 + i % 11);
            k.send(s, to, at, i);
        } else {
            k.schedule(s, Cycles(i % 97), i);
        }
    }
    k.flush_mailbox();
    let mut acc = 0u64;
    while let Some((shard, t, p)) = k.pop_next() {
        acc = acc.wrapping_add(t.get() ^ p).wrapping_add(shard as u64);
    }
    acc
}

fn bench_shard_scaling(c: &mut Criterion) {
    for shards in [1usize, 2, 4, 8] {
        c.bench_function(&format!("shard_scaling kernel/{shards}"), |b| {
            b.iter(|| kernel_roundtrip(black_box(shards), black_box(20_000)))
        });
    }

    // The single-shard rows are the reference every other count must hit
    // bit-for-bit (the CI gate checks the full-volume binary; this keeps
    // the same assertion on the benched configuration).
    let reference = fig7_reduced_sharded(24, 11, 8, 1);
    for shards in [1usize, 2, 4, 8] {
        c.bench_function(&format!("shard_scaling fig7/{shards}"), |b| {
            b.iter(|| {
                let rows = fig7_reduced_sharded(24, 11, 8, black_box(shards));
                assert_eq!(rows, reference, "shard count changed fig7 rows");
                rows
            })
        });
    }
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
