//! TAB-PROFILE — cross-layer cycle attribution, interwoven vs layered.
//!
//! One mixed scheduler workload (compute loops, a cooperative yielder, a
//! fork/join pair, lost/late kick IPIs rescued by the watchdog, and
//! injected stack-allocation OOMs shed by the scheduler) runs three times
//! on the same machine — once per point of the OS axis: charged at the
//! interwoven kernel's switch costs (`OsPoint::NkLike`), at the Aster-like
//! framekernel's (`OsPoint::AsterLike`), and at the layered commodity
//! stack's (`OsPoint::LinuxLike`). Each run attaches a telemetry [`Sink`]
//! and the attribution ledger charges **every** simulated cycle to a
//! `(layer, mechanism)` category — the table below is exhaustive by
//! construction, enforced by [`Sink::verify_attribution`]: the rows sum
//! exactly to makespan × CPUs for all three runs.
//!
//! The interwoven run's sink is then shared with the other layers —
//! coherence protocol, CARAT runtime, heartbeat delivery, virtine pool —
//! so the second table is one unified counter registry spanning the whole
//! stack. Pass `--trace-out <path>` to also export the collected spans as
//! Chrome/Perfetto trace-event JSON (one process track per layer); the
//! golden run passes nothing and writes nothing.
//!
//! Everything is driven by one fixed seed: two runs are byte-identical,
//! which CI checks by diffing a double run and pinning the stdout hash.

use interweave::compose::ComposedStack;
use interweave_bench::harness::{Harness, Scenario};
use interweave_bench::{f, s};
use interweave_carat::defrag::fragmentation_demo;
use interweave_carat::pik::PikSystem;
use interweave_coherence::protocol::{CohMode, System, SystemConfig};
use interweave_core::machine::MachineConfig;
use interweave_core::stack::StackConfig;
use interweave_core::telemetry::{
    chrome_trace_json, find_overlap, well_bracketed, AttributionRow, Layer, Level, Sink, Snapshot,
};
use interweave_core::time::Cycles;
use interweave_core::{FaultConfig, FaultPlan};
use interweave_ir::interp::ExecStatus;
use interweave_ir::types::Val;
use interweave_kernel::work::{LoopWork, ScriptedWork, WorkStep};
use interweave_kernel::{Executor, NumaAllocator};
use interweave_virtines::extract::extract_one;
use interweave_virtines::wasp::Wasp;
use serde::Serialize;

/// The campaign seed. Fixed: the whole point is a bit-reproducible run.
const SEED: u64 = 0x0050_F11E;

#[derive(Serialize)]
struct ProfileJson {
    /// Full registry + attribution snapshot of the interwoven run.
    interwoven: Snapshot,
    /// Attribution table of the framekernel run (same workload, Aster
    /// costs).
    framekernel: Vec<AttributionRow>,
    /// Attribution table of the layered run (same workload, Linux costs).
    layered: Vec<AttributionRow>,
}

/// Run the shared workload once under `stack`'s kernel switch costs, with
/// the fault plan, watchdog, and stack allocator installed, recording into
/// a fresh full-level sink. Returns the sink and the finished executor.
fn profile(stack: &ComposedStack) -> (Sink, Executor) {
    let mc = stack.machine();
    let mut e = Executor::new(mc.clone(), Cycles(10_000));
    e.set_os(stack.config.os);
    let sink = Sink::on(Level::Full);
    e.set_telemetry(sink.clone());
    e.set_stack_allocator(NumaAllocator::new(mc.sockets, 14, 4));
    e.set_fault_plan(FaultPlan::new(FaultConfig {
        drop_ipi: 0.25,
        delay_ipi: 0.25,
        alloc_fail: 0.15,
        ..FaultConfig::quiet(SEED)
    }));
    e.enable_watchdog(Cycles(5_000));

    // Compute loops across every CPU; the fault plan sheds some spawns.
    let mut spawned = 0u64;
    let mut shed = 0u64;
    for cpu in 0..8 {
        for _ in 0..3 {
            match e.try_spawn(cpu, Box::new(LoopWork::new(30, Cycles(400)))) {
                Ok(_) => spawned += 1,
                Err(_) => shed += 1,
            }
        }
    }
    // A cooperative yielder and a fork/join pair exercise the voluntary
    // switch and join-wait mechanisms.
    let yielder: Vec<WorkStep> = (0..6)
        .flat_map(|_| [WorkStep::Compute(Cycles(2_000)), WorkStep::Yield])
        .chain([WorkStep::Done])
        .collect();
    if e.try_spawn(1, Box::new(ScriptedWork::new(yielder))).is_ok() {
        spawned += 1;
    }
    if let Ok(child) = e.try_spawn(3, Box::new(LoopWork::new(10, Cycles(2_000)))) {
        spawned += 1;
        let parent = ScriptedWork::new(vec![
            WorkStep::Compute(Cycles(1_000)),
            WorkStep::Block(child),
            WorkStep::Compute(Cycles(3_000)),
            WorkStep::Done,
        ]);
        if e.try_spawn(0, Box::new(parent)).is_ok() {
            spawned += 1;
        }
    }

    assert!(e.run(), "surviving tasks must complete");
    assert!(spawned > 0 && shed > 0, "campaign must shed and survive");
    assert_eq!(e.stats.shed_tasks, shed);
    assert!(e.stats.preemptions > 0, "quantum must fire");
    assert!(e.stats.yields > 0, "yielder must run");
    assert!(e.stats.blocks > 0, "join must block");
    assert!(e.stats.recovered_stalls > 0, "watchdog must rescue");
    sink.verify_attribution(e.attribution_clock())
        .expect("every cycle attributed to a (layer, mechanism)");
    (sink, e)
}

/// Share the interwoven run's sink with the other layers so the registry
/// snapshot spans the whole stack: coherence gauges, CARAT runtime gauges,
/// heartbeat delivery gauges, and live virtine counters + spans.
fn cross_layer_publishers(sink: &Sink, mc: &MachineConfig) {
    // Coherence: a small shared-then-private access mix.
    let mut sys = System::new(SystemConfig::test(8, CohMode::Selective));
    for l in 0..64u64 {
        sys.write((l % 8) as usize, l);
        sys.read(((l + 1) % 8) as usize, l);
    }
    sys.publish_telemetry(sink);

    // CARAT: run the list workload to its first yield, audit the escape
    // ledger once, and publish the runtime's counters.
    let (m, entry) = fragmentation_demo("list");
    let mut pik = PikSystem::new();
    let (m, att) = pik.compile(m);
    let pid = pik
        .admit(m, att, entry, vec![Val::I(32)])
        .expect("attested module admits");
    loop {
        match pik.processes[pid].run_slice(100_000) {
            ExecStatus::Yielded => break,
            ExecStatus::OutOfFuel => continue,
            other => panic!("unexpected status before quiesce: {other:?}"),
        }
    }
    let p = &mut pik.processes[pid];
    let corruptions = p.runtime.audit_escapes(&p.interp.mem);
    assert!(corruptions.is_empty(), "no faults injected here");
    p.runtime.publish_telemetry(sink);

    // Heartbeat: a short NK broadcast run at the paper's 20 µs target.
    {
        use interweave_core::stack::OsPoint;
        use interweave_heartbeat::sim::{run_heartbeat, HeartbeatConfig};
        let mut cfg = HeartbeatConfig::fig3(OsPoint::NkLike, 20.0, Cycles(1_000));
        cfg.duration_us = 5_000.0;
        run_heartbeat(&cfg).publish_telemetry(sink);
    }

    // Virtines: serve a few requests under a kill plan so restart counters
    // and nested FaultRecovery/VirtineCall spans land in the trace.
    let fibp = interweave_ir::programs::fib(12);
    let image = extract_one(&fibp.module, fibp.entry);
    let mut probe = interweave_virtines::context::Virtine::new(image.clone());
    probe.invoke(&fibp.args, u64::MAX / 4);
    let budget = probe.guest_cycles + probe.guest_cycles / 3;
    let mut faults = FaultPlan::new(FaultConfig {
        virtine_kill: 0.5,
        ..FaultConfig::quiet(SEED)
    });
    let mut w = Wasp::new(image, mc.clone());
    w.set_telemetry(sink.clone());
    let mut restarts = 0u64;
    for _ in 0..6 {
        let (outcome, _, r) = w.invoke_recovering(&fibp.args, budget, &mut faults, 8);
        assert!(
            matches!(
                outcome,
                interweave_virtines::context::VirtineOutcome::Returned(_)
            ),
            "every request must eventually complete"
        );
        restarts += r as u64;
    }
    assert!(restarts > 0, "p=0.5 kills over 6 requests must land");
}

fn main() {
    let mc = MachineConfig::xeon_server_2s().with_cores(8);
    let h = Harness::new(vec![
        Scenario::new("interwoven", StackConfig::nautilus(), mc.clone()),
        Scenario::new("framekernel", StackConfig::framekernel(), mc.clone()),
        Scenario::new("layered", StackConfig::commodity(), mc.clone()),
    ]);
    let (nk_sink, nk) = profile(&h.stack("interwoven"));
    let (fk_sink, fk) = profile(&h.stack("framekernel"));
    let (lx_sink, lx) = profile(&h.stack("layered"));
    cross_layer_publishers(&nk_sink, &mc);
    // The publishers above count and gauge but never charge the ledger, so
    // the attribution invariant still holds against the executor's clock.
    nk_sink
        .verify_attribution(nk.attribution_clock())
        .expect("publishers must not perturb the ledger");

    // Attribution table: union of categories from all three runs, in the
    // ledger's deterministic (layer, mechanism) order.
    let nk_rows = nk_sink.attribution_rows();
    let fk_rows = fk_sink.attribution_rows();
    let lx_rows = lx_sink.attribution_rows();
    let nk_clock = nk.attribution_clock().get() as f64;
    let fk_clock = fk.attribution_clock().get() as f64;
    let lx_clock = lx.attribution_clock().get() as f64;
    let mut cats: Vec<(&'static str, &'static str)> =
        nk_rows.iter().map(|r| (r.layer, r.mechanism)).collect();
    for r in fk_rows.iter().chain(lx_rows.iter()) {
        if !cats.contains(&(r.layer, r.mechanism)) {
            cats.push((r.layer, r.mechanism));
        }
    }
    let lookup = |rows: &[AttributionRow], cat: (&str, &str)| {
        rows.iter()
            .find(|r| (r.layer, r.mechanism) == cat)
            .map(|r| r.cycles)
            .unwrap_or(0)
    };
    let rows: Vec<Vec<String>> = cats
        .iter()
        .map(|&cat| {
            let a = lookup(&nk_rows, cat);
            let m = lookup(&fk_rows, cat);
            let b = lookup(&lx_rows, cat);
            vec![
                s(cat.0),
                s(cat.1),
                s(a),
                f(100.0 * a as f64 / nk_clock, 1) + "%",
                s(m),
                f(100.0 * m as f64 / fk_clock, 1) + "%",
                s(b),
                f(100.0 * b as f64 / lx_clock, 1) + "%",
            ]
        })
        .collect();
    h.table(
        &format!("TAB-PROFILE — cycle attribution across the OS axis (seed {SEED:#x})"),
        &[
            "layer",
            "mechanism",
            "interwoven (cyc)",
            "share",
            "framekernel (cyc)",
            "share",
            "layered (cyc)",
            "share",
        ],
        &rows,
    );
    println!(
        "all three ledgers sum exactly to makespan × {} CPUs: interwoven {} over {}, framekernel {} over {}, layered {} over {}",
        mc.cores,
        nk_sink.attributed(),
        nk.stats.makespan,
        fk_sink.attributed(),
        fk.stats.makespan,
        lx_sink.attributed(),
        lx.stats.makespan,
    );

    // Unified counter registry: every layer publishes into one namespace.
    let snap = nk_sink.snapshot().expect("sink is on");
    let counter_rows: Vec<Vec<String>> = snap
        .counters
        .iter()
        .map(|c| {
            vec![
                s(&c.name),
                s(c.layer),
                s(c.unit),
                s(c.total),
                s(c.last_cycle),
            ]
        })
        .collect();
    h.table(
        "counter registry snapshot (interwoven run, all layers)",
        &["counter", "layer", "unit", "total", "last cycle"],
        &counter_rows,
    );

    // Trace well-formedness: kernel lanes are strict schedules; virtine
    // lanes nest restarts inside recovery episodes.
    let spans = nk_sink.spans();
    let kernel: Vec<_> = spans
        .iter()
        .copied()
        .filter(|sp| sp.layer == Layer::Kernel)
        .collect();
    let virtine = spans.len() - kernel.len();
    assert!(
        find_overlap(&kernel).is_none(),
        "kernel lanes must never overlap"
    );
    assert!(
        well_bracketed(&spans).is_none(),
        "every lane must be well-bracketed"
    );
    println!(
        "\ntrace: {} spans ({} kernel, {} virtine); kernel lanes strict, all lanes well-bracketed",
        spans.len(),
        kernel.len(),
        virtine
    );

    // Optional Perfetto export; the golden run passes no flag.
    if let Some(path) = h.trace_out() {
        let json = chrome_trace_json(&spans, mc.freq.mhz);
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir).expect("trace-out dir");
        }
        std::fs::write(path, &json).expect("writable trace path");
        println!("(perfetto trace written to {path})");
    }

    h.finish(&ProfileJson {
        interwoven: snap,
        framekernel: fk_rows,
        layered: lx_rows,
    });
}
