//! Fig. 6: kernel-OpenMP performance relative to Linux as a function of
//! CPUs — NAS BT and SP on the Phi KNL preset, plus the 8-socket/192-core
//! repetition and the EPCC overhead table.

use interweave_bench::{f, print_table, s};
use interweave_core::machine::MachineConfig;
use interweave_omp::epcc::{epcc_table, Construct};
use interweave_omp::nas::fig6_specs;
use interweave_omp::sim::{fig6_series, geomean_rel, knl_cpu_counts};
use interweave_omp::OmpMode;
use serde::Serialize;

#[derive(Serialize)]
struct JsonPoint {
    bench: String,
    cpus: usize,
    mode: String,
    relative: f64,
}

fn main() {
    let knl = MachineConfig::phi_knl();
    let counts = knl_cpu_counts();
    let mut all_points = Vec::new();
    let mut json = Vec::new();

    for spec in fig6_specs() {
        let pts = fig6_series(&spec, &knl, &counts, 42);
        let mut rows = Vec::new();
        for &p in &counts {
            let get = |m: OmpMode| {
                pts.iter()
                    .find(|r| r.cpus == p && r.mode == m)
                    .map(|r| r.relative)
                    .unwrap_or(0.0)
            };
            rows.push(vec![
                s(p),
                f(get(OmpMode::Rtk), 3),
                f(get(OmpMode::Pik), 3),
                f(get(OmpMode::Cck), 3),
            ]);
        }
        print_table(
            &format!(
                "Fig. 6 — NAS {} on {}: performance relative to Linux (1.0 = baseline)",
                spec.name, knl.name
            ),
            &["CPUs", "RTK", "PIK", "CCK"],
            &rows,
        );
        for r in &pts {
            json.push(JsonPoint {
                bench: r.bench.into(),
                cpus: r.cpus,
                mode: r.mode.name().into(),
                relative: r.relative,
            });
        }
        all_points.extend(pts);
    }

    print_table(
        "Geometric means across scales and benchmarks (paper: RTK ≈ +22 %)",
        &["mode", "geomean rel. perf."],
        &[
            vec![s("RTK"), f(geomean_rel(&all_points, OmpMode::Rtk), 3)],
            vec![s("PIK"), f(geomean_rel(&all_points, OmpMode::Pik), 3)],
            vec![s("CCK"), f(geomean_rel(&all_points, OmpMode::Cck), 3)],
        ],
    );

    // The 192-core repetition (§V-A: "~20% for RTK and PIK").
    let big = MachineConfig::big_server_8s();
    let big_counts = [1usize, 4, 16, 48, 96, 192];
    let mut big_points = Vec::new();
    for spec in fig6_specs() {
        let spec = spec.scaled(8);
        big_points.extend(fig6_series(&spec, &big, &big_counts, 7));
    }
    print_table(
        &format!("Repetition on {} (paper: ~20 % for RTK and PIK)", big.name),
        &["mode", "geomean rel. perf."],
        &[
            vec![s("RTK"), f(geomean_rel(&big_points, OmpMode::Rtk), 3)],
            vec![s("PIK"), f(geomean_rel(&big_points, OmpMode::Pik), 3)],
            vec![s("CCK"), f(geomean_rel(&big_points, OmpMode::Cck), 3)],
        ],
    );

    // EPCC construct overheads.
    let rows: Vec<Vec<String>> = epcc_table(&knl, &[2, 8, 32, 64])
        .into_iter()
        .filter(|r| r.construct == Construct::Barrier || r.threads == 64)
        .map(|r| {
            vec![
                s(r.construct.name()),
                s(r.mode.name()),
                s(r.threads),
                s(r.overhead.get()),
            ]
        })
        .collect();
    print_table(
        "EPCC-style construct overheads (cycles)",
        &["construct", "mode", "threads", "overhead"],
        &rows,
    );

    // Noise-sensitivity ablation.
    use interweave_omp::sim::noise_sensitivity;
    let spec = interweave_omp::nas::bt();
    let pts = noise_sensitivity(&spec, &knl, 32, &[0.0, 0.5, 1.0, 2.0, 4.0], 42);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|(scale, rel)| vec![f(*scale, 1) + "x", f(*rel, 3)])
        .collect();
    print_table(
        "Noise-sensitivity ablation — RTK advantage vs Linux noise level (BT, 32 CPUs)",
        &["noise scale", "RTK relative perf"],
        &rows,
    );
    println!(
        "Even a hypothetical noiseless Linux loses on primitive costs; real\n\
noise amplifies through barriers into the bulk of Fig. 6's gap."
    );

    interweave_bench::maybe_dump_json(&json);
}
