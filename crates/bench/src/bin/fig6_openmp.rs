//! Fig. 6: kernel-OpenMP performance relative to Linux as a function of
//! CPUs — NAS BT and SP on the Phi KNL preset, plus the 8-socket/192-core
//! repetition and the EPCC overhead table. The Aster/RTK/PIK/CCK designs
//! are declared as stack compositions; their OpenMP modes (and the table
//! columns) derive from the composed stacks, so the OS axis's framekernel
//! mid-point appears as its own column.

use interweave_bench::harness::{Harness, Scenario};
use interweave_bench::{f, s};
use interweave_core::machine::MachineConfig;
use interweave_core::stack::StackConfig;
use interweave_omp::epcc::{epcc_table, Construct};
use interweave_omp::nas::fig6_specs;
use interweave_omp::sim::{fig6_series, geomean_rel, knl_cpu_counts};
use interweave_omp::OmpMode;
use serde::Serialize;

#[derive(Serialize)]
struct JsonPoint {
    bench: String,
    cpus: usize,
    mode: String,
    relative: f64,
}

fn main() {
    let knl = MachineConfig::phi_knl();
    let h = Harness::new(vec![
        Scenario::new("linux", StackConfig::commodity(), knl.clone()),
        Scenario::new("aster", StackConfig::framekernel(), knl.clone()),
        Scenario::new("rtk", StackConfig::rtk(), knl.clone()),
        Scenario::new("pik", StackConfig::pik(), knl.clone()),
        Scenario::new("cck", StackConfig::cck(), knl.clone()),
    ]);
    // The kernel modes under comparison, derived from the compositions
    // (the Linux scenario is the baseline inside fig6_series).
    let modes: Vec<OmpMode> = h.scenarios()[1..]
        .iter()
        .map(|sc| {
            sc.compose()
                .omp_mode()
                .unwrap_or_else(|| panic!("scenario {:?} is not an OpenMP stack", sc.id))
        })
        .collect();
    let mode_names: Vec<&'static str> = modes.iter().map(|m| m.name()).collect();

    let counts = knl_cpu_counts();
    let mut all_points = Vec::new();
    let mut json = Vec::new();

    for spec in fig6_specs() {
        let pts = fig6_series(&spec, &knl, &counts, &modes, 42);
        let mut rows = Vec::new();
        for &p in &counts {
            let get = |m: OmpMode| {
                pts.iter()
                    .find(|r| r.cpus == p && r.mode == m)
                    .map(|r| r.relative)
                    .unwrap_or(0.0)
            };
            let mut row = vec![s(p)];
            row.extend(modes.iter().map(|&m| f(get(m), 3)));
            rows.push(row);
        }
        let mut header = vec!["CPUs"];
        header.extend(&mode_names);
        h.table(
            &format!(
                "Fig. 6 — NAS {} on {}: performance relative to Linux (1.0 = baseline)",
                spec.name, knl.name
            ),
            &header,
            &rows,
        );
        for r in &pts {
            json.push(JsonPoint {
                bench: r.bench.into(),
                cpus: r.cpus,
                mode: r.mode.name().into(),
                relative: r.relative,
            });
        }
        all_points.extend(pts);
    }

    let geomean_rows = |points: &[interweave_omp::sim::RelPerf]| -> Vec<Vec<String>> {
        modes
            .iter()
            .map(|&m| vec![s(m.name()), f(geomean_rel(points, m), 3)])
            .collect()
    };
    h.table(
        "Geometric means across scales and benchmarks (paper: RTK ≈ +22 %)",
        &["mode", "geomean rel. perf."],
        &geomean_rows(&all_points),
    );

    // The 192-core repetition (§V-A: "~20% for RTK and PIK").
    let big = MachineConfig::big_server_8s();
    let big_counts = [1usize, 4, 16, 48, 96, 192];
    let mut big_points = Vec::new();
    for spec in fig6_specs() {
        let spec = spec.scaled(8);
        big_points.extend(fig6_series(&spec, &big, &big_counts, &modes, 7));
    }
    h.table(
        &format!("Repetition on {} (paper: ~20 % for RTK and PIK)", big.name),
        &["mode", "geomean rel. perf."],
        &geomean_rows(&big_points),
    );

    // EPCC construct overheads.
    let rows: Vec<Vec<String>> = epcc_table(&knl, &[2, 8, 32, 64])
        .into_iter()
        .filter(|r| r.construct == Construct::Barrier || r.threads == 64)
        .map(|r| {
            vec![
                s(r.construct.name()),
                s(r.mode.name()),
                s(r.threads),
                s(r.overhead.get()),
            ]
        })
        .collect();
    h.table(
        "EPCC-style construct overheads (cycles)",
        &["construct", "mode", "threads", "overhead"],
        &rows,
    );

    // Noise-sensitivity ablation.
    use interweave_omp::sim::noise_sensitivity;
    let spec = interweave_omp::nas::bt();
    let pts = noise_sensitivity(&spec, &knl, 32, &[0.0, 0.5, 1.0, 2.0, 4.0], 42);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|(scale, rel)| vec![f(*scale, 1) + "x", f(*rel, 3)])
        .collect();
    h.table(
        "Noise-sensitivity ablation — RTK advantage vs Linux noise level (BT, 32 CPUs)",
        &["noise scale", "RTK relative perf"],
        &rows,
    );
    println!(
        "Even a hypothetical noiseless Linux loses on primitive costs; real\n\
noise amplifies through barriers into the bulk of Fig. 6's gap."
    );

    h.finish(&json);
}
