//! Fig. 7: speedup of selective coherence deactivation on PBBS-archetype
//! workloads, dual-socket 24-core machine, plus the interconnect-energy
//! companion claim and the scale trend.
//!
//! `--shards <n>` runs the sweeps on `n` event-queue shards. The output is
//! bit-identical at every shard count — the CI determinism gate
//! byte-compares `--shards 1` against `--shards 4`.

use interweave_bench::harness::Cli;
use interweave_bench::{f, print_table, s};
use interweave_coherence::experiment::{fig7_sharded, mean_energy_reduction, mean_speedup};
use serde::Serialize;

#[derive(Serialize)]
struct JsonRow {
    bench: String,
    speedup: f64,
    noc_energy_reduction: f64,
}

fn main() {
    let shards = Cli::parse().shards;
    let rows_data = fig7_sharded(24, 11, shards);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for r in &rows_data {
        rows.push(vec![
            s(r.name),
            s(r.full_cycles),
            s(r.selective_cycles),
            f(r.speedup(), 3),
            f(100.0 * r.energy_reduction(), 1) + "%",
        ]);
        json.push(JsonRow {
            bench: r.name.into(),
            speedup: r.speedup(),
            noc_energy_reduction: r.energy_reduction(),
        });
    }
    print_table(
        "Fig. 7 — selective coherence deactivation, 24-core dual-socket preset",
        &[
            "benchmark",
            "MESI cycles",
            "selective cycles",
            "speedup",
            "NoC energy cut",
        ],
        &rows,
    );
    println!(
        "mean speedup: {:.3}  (paper: ~1.46)\nmean interconnect-energy reduction: {:.1}%  (paper: ~53%)",
        mean_speedup(&rows_data),
        100.0 * mean_energy_reduction(&rows_data)
    );

    // Scale trend (§V-B: "benefits grow with scale"). The 24-core row is
    // the main table's run — fig7 is deterministic, so reuse it.
    let mut rows = Vec::new();
    for cores in [8usize, 16, 24, 48] {
        let r = if cores == 24 {
            rows_data.clone()
        } else {
            fig7_sharded(cores, 11, shards)
        };
        rows.push(vec![
            s(cores),
            f(mean_speedup(&r), 3),
            f(100.0 * mean_energy_reduction(&r), 1) + "%",
        ]);
    }
    print_table(
        "Scale trend",
        &["cores", "mean speedup", "mean NoC energy cut"],
        &rows,
    );

    // §V-B's other half: memory-ordering selectivity.
    use interweave_coherence::ordering::{run_ordering, FencePolicy, OrderingConfig};
    let mut rows = Vec::new();
    for unrelated in [0usize, 8, 24, 48] {
        let cfg = OrderingConfig {
            unrelated_writes: unrelated,
            ..OrderingConfig::default()
        };
        let tso = run_ordering(&cfg, FencePolicy::TsoTotal);
        let sel = run_ordering(&cfg, FencePolicy::SelectiveRelease);
        rows.push(vec![
            s(unrelated),
            f(tso.mean_stall, 1),
            f(sel.mean_stall, 1),
            f(tso.mean_stall - sel.mean_stall, 1),
        ]);
    }
    print_table(
        "Ordering selectivity — fence stall (cycles/fence) vs unrelated store traffic",
        &[
            "unrelated stores",
            "x86-TSO",
            "selective release",
            "stall removed",
        ],
        &rows,
    );
    println!(
        "§V-B: \"a fence ... also orders all other writes the thread issued, even if\n\
         they are unrelated to the intended use of the fence.\""
    );

    interweave_bench::maybe_dump_json(&json);
}
