//! Fig. 4: context-switch costs for threads, fibers, and compiler-timed
//! fibers on the Phi KNL preset, plus measured overhead sweeps and
//! granularity floors. The kernels compared are declared as stack
//! compositions and composed through the harness.

use interweave_bench::harness::{Harness, Scenario};
use interweave_bench::{f, s};
use interweave_core::machine::MachineConfig;
use interweave_core::stack::{StackConfig, TimingSource};
use interweave_fibers::study::{analytic_rows, floor_cycles, overhead_sweep};
use interweave_kernel::threads::SwitchKind;
use serde::Serialize;

#[derive(Serialize)]
struct JsonRow {
    label: String,
    entry: u64,
    state: u64,
    sched: u64,
    fp: u64,
    boundary: u64,
    ret: u64,
    total: u64,
}

fn main() {
    let knl = MachineConfig::phi_knl();
    let h = Harness::new(vec![
        Scenario::new("linux", StackConfig::commodity(), knl.clone()),
        Scenario::new("aster", StackConfig::framekernel(), knl.clone()),
        Scenario::new("nautilus", StackConfig::nautilus(), knl.clone()),
        // The compiler-timed fiber rows: the timing axis moves into the
        // toolchain, everything else stays raw Nautilus.
        Scenario::new(
            "nautilus+comptime",
            StackConfig {
                timing: TimingSource::CompilerInjected,
                ..StackConfig::nautilus()
            },
            knl,
        ),
    ]);
    let mc = &h.scenario("nautilus").machine;
    let linux = h.stack("linux").config.os;
    let aster = h.stack("aster").config.os;
    let nk = h.stack("nautilus").config.os;
    let comptime = h.stack("nautilus+comptime").config.os;

    // The figure's bars: cost decomposition per configuration.
    let rows_data = analytic_rows(mc);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for r in &rows_data {
        let b = r.breakdown;
        rows.push(vec![
            s(&r.label),
            s(b.entry.get()),
            s(b.state.get()),
            s(b.sched.get()),
            s(b.fp.get()),
            s(b.boundary.get()),
            s(b.ret.get()),
            s(b.total().get()),
        ]);
        json.push(JsonRow {
            label: r.label.clone(),
            entry: b.entry.get(),
            state: b.state.get(),
            sched: b.sched.get(),
            fp: b.fp.get(),
            boundary: b.boundary.get(),
            ret: b.ret.get(),
            total: b.total().get(),
        });
    }
    h.table(
        "Fig. 4 — context-switch cost decomposition (cycles, Phi KNL preset)",
        &[
            "configuration",
            "entry",
            "state",
            "sched",
            "fp",
            "boundary",
            "ret",
            "TOTAL",
        ],
        &rows,
    );

    // Headline ratios the figure calls out.
    let linux_fp = floor_cycles(mc, SwitchKind::ThreadInterrupt, linux, true);
    let aster_fp = floor_cycles(mc, SwitchKind::ThreadInterrupt, aster, true);
    let nk_fp = floor_cycles(mc, SwitchKind::ThreadInterrupt, nk, true);
    let fib_fp = floor_cycles(mc, SwitchKind::FiberCompilerTimed, comptime, true);
    let fib_nofp = floor_cycles(mc, SwitchKind::FiberCompilerTimed, comptime, false);
    h.table(
        "Fig. 4 callouts",
        &["quantity", "value"],
        &[
            vec![s("Linux non-RT FP switch (paper ≈5000 cyc)"), s(linux_fp)],
            vec![
                s("Aster thread FP switch (framekernel mid-point)"),
                s(aster_fp),
            ],
            vec![s("NK thread FP switch (paper: ≈half of Linux)"), s(nk_fp)],
            vec![
                s("CompTime fiber FP switch (paper: 2.3× below threads)"),
                format!("{fib_fp}  (ratio {:.1}×)", nk_fp as f64 / fib_fp as f64),
            ],
            vec![s("Granularity floor, no-FP (paper: <600 cyc)"), s(fib_nofp)],
            vec![
                s("Granularity vs Linux (paper: >4× smaller)"),
                f(linux_fp as f64 / fib_fp as f64, 1) + "×",
            ],
        ],
    );

    // Measured overhead sweep: mechanism overhead vs quantum.
    let quanta = [1_000u64, 2_000, 5_000, 10_000, 50_000, 200_000];
    let pts = overhead_sweep(mc, &quanta);
    let mut rows = Vec::new();
    for &q in &quanta {
        let find = |m| {
            pts.iter()
                .find(|p| p.quantum == q && p.mode == m)
                .expect("swept")
        };
        let ct = find(interweave_fibers::PreemptMode::CompilerTimed);
        let hw = find(interweave_fibers::PreemptMode::HardwareTimer);
        rows.push(vec![
            s(q),
            f(100.0 * ct.overhead, 2) + "%",
            f(100.0 * hw.overhead, 2) + "%",
            s(ct.switches),
            s(hw.switches),
        ]);
    }
    h.table(
        "Measured mechanism overhead vs preemption quantum (mixed workload)",
        &[
            "quantum (cyc)",
            "comp-timed",
            "hw-timer",
            "ct switches",
            "hw switches",
        ],
        &rows,
    );

    h.finish(&json);
}
