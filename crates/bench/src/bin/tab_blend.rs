//! §V-C: blending — blended (polled) device drivers vs. interrupt-driven
//! handling, and the page- vs. object-granularity far-memory sweep.

use interweave_bench::{f, print_table, s};
use interweave_blend::farmem::{density_sweep, FarMemConfig};
use interweave_blend::polling::{run_device_experiment, DeviceConfig, DriveMode};
use interweave_core::machine::MachineConfig;
use interweave_ir::programs;
use serde::Serialize;

#[derive(Serialize)]
struct JsonDevice {
    mean_gap: u64,
    mode: String,
    mean_latency: f64,
    device_cycles_per_event: f64,
    interrupts: u64,
}

fn main() {
    let mc = MachineConfig::xeon_server_2s();
    let program = programs::stencil1d(128, 32);
    let mut json = Vec::new();

    // Device latency/cost vs event rate.
    let mut rows = Vec::new();
    for &gap in &[1_500u64, 4_000, 16_000] {
        for mode in [DriveMode::InterruptDriven, DriveMode::BlendedPolling] {
            let r = run_device_experiment(
                &program,
                &DeviceConfig {
                    mean_gap: gap,
                    handler: 250,
                    seed: 21,
                },
                &mc,
                mode,
            );
            let per_event = r.device_cycles as f64 / r.serviced.max(1) as f64;
            rows.push(vec![
                s(gap),
                s(format!("{mode:?}")),
                s(r.serviced),
                f(r.latency.mean(), 0),
                f(r.latency.max(), 0),
                f(per_event, 0),
                s(r.interrupts),
            ]);
            json.push(JsonDevice {
                mean_gap: gap,
                mode: format!("{mode:?}"),
                mean_latency: r.latency.mean(),
                device_cycles_per_event: per_event,
                interrupts: r.interrupts,
            });
        }
    }
    print_table(
        "TAB-BLEND — blended device drivers (stencil workload, handler 250 cyc)",
        &[
            "mean gap",
            "mode",
            "serviced",
            "mean lat (cyc)",
            "max lat",
            "dev cyc/event",
            "interrupts",
        ],
        &rows,
    );
    println!(
        "Paper: polled devices \"appear to behave as if they were interrupt-driven,\n\
         but no interrupts ever occur for them\"."
    );

    // Far-memory density sweep.
    let series = density_sweep(&FarMemConfig::default());
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|(hot, page, obj)| {
            vec![
                s(hot),
                s(page.bytes_moved),
                s(obj.bytes_moved),
                s(page.stall_cycles),
                s(obj.stall_cycles),
                s(if obj.stall_cycles < page.stall_cycles {
                    "object"
                } else {
                    "page"
                }),
            ]
        })
        .collect();
    print_table(
        "Far memory: page vs object granularity by hot-object density (per 4 KiB page)",
        &[
            "hot objs/page",
            "page bytes",
            "object bytes",
            "page stalls",
            "object stalls",
            "winner",
        ],
        &rows,
    );
    // Block device: blended polling vs the commodity stack's own best
    // fix, interrupt coalescing.
    use interweave_blend::block::{run_block, BlockConfig, CompletionMode};
    let bcfg = BlockConfig::default();
    let modes = [
        (
            "interrupt/completion",
            CompletionMode::InterruptPerCompletion,
        ),
        (
            "coalesced (k=16, 30k cyc)",
            CompletionMode::Coalesced {
                k: 16,
                timeout: 30_000,
            },
        ),
        (
            "blended polling (gap 400)",
            CompletionMode::BlendedPolling { poll_gap: 400 },
        ),
    ];
    let rows: Vec<Vec<String>> = modes
        .iter()
        .map(|(name, mode)| {
            let r = run_block(&bcfg, &mc, *mode);
            vec![
                s(name),
                f(r.latency.mean(), 0),
                f(r.latency.max(), 0),
                s(r.interrupts),
                s(r.delivery_cycles),
            ]
        })
        .collect();
    print_table(
        "Block-device completions (2k requests): latency vs interrupt rate",
        &[
            "mode",
            "mean lat (cyc)",
            "max lat",
            "interrupts",
            "delivery cyc",
        ],
        &rows,
    );

    interweave_bench::maybe_dump_json(&json);
}
