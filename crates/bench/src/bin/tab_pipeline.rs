//! §V-D: pipeline interrupts — dispatch-cost comparison (the paper
//! measures IDT dispatch at ~1000 cycles and projects 100–1000×
//! improvement) and its downstream effect on every interrupt-consuming
//! subsystem.

use interweave_bench::{f, print_table, s};
use interweave_core::machine::MachineConfig;
use interweave_core::stack::OsPoint;
use interweave_core::Cycles;
use interweave_heartbeat::sim::{run_heartbeat, HeartbeatConfig};
use interweave_kernel::threads::{switch_cost, SwitchKind};
use serde::Serialize;

#[derive(Serialize)]
struct JsonRow {
    quantity: String,
    idt: f64,
    pipeline: f64,
    ratio: f64,
}

fn main() {
    let idt = MachineConfig::xeon_server_2s();
    let pipe = MachineConfig::xeon_server_2s().with_pipeline_interrupts();
    let mut json = Vec::new();
    let push = |q: &str, a: f64, b: f64, json: &mut Vec<JsonRow>| {
        json.push(JsonRow {
            quantity: q.into(),
            idt: a,
            pipeline: b,
            ratio: a / b.max(1e-9),
        });
        vec![s(q), f(a, 1), f(b, 1), f(a / b.max(1e-9), 0) + "×"]
    };

    let rows = vec![
        push(
            "interrupt dispatch (cycles)",
            idt.dispatch_cost().as_f64(),
            pipe.dispatch_cost().as_f64(),
            &mut json,
        ),
        push(
            "NK thread switch, no-FP (cycles)",
            switch_cost(
                &idt,
                OsPoint::NkLike,
                SwitchKind::ThreadInterrupt,
                false,
                false,
            )
            .total()
            .as_f64(),
            switch_cost(
                &pipe,
                OsPoint::NkLike,
                SwitchKind::ThreadInterrupt,
                false,
                false,
            )
            .total()
            .as_f64(),
            &mut json,
        ),
        {
            let h_idt = run_heartbeat(&HeartbeatConfig::fig3(OsPoint::NkLike, 20.0, Cycles(1000)));
            let mut cfg = HeartbeatConfig::fig3(OsPoint::NkLike, 20.0, Cycles(1000));
            cfg.machine = cfg.machine.with_pipeline_interrupts();
            let h_pipe = run_heartbeat(&cfg);
            push(
                "heartbeat overhead @ 20 µs (%)",
                h_idt.overhead_pct,
                h_pipe.overhead_pct,
                &mut json,
            )
        },
    ];
    print_table(
        "TAB-PIPE — §V-D pipeline interrupts (IDT vs pipeline-branch delivery)",
        &["quantity", "IDT", "pipeline", "improvement"],
        &rows,
    );
    println!(
        "\nPaper: dispatch ≈1000 cycles today; pipeline delivery \"would be similar\n\
         to that of a correctly predicted branch, 100–1000× better\"."
    );
    interweave_bench::maybe_dump_json(&json);
}
