//! TAB-FAULTS — deterministic cross-layer fault injection and recovery.
//!
//! One seeded [`FaultPlan`] drives four fault classes, each injected at the
//! layer where the real failure would occur and recovered *one layer up*:
//!
//! | fault                  | injected at              | recovered by                          |
//! |------------------------|--------------------------|---------------------------------------|
//! | lost kick IPI          | delivery fabric          | kernel watchdog re-kick               |
//! | stack allocation OOM   | buddy allocator          | scheduler sheds the task (typed `Err`)|
//! | memory word bit-flip   | interpreter page memory  | CARAT audit + quarantine-and-relocate |
//! | virtine killed mid-call| guest execution          | Wasp restart from snapshot            |
//!
//! For each class the table reports cycles to detect + recover in the
//! interwoven stack against what the layered commodity stack pays for the
//! same failure (softlockup-tick rescue, OOM-killer scan, page-granularity
//! scrub plus process restart, fork+exec restart). Everything is driven by
//! one fixed seed: two runs of this binary are byte-identical, which CI
//! checks by diffing a double run and pinning the stdout hash.

use interweave::compose::ComposedStack;
use interweave_bench::harness::{Harness, Scenario};
use interweave_bench::{f, s};
use interweave_carat::defrag::fragmentation_demo;
use interweave_carat::pik::PikSystem;
use interweave_carat::quarantine_and_relocate;
use interweave_core::machine::MachineConfig;
use interweave_core::stack::StackConfig;
use interweave_core::time::Cycles;
use interweave_core::{FaultClass, FaultConfig, FaultPlan};
use interweave_ir::interp::ExecStatus;
use interweave_ir::types::Val;
use interweave_kernel::work::LoopWork;
use interweave_kernel::{Executor, NumaAllocator};
use interweave_virtines::context::Virtine;
use interweave_virtines::extract::extract_one;
use interweave_virtines::wasp::{startup, Wasp};
use serde::Serialize;

/// The campaign seed. Fixed: the whole point is a bit-reproducible run.
const SEED: u64 = 0xFA017;

/// Commodity lost-wakeup rescue: nothing notices until the next scheduler
/// tick rebalance (250 Hz ⇒ 4 ms).
const LAYERED_TICK_US: f64 = 4_000.0;

/// Commodity OOM path: overcommit means the failure is only discovered at
/// page-touch time, then the OOM killer scans and kills (~10 ms).
const LAYERED_OOM_US: f64 = 10_000.0;

struct Row {
    class: FaultClass,
    injected: u64,
    detected: u64,
    recovered: u64,
    interwoven: u64,
    layered: u64,
    note: &'static str,
}

#[derive(Serialize)]
struct JsonRow {
    class: String,
    injected: u64,
    detected: u64,
    recovered: u64,
    interwoven_cycles: u64,
    layered_cycles: u64,
}

/// Lost + delayed kick IPIs, recovered by the kernel watchdog.
fn ipi_rows(mc: &MachineConfig) -> (Row, Row) {
    let cfg = FaultConfig {
        drop_ipi: 0.25,
        delay_ipi: 0.25,
        ..FaultConfig::quiet(SEED)
    };
    let max_delay = cfg.max_ipi_delay;
    let mut e = Executor::new(mc.clone(), Cycles(10_000));
    e.set_fault_plan(FaultPlan::new(cfg));
    e.enable_watchdog(Cycles(5_000));
    for cpu in 0..8 {
        for _ in 0..3 {
            e.spawn(cpu, Box::new(LoopWork::new(50, Cycles(400))));
        }
    }
    assert!(e.run(), "watchdog must rescue every lost kick");
    let plan = e.take_fault_plan().expect("plan installed above");
    let st = &e.stats;
    assert!(
        st.recovered_stalls > 0,
        "campaign must exercise the watchdog"
    );
    let lost = Row {
        class: FaultClass::LostIpi,
        injected: plan.injected(FaultClass::LostIpi),
        detected: st.recovered_stalls,
        recovered: st.recovered_stalls,
        // Measured: average stall window from the kick that vanished to the
        // watchdog-driven dispatch that closed it.
        interwoven: st.stall_cycles.get() / st.recovered_stalls,
        layered: mc.freq.cycles_per_us(LAYERED_TICK_US).get(),
        note: "watchdog re-kick vs 4 ms tick rescue",
    };
    let delayed = Row {
        class: FaultClass::DelayedIpi,
        injected: plan.injected(FaultClass::DelayedIpi),
        detected: st.delayed_kicks,
        recovered: st.delayed_kicks,
        // Bounded by the plan: a late kick is absorbed, never escalated.
        interwoven: max_delay.get(),
        layered: mc.freq.cycles_per_us(LAYERED_TICK_US).get(),
        note: "late delivery absorbed vs tick rescue",
    };
    (lost, delayed)
}

/// Injected buddy OOM at stack-carve time, shed by the scheduler.
fn alloc_row(stack: &ComposedStack) -> Row {
    let mc = stack.machine();
    let mut e = Executor::new(mc.clone(), Cycles(10_000));
    // 2 zones × 16 × 16 KiB stacks: capacity for every spawn that the
    // fault plane lets through.
    e.set_stack_allocator(NumaAllocator::new(mc.sockets, 14, 4));
    e.set_fault_plan(FaultPlan::new(FaultConfig {
        alloc_fail: 0.25,
        ..FaultConfig::quiet(SEED)
    }));
    let mut spawned = 0u64;
    let mut shed = 0u64;
    for i in 0..24 {
        match e.try_spawn(i % mc.cores, Box::new(LoopWork::new(20, Cycles(500)))) {
            Ok(_) => spawned += 1,
            Err(err) => {
                // The typed error is the detection: no page-touch surprise.
                assert_eq!(err.to_string(), "out of memory");
                shed += 1;
            }
        }
    }
    assert!(e.run(), "surviving tasks must complete after shedding");
    let plan = e.take_fault_plan().expect("plan installed above");
    assert!(shed > 0 && spawned > 0, "campaign must shed and survive");
    assert_eq!(e.stats.shed_tasks, shed);
    Row {
        class: FaultClass::AllocFail,
        injected: plan.injected(FaultClass::AllocFail),
        detected: shed,
        recovered: shed,
        // Synchronous `Err` at the call site; recovery is one scheduler
        // pick to move on to the next runnable task.
        interwoven: stack.os.ctx_switch(false, false).get(),
        layered: mc.freq.cycles_per_us(LAYERED_OOM_US).get(),
        note: "typed Err + shed vs OOM-killer scan",
    }
}

/// A seeded bit-flip in a pointer word, caught by the CARAT escape audit
/// and healed by quarantine-and-relocate. The layered cost restarts the
/// process through the commodity stack's isolation path.
fn bit_flip_row(mc: &MachineConfig, layered: &ComposedStack) -> Row {
    let (m, entry) = fragmentation_demo("list");
    let n = 64i64;
    let mut sys = PikSystem::new();
    let (m, att) = sys.compile(m);
    let pid = sys
        .admit(m, att, entry, vec![Val::I(n)])
        .expect("attested module admits");
    loop {
        match sys.processes[pid].run_slice(100_000) {
            ExecStatus::Yielded => break,
            ExecStatus::OutOfFuel => continue,
            other => panic!("unexpected status before quiesce: {other:?}"),
        }
    }
    let p = &mut sys.processes[pid];
    let holders = p.runtime.escape_holders();
    let mut plan = FaultPlan::new(FaultConfig {
        bit_flip: 1.0,
        ..FaultConfig::quiet(SEED)
    });
    let (site, bit) = plan
        .flip_spec(holders.len() as u64)
        .expect("p=1.0 must fire");
    let victim = holders[site as usize];
    p.interp
        .mem
        .flip_bit(victim, bit)
        .expect("escape holders are integer words");

    let corruptions = p.runtime.audit_escapes(&p.interp.mem);
    assert_eq!(corruptions.len(), 1, "exactly the flipped word");
    let report = quarantine_and_relocate(&mut p.interp, &mut p.runtime, &corruptions);
    assert_eq!(report.repaired_words, 1);
    assert!(report.quarantined_bytes > 0);
    // Cost model, detection: the audit walks the escape ledger once, one
    // cache-hot guard-sized check per tracked pointer word.
    let detect = holders.len() as u64 * p.runtime.costs.guard;
    // Cost model, recovery: copy the damaged frame word-by-word (load +
    // store per 8 bytes), patch registers, rewrite the repaired words.
    let recover =
        (report.bytes_moved / 8) * 2 + report.regs_patched as u64 + report.repaired_words as u64;
    // Layered scrub: page-granularity, so the scrubber reads the entire
    // resident set; then the corrupted process is killed and restarted.
    let resident_words = p.interp.mem.resident_pages() as u64 * 4096 / 8;
    let layered = resident_words * 2 + startup(layered.isolation).total_cycles(mc).get();
    match sys.processes[pid].run_slice(u64::MAX / 4) {
        ExecStatus::Done(Some(Val::I(v))) => {
            assert_eq!(v, n * (n - 1) / 2, "post-recovery result corrupted")
        }
        other => panic!("process did not finish after recovery: {other:?}"),
    }
    Row {
        class: FaultClass::BitFlip,
        injected: plan.injected(FaultClass::BitFlip),
        detected: 1,
        recovered: 1,
        interwoven: detect + recover,
        layered,
        note: "ledger audit + relocate vs full scrub + restart",
    }
}

/// Virtines killed mid-call, restarted from the snapshot pool; the layered
/// comparison re-launches through the commodity stack's isolation path.
fn virtine_row(mc: &MachineConfig, layered: &ComposedStack) -> Row {
    let fibp = interweave_ir::programs::fib(18);
    let image = extract_one(&fibp.module, fibp.entry);
    let mut probe = Virtine::new(image.clone());
    probe.invoke(&fibp.args, u64::MAX / 4);
    let guest = probe.guest_cycles;
    // A budget only 4/3 of the guest's runtime: a uniform kill point lands
    // on a live guest three times out of four.
    let budget = guest + guest / 3;
    let reqs = 20usize;

    let serve = |cfg: FaultConfig| {
        let mut faults = FaultPlan::new(cfg);
        let mut w = Wasp::new(image.clone(), mc.clone());
        let mut total = 0u64;
        let mut restarts = 0u64;
        for _ in 0..reqs {
            let (outcome, t, r) = w.invoke_recovering(&fibp.args, budget, &mut faults, 16);
            assert!(
                matches!(
                    outcome,
                    interweave_virtines::context::VirtineOutcome::Returned(_)
                ),
                "every request must eventually complete"
            );
            total += t.get();
            restarts += r as u64;
        }
        assert_eq!(w.stats.restarts, restarts);
        (faults, w.stats.faults_detected, total, restarts)
    };

    let (_, _, t_quiet, r_quiet) = serve(FaultConfig::quiet(SEED));
    assert_eq!(r_quiet, 0, "quiet plan must not restart anything");
    let (plan, detected, t_fault, restarts) = serve(FaultConfig {
        virtine_kill: 0.5,
        ..FaultConfig::quiet(SEED)
    });
    assert!(restarts > 0, "p=0.5 kills over 20 requests must land");
    Row {
        class: FaultClass::VirtineKill,
        injected: plan.injected(FaultClass::VirtineKill),
        detected,
        recovered: restarts,
        // Measured: total extra latency the kills cost (wasted partial
        // executions + snapshot restores), per recovered kill.
        interwoven: (t_fault - t_quiet) / restarts,
        // Legacy FaaS isolation restarts with fork+exec and re-runs the
        // whole request.
        layered: startup(layered.isolation).total_cycles(mc).get() + guest,
        note: "snapshot restart vs fork+exec re-run",
    }
}

fn main() {
    let mc = MachineConfig::xeon_server_2s();
    let h = Harness::new(vec![
        Scenario::new("interwoven", StackConfig::nautilus(), mc.clone()),
        Scenario::new("layered", StackConfig::commodity(), mc.clone()),
    ]);
    let interwoven = h.stack("interwoven");
    let layered = h.stack("layered");
    let (lost, delayed) = ipi_rows(&mc);
    let rows_data = vec![
        lost,
        delayed,
        alloc_row(&interwoven),
        bit_flip_row(&mc, &layered),
        virtine_row(&mc, &layered),
    ];

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for r in &rows_data {
        assert!(r.injected > 0, "every class must inject");
        assert!(r.recovered > 0, "every class must recover");
        rows.push(vec![
            s(r.class.name()),
            s(r.injected),
            s(r.detected),
            s(r.recovered),
            s(r.interwoven),
            s(r.layered),
            f(r.layered as f64 / r.interwoven as f64, 1) + "x",
            s(r.note),
        ]);
        json.push(JsonRow {
            class: r.class.name().to_string(),
            injected: r.injected,
            detected: r.detected,
            recovered: r.recovered,
            interwoven_cycles: r.interwoven,
            layered_cycles: r.layered,
        });
    }
    h.table(
        &format!("TAB-FAULTS — recovery cost per fault class (seed {SEED:#x})"),
        &[
            "fault class",
            "injected",
            "detected",
            "recovered",
            "interwoven (cyc)",
            "layered (cyc)",
            "advantage",
            "recovery path",
        ],
        &rows,
    );
    let total: u64 = rows_data.iter().map(|r| r.injected).sum();
    println!(
        "{} faults injected across {} classes; every one detected and recovered; no sim aborted",
        total,
        rows_data.len()
    );
    h.finish(&json);
}
