//! §IV-A: the CARAT overhead table — naive vs. optimized instrumentation
//! per benchmark kernel, geometric means, guard statistics, and the paging
//! comparison. Also demonstrates defragmentation at a quiescent point.

use interweave_bench::{f, print_table, s};
use interweave_carat::overhead::{geomean_overheads, run_suite};
use serde::Serialize;

#[derive(Serialize)]
struct JsonRow {
    bench: String,
    naive_pct: f64,
    opt_pct: f64,
    paging_pct: f64,
    dyn_guards_naive: u64,
    dyn_guards_opt: u64,
}

fn main() {
    let rows_data = run_suite(6);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for r in &rows_data {
        rows.push(vec![
            s(&r.name),
            s(r.base_cycles),
            f(r.naive_pct(), 2) + "%",
            f(r.opt_pct(), 2) + "%",
            f(r.paging_pct(), 2) + "%",
            format!("{} → {}", r.static_guards_naive, r.static_guards_opt),
            format!("{} → {}", r.dyn_guards_naive, r.dyn_guards_opt),
        ]);
        json.push(JsonRow {
            bench: r.name.clone(),
            naive_pct: r.naive_pct(),
            opt_pct: r.opt_pct(),
            paging_pct: r.paging_pct(),
            dyn_guards_naive: r.dyn_guards_naive,
            dyn_guards_opt: r.dyn_guards_opt,
        });
    }
    print_table(
        "TAB-CARAT — instrumentation overhead per kernel",
        &[
            "kernel",
            "base cycles",
            "naive",
            "optimized",
            "paging",
            "static guards",
            "dynamic guards",
        ],
        &rows,
    );
    let (naive_gm, opt_gm) = geomean_overheads(&rows_data);
    println!(
        "geomean overhead: naive {naive_gm:.2}%  →  optimized {opt_gm:.2}%   (paper: <6% geomean after optimization)"
    );

    // Defragmentation demonstration: a fragmenting linked-list process is
    // compiled, attested, admitted as a PIK process, run until its
    // quiescent yield, compacted by the kernel, and resumed.
    use interweave_carat::defrag::{compact, fragmentation_demo};
    use interweave_carat::pik::PikSystem;
    use interweave_ir::interp::ExecStatus;
    use interweave_ir::types::Val;
    let (demo_m, demo_entry) = fragmentation_demo("list");
    let n = 64i64;
    let mut sys = PikSystem::new();
    let (m, att) = sys.compile(demo_m);
    let pid = sys
        .admit(m, att, demo_entry, vec![Val::I(n)])
        .expect("attested module admits");
    // Run until the process's quiescent yield, then compact.
    loop {
        match sys.processes[pid].run_slice(100_000) {
            ExecStatus::Yielded => break,
            ExecStatus::OutOfFuel => continue,
            other => panic!("unexpected status before quiesce: {other:?}"),
        }
    }
    let p = &mut sys.processes[pid];
    let report = compact(&mut p.interp, &mut p.runtime);
    print_table(
        "CARAT defragmentation at a PIK quiescent point",
        &["metric", "value"],
        &[
            vec![s("allocations moved"), s(report.moves)],
            vec![s("bytes relocated"), s(report.bytes_moved)],
            vec![s("registers patched"), s(report.regs_patched)],
            vec![s("free holes before"), s(report.holes_before)],
            vec![s("free holes after"), s(report.holes_after)],
        ],
    );
    // Resume after compaction and verify the process still computes the
    // right answer through its patched pointers.
    match sys.processes[pid].run_slice(u64::MAX / 4) {
        ExecStatus::Done(Some(Val::I(v))) => {
            assert_eq!(v, n * (n - 1) / 2, "post-defrag result corrupted");
            println!("post-defrag list walk: sum = {v} (correct)");
        }
        other => panic!("process did not finish after defrag: {other:?}"),
    }

    interweave_bench::maybe_dump_json(&json);
}
