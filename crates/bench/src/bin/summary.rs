//! One-screen scoreboard: every headline claim, regenerated at reduced
//! scale in a few seconds. The full-scale binaries (fig3..tab_*) remain the
//! reference; this is the "is everything still standing?" view.

use interweave_bench::{f, print_table, s};
use interweave_core::machine::MachineConfig;
use interweave_core::Cycles;

fn main() {
    let mut rows: Vec<Vec<String>> = Vec::new();

    // Fig. 3 — heartbeat.
    {
        use interweave_heartbeat::sim::{run_heartbeat, HeartbeatConfig, SignalKind};
        let mut nk = HeartbeatConfig::fig3(SignalKind::NkIpi, 20.0, Cycles(1000));
        nk.duration_us = 10_000.0;
        let mut lx = HeartbeatConfig::fig3(SignalKind::LinuxSignals, 20.0, Cycles(1000));
        lx.duration_us = 10_000.0;
        let (nk, lx) = (run_heartbeat(&nk), run_heartbeat(&lx));
        rows.push(vec![
            s("Fig 3"),
            s("NK sustains ♥=20µs; Linux cannot"),
            format!(
                "NK {:.0}% of target, Linux {:.0}%",
                100.0 * nk.fraction_of_target(),
                100.0 * lx.fraction_of_target()
            ),
        ]);
    }

    // Fig. 4 — fibers.
    {
        use interweave_kernel::threads::{switch_cost, OsKind, SwitchKind};
        let knl = MachineConfig::phi_knl();
        let fiber = switch_cost(
            &knl,
            OsKind::Nk,
            SwitchKind::FiberCompilerTimed,
            false,
            false,
        )
        .total();
        rows.push(vec![
            s("Fig 4"),
            s("fiber granularity < 600 cycles"),
            format!("{fiber}"),
        ]);
    }

    // Fig. 6 — OpenMP in the kernel.
    {
        use interweave_omp::nas::bt;
        use interweave_omp::sim::run_omp;
        use interweave_omp::OmpMode;
        let knl = MachineConfig::phi_knl();
        let lx = run_omp(&bt(), OmpMode::LinuxUser, 32, &knl, 42).total;
        let rtk = run_omp(&bt(), OmpMode::Rtk, 32, &knl, 42).total;
        rows.push(vec![
            s("Fig 6"),
            s("RTK ≈ +22% geomean over Linux"),
            format!("BT @32c: {:.2}x", lx.as_f64() / rtk.as_f64()),
        ]);
    }

    // Fig. 7 — selective coherence.
    {
        use interweave_coherence::experiment::{fig7_reduced, mean_energy_reduction, mean_speedup};
        let r = fig7_reduced(24, 11, 4);
        rows.push(vec![
            s("Fig 7"),
            s("selective coherence ≈1.46x, −53% NoC energy"),
            format!(
                "{:.2}x, −{:.0}%",
                mean_speedup(&r),
                100.0 * mean_energy_reduction(&r)
            ),
        ]);
    }

    // §IV-A — CARAT.
    {
        use interweave_carat::overhead::{geomean_overheads, run_suite};
        let (naive, opt) = geomean_overheads(&run_suite(2));
        rows.push(vec![
            s("§IV-A"),
            s("CARAT <6% geomean (naive is costly)"),
            format!("{opt:.1}% optimized / {naive:.0}% naive"),
        ]);
    }

    // §IV-D — virtines.
    {
        use interweave_virtines::wasp::{startup, LaunchPath};
        rows.push(vec![
            s("§IV-D"),
            s("virtine start-up ≈ 100 µs"),
            format!("{}", startup(LaunchPath::VirtineCold).total()),
        ]);
    }

    // §V-D — pipeline interrupts.
    {
        let mc = MachineConfig::xeon_server_2s();
        let pipe = mc.clone().with_pipeline_interrupts();
        rows.push(vec![
            s("§V-D"),
            s("dispatch 100–1000x cheaper"),
            format!(
                "{}x ({} → {})",
                mc.dispatch_cost().get() / pipe.dispatch_cost().get(),
                mc.dispatch_cost(),
                pipe.dispatch_cost()
            ),
        ]);
    }

    // §V-C — blending.
    {
        use interweave_blend::polling::{run_device_experiment, DeviceConfig, DriveMode};
        use interweave_ir::programs;
        let mc = MachineConfig::xeon_server_2s();
        let r = run_device_experiment(
            &programs::stencil1d(64, 8),
            &DeviceConfig {
                mean_gap: 4_000,
                handler: 250,
                seed: 21,
            },
            &mc,
            DriveMode::BlendedPolling,
        );
        rows.push(vec![
            s("§V-C"),
            s("polled drivers, zero interrupts"),
            format!("{} events, {} interrupts", r.serviced, r.interrupts),
        ]);
    }

    // §III — primitives.
    {
        use interweave_kernel::microbench::primitive_table;
        use interweave_kernel::os::{LinuxModel, NkModel};
        let mc = MachineConfig::xeon_server_2s();
        let t = primitive_table(&LinuxModel::new(mc.clone()), &NkModel::new(mc));
        let create = t.iter().find(|r| r.name == "thread create").expect("row");
        rows.push(vec![
            s("§III"),
            s("primitives orders of magnitude faster"),
            format!("thread create {}x", f(create.speedup(), 0)),
        ]);
    }

    print_table(
        "Interweave scoreboard — every headline claim at reduced scale",
        &["experiment", "claim", "measured"],
        &rows,
    );
    println!("\nFull-scale runs: fig3_heartbeat fig4_fibers fig6_openmp fig7_coherence");
    println!("                 tab_carat tab_primitives tab_virtines tab_pipeline tab_blend tab_ablations");
}
