//! One-screen scoreboard: every headline claim, regenerated at reduced
//! scale in a few seconds. The full-scale binaries (fig3..tab_*) remain the
//! reference; this is the "is everything still standing?" view.
//!
//! Besides the printed table, the run writes `BENCH_summary.json` — one
//! record per experiment with its claim, the [`StackConfig`] composition
//! it measures, the measured headline and wall-clock — so CI and
//! bookkeeping scripts can diff results without scraping stdout. The
//! schema lives in `interweave_bench::harness` ([`BenchSummary`]) and
//! every entry's composition is validated through the facade's
//! `StackBuilder` before the section runs.

use interweave_bench::harness::{
    section, section_sharded, BenchSummary, Cli, ExperimentSummary, FaultBreakdownEntry,
    MetricsSeries, MetricsWindow, PrimitiveEntry,
};
use interweave_bench::{f, print_table, s};
use interweave_core::machine::MachineConfig;
use interweave_core::stack::{StackConfig, TimingSource};
use interweave_core::telemetry::CounterEntry;
use interweave_core::Cycles;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let shards = Cli::parse().shards;
    let mut entries: Vec<ExperimentSummary> = Vec::new();
    let xeon = MachineConfig::xeon_server_2s();

    section(
        &mut entries,
        "Fig 3",
        "NK and Aster sustain ♥=20µs; Linux cannot",
        StackConfig::nautilus(),
        xeon.clone().with_cores(16),
        || {
            use interweave_core::stack::OsPoint;
            use interweave_heartbeat::sim::{run_heartbeat, HeartbeatConfig};
            let frac = |os| {
                let mut cfg = HeartbeatConfig::fig3(os, 20.0, Cycles(1000));
                cfg.duration_us = 10_000.0;
                100.0 * run_heartbeat(&cfg).fraction_of_target()
            };
            format!(
                "NK {:.0}%, Aster {:.0}%, Linux {:.0}% of target",
                frac(OsPoint::NkLike),
                frac(OsPoint::AsterLike),
                frac(OsPoint::LinuxLike)
            )
        },
    );

    section(
        &mut entries,
        "framekernel",
        "Aster mid-point: between the endpoints on 9 of 10 primitives",
        StackConfig::framekernel(),
        xeon.clone(),
        || {
            use interweave_kernel::microbench::primitive_table;
            use interweave_kernel::os::{AsterModel, LinuxModel, NkModel};
            let mc = MachineConfig::xeon_server_2s();
            let lx = LinuxModel::new(mc.clone());
            let fk = AsterModel::new(mc.clone());
            let nk = NkModel::new(mc);
            let t = primitive_table(&[("Linux", &lx), ("Aster", &fk), ("Nautilus", &nk)]);
            let between = t
                .iter()
                .filter(|r| r.costs[2] <= r.costs[1] && r.costs[1] <= r.costs[0])
                .count();
            format!("{between} of {} primitives between", t.len())
        },
    );

    section(
        &mut entries,
        "Fig 4",
        "fiber granularity < 600 cycles",
        StackConfig {
            timing: TimingSource::CompilerInjected,
            ..StackConfig::nautilus()
        },
        MachineConfig::phi_knl(),
        || {
            use interweave_core::stack::OsPoint;
            use interweave_kernel::threads::{switch_cost, SwitchKind};
            let knl = MachineConfig::phi_knl();
            let fiber = switch_cost(
                &knl,
                OsPoint::NkLike,
                SwitchKind::FiberCompilerTimed,
                false,
                false,
            )
            .total();
            format!("{fiber}")
        },
    );

    section(
        &mut entries,
        "Fig 6",
        "RTK ≈ +22% geomean over Linux",
        StackConfig::rtk(),
        MachineConfig::phi_knl(),
        || {
            use interweave_omp::nas::bt;
            use interweave_omp::sim::run_omp;
            use interweave_omp::OmpMode;
            let knl = MachineConfig::phi_knl();
            let lx = run_omp(&bt(), OmpMode::LinuxUser, 32, &knl, 42).total;
            let rtk = run_omp(&bt(), OmpMode::Rtk, 32, &knl, 42).total;
            format!("BT @32c: {:.2}x", lx.as_f64() / rtk.as_f64())
        },
    );

    section_sharded(
        &mut entries,
        "Fig 7",
        "selective coherence ≈1.46x, −53% NoC energy",
        StackConfig::interwoven(),
        xeon.clone(),
        shards,
        || {
            use interweave_coherence::experiment::{
                fig7_reduced_sharded, mean_energy_reduction, mean_speedup,
            };
            let r = fig7_reduced_sharded(24, 11, 4, shards);
            format!(
                "{:.2}x, −{:.0}%",
                mean_speedup(&r),
                100.0 * mean_energy_reduction(&r)
            )
        },
    );

    section(
        &mut entries,
        "§IV-A",
        "CARAT <6% geomean (naive is costly)",
        StackConfig::pik(),
        xeon.clone(),
        || {
            use interweave_carat::overhead::{geomean_overheads, run_suite};
            let (naive, opt) = geomean_overheads(&run_suite(2));
            format!("{opt:.1}% optimized / {naive:.0}% naive")
        },
    );

    section(
        &mut entries,
        "§IV-D",
        "virtine start-up ≈ 100 µs",
        StackConfig::interwoven(),
        xeon.clone(),
        || {
            use interweave_virtines::wasp::{startup, LaunchPath};
            format!("{}", startup(LaunchPath::VirtineCold).total())
        },
    );

    section(
        &mut entries,
        "§V-D",
        "dispatch 100–1000x cheaper",
        StackConfig::nautilus(),
        xeon.clone().with_pipeline_interrupts(),
        || {
            let mc = MachineConfig::xeon_server_2s();
            let pipe = mc.clone().with_pipeline_interrupts();
            format!(
                "{}x ({} → {})",
                mc.dispatch_cost().get() / pipe.dispatch_cost().get(),
                mc.dispatch_cost(),
                pipe.dispatch_cost()
            )
        },
    );

    section(
        &mut entries,
        "§V-C",
        "polled drivers, zero interrupts",
        StackConfig::nautilus(),
        xeon.clone(),
        || {
            use interweave_blend::polling::{run_device_experiment, DeviceConfig, DriveMode};
            use interweave_ir::programs;
            let mc = MachineConfig::xeon_server_2s();
            let r = run_device_experiment(
                &programs::stencil1d(64, 8),
                &DeviceConfig {
                    mean_gap: 4_000,
                    handler: 250,
                    seed: 21,
                },
                &mc,
                DriveMode::BlendedPolling,
            );
            format!("{} events, {} interrupts", r.serviced, r.interrupts)
        },
    );

    section(
        &mut entries,
        "simulator",
        "interpreter throughput (page-backed memory)",
        StackConfig::commodity(),
        xeon.clone(),
        || {
            use interweave_ir::interp::{Interp, InterpConfig, NullHooks};
            use interweave_ir::programs;
            // A memory-heavy kernel: the rate here is what every experiment
            // binary's wall-clock scales with.
            let prog = programs::stencil1d(4096, 4);
            let mut it = Interp::new(InterpConfig::default());
            it.start(&prog.module, prog.entry, &prog.args);
            let start = Instant::now();
            let result = it.run_to_completion(&prog.module, &mut NullHooks);
            let secs = start.elapsed().as_secs_f64();
            assert!(result.is_some(), "stencil kernel must run to completion");
            format!("{:.1} Minst/s", it.stats.insts as f64 / secs / 1e6)
        },
    );

    section(
        &mut entries,
        "§III",
        "primitives orders of magnitude faster",
        StackConfig::nautilus(),
        xeon.clone(),
        || {
            use interweave_kernel::microbench::primitive_table;
            use interweave_kernel::os::{AsterModel, LinuxModel, NkModel};
            let mc = MachineConfig::xeon_server_2s();
            let lx = LinuxModel::new(mc.clone());
            let fk = AsterModel::new(mc.clone());
            let nk = NkModel::new(mc);
            let t = primitive_table(&[("Linux", &lx), ("Aster", &fk), ("Nautilus", &nk)]);
            let create = t.iter().find(|r| r.name == "thread create").expect("row");
            format!("thread create {}x", f(create.speedup(0, 2), 0))
        },
    );

    let mut counters: Vec<CounterEntry> = Vec::new();
    section(
        &mut entries,
        "telemetry",
        "every cycle attributed; plane off by default",
        StackConfig::nautilus(),
        xeon.clone().with_cores(4),
        || {
            use interweave_core::telemetry::{Level, Sink};
            use interweave_kernel::work::LoopWork;
            use interweave_kernel::Executor;
            let mc = MachineConfig::xeon_server_2s().with_cores(4);
            let mut e = Executor::new(mc, Cycles(10_000));
            let sink = Sink::on(Level::Counters);
            e.set_telemetry(sink.clone());
            for cpu in 0..4 {
                e.spawn(cpu, Box::new(LoopWork::new(20, Cycles(400))));
            }
            assert!(e.run(), "scoreboard workload must quiesce");
            sink.verify_attribution(e.attribution_clock())
                .expect("every cycle attributed");
            let snap = sink.snapshot().expect("sink is on");
            let n = snap.counters.len();
            counters = snap.counters;
            format!("{n} counters, 100% of {} attributed", e.attribution_clock())
        },
    );

    let mut fault_breakdown: Vec<FaultBreakdownEntry> = Vec::new();
    let mut serve_timeseries: Vec<MetricsWindow> = Vec::new();
    section_sharded(
        &mut entries,
        "serving",
        "chaos serving: bounded tails, balanced fault ledger",
        StackConfig::interwoven(),
        xeon.clone(),
        shards,
        || {
            use interweave_core::arrivals::ArrivalKind;
            use interweave_core::time::Cycles;
            use interweave_core::{FaultClass, FaultConfig};
            use interweave_ir::programs;
            use interweave_ir::types::Val;
            use interweave_kernel::watchdog::WatchdogPolicy;
            use interweave_virtines::extract::extract_one;
            use interweave_virtines::serve::{
                run_serve, MetricsPolicy, PoolOptions, RetryPolicy, ServeConfig, ServiceProfile,
            };
            let prog = programs::fib(10);
            let image = extract_one(&prog.module, prog.entry);
            let args = [Val::I(10)];
            let profile = ServiceProfile::calibrate(&image, &args, u64::MAX / 4);
            let mc = MachineConfig::xeon_server_2s();
            let cfg = ServeConfig {
                arrival: ArrivalKind::Poisson,
                mean_gap_us: 6.0,
                duration_us: 30_000.0,
                seed: 0x5EED_BEEF,
                workers: 6,
                queue_cap: 8,
                deadline_slack_us: 400.0,
                budget: profile.guest_cycles + profile.guest_cycles / 3 + 2,
                pool: PoolOptions {
                    cache_capacity: 32,
                    prewarm: 2,
                    retry: RetryPolicy {
                        max_attempts: 4,
                        base: Cycles(2_000),
                        cap: Cycles(16_000),
                        jitter_frac: 0.25,
                    },
                },
                faults: FaultConfig {
                    virtine_kill: 0.10,
                    drop_ipi: 0.05,
                    alloc_fail: 0.05,
                    ..FaultConfig::quiet(0xC4A0)
                },
                watchdog: WatchdogPolicy::new(Cycles(100_000)),
                // Streaming sinks on: the scoreboard exercises the bounded
                // observability path and embeds the windowed trajectory.
                metrics: MetricsPolicy::Windowed {
                    window: Cycles(6_600_000),
                },
                blackbox: 32,
            };
            let mut r = run_serve(&image, &args, &mc, &cfg, shards);
            assert!(r.accounts_balanced(), "fault ledger must balance");
            if let Some(ts) = &r.series {
                serve_timeseries = MetricsSeries::from_series(ts).windows;
            }
            fault_breakdown = FaultClass::ALL
                .iter()
                .map(|&c| {
                    let a = r.account(c);
                    FaultBreakdownEntry {
                        class: c.name().to_string(),
                        injected: a.injected,
                        recovered: a.recovered,
                        shed: a.shed,
                        absorbed: a.absorbed,
                    }
                })
                .collect();
            format!(
                "{:.0}% goodput, p99 {:.0} µs, {} faults accounted",
                100.0 * r.goodput(),
                r.latency_us.p99(),
                fault_breakdown.iter().map(|e| e.injected).sum::<u64>()
            )
        },
    );

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| vec![s(&e.experiment), s(&e.claim), s(&e.measured)])
        .collect();
    print_table(
        "Interweave scoreboard — every headline claim at reduced scale",
        &["experiment", "claim", "measured"],
        &rows,
    );

    // The machine-readable TAB-NK: every §III primitive priced on all
    // three points of the OS axis.
    let primitives: Vec<PrimitiveEntry> = {
        use interweave_kernel::microbench::primitive_table;
        use interweave_kernel::os::{AsterModel, LinuxModel, NkModel};
        let mc = MachineConfig::xeon_server_2s();
        let lx = LinuxModel::new(mc.clone());
        let fk = AsterModel::new(mc.clone());
        let nk = NkModel::new(mc);
        primitive_table(&[("Linux", &lx), ("Aster", &fk), ("Nautilus", &nk)])
            .into_iter()
            .map(|r| PrimitiveEntry {
                name: r.name.to_string(),
                linux_cycles: r.costs[0].get(),
                aster_cycles: r.costs[1].get(),
                nautilus_cycles: r.costs[2].get(),
            })
            .collect()
    };

    let summary = BenchSummary {
        total_wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        experiments: entries,
        counters,
        fault_breakdown,
        serve_timeseries,
        primitives,
    };
    let json = serde_json::to_string_pretty(&summary).expect("serializable summary");
    std::fs::write("BENCH_summary.json", json).expect("writable BENCH_summary.json");
    println!("\n(machine-readable results written to BENCH_summary.json)");
    println!("\nFull-scale runs: fig3_heartbeat fig4_fibers fig6_openmp fig7_coherence");
    println!("                 tab_carat tab_primitives tab_virtines tab_pipeline tab_blend tab_ablations");
    println!("                 tab_faults tab_profile tab_serve");
}
