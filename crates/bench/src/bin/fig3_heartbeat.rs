//! Fig. 3: achieved and target heartbeat rate across the OS axis —
//! Linux, the Aster-like framekernel, and Nautilus.
//!
//! Reproduces the figure's structure: for each TPAL-style benchmark and
//! ♥ ∈ {100 µs, 20 µs} on 16 CPUs, the achieved rate as a fraction of
//! target, the inter-beat stability (CV), and the scheduling overhead —
//! plus the §V-D pipeline-interrupt ablation. The mechanisms compared are
//! declared as stack compositions and composed through the harness;
//! `--os <name>` restricts the sweep to one point of the axis.

use interweave::compose::ComposedStack;
use interweave_bench::harness::{Harness, Scenario};
use interweave_bench::{f, s};
use interweave_core::machine::MachineConfig;
use interweave_core::stack::StackConfig;
use interweave_core::Cycles;
use interweave_heartbeat::sim::{fig3_benchmarks, run_heartbeat, HeartbeatConfig};
use serde::Serialize;

#[derive(Serialize)]
struct JsonRow {
    bench: String,
    target_us: f64,
    mechanism: String,
    fraction_of_target: f64,
    interbeat_cv: f64,
    overhead_pct: f64,
    coalesced: u64,
}

/// The figure's heartbeat setup for one composed stack: the stack picks
/// the signaling mechanism and the machine (including delivery mode).
fn cfg_for(stack: &ComposedStack, target_us: f64, handler: Cycles) -> HeartbeatConfig {
    let mut cfg = HeartbeatConfig::fig3(stack.config.os, target_us, handler);
    cfg.machine = stack.machine().clone();
    cfg
}

fn main() {
    let mc = MachineConfig::xeon_server_2s().with_cores(16);
    let h = Harness::new(vec![
        Scenario::new("linux", StackConfig::commodity(), mc.clone()),
        Scenario::new("aster", StackConfig::framekernel(), mc.clone()),
        Scenario::new("nautilus", StackConfig::nautilus(), mc.clone()),
        // §V-D ablation: the same interwoven stack on pipeline-interrupt
        // hardware — a composition the builder admits only on the NK path.
        Scenario::new(
            "nautilus+pipeline",
            StackConfig::nautilus(),
            mc.with_pipeline_interrupts(),
        ),
    ]);
    // The figure's mechanism columns: the whole OS axis, or the one point
    // `--os` selects.
    let mechanisms: Vec<&Scenario> = h.scenarios()[..3]
        .iter()
        .filter(|sc| h.os().is_none_or(|os| sc.config.os == os))
        .collect();

    let mut json = Vec::new();
    for &target_us in &[100.0, 20.0] {
        // One parallel sweep per mechanism over the benchmark suite.
        let results: Vec<Vec<_>> = mechanisms
            .iter()
            .map(|sc| {
                sc.sweep(fig3_benchmarks(), |stack, (bench, handler)| {
                    let r = run_heartbeat(&cfg_for(stack, target_us, handler));
                    (bench, stack.config.os.name(), r)
                })
            })
            .collect();
        let mut rows = Vec::new();
        for i in 0..fig3_benchmarks().len() {
            for swept in &results {
                let (bench, mechanism, r) = &swept[i];
                rows.push(vec![
                    s(bench),
                    s(mechanism),
                    f(r.target_rate, 1),
                    f(r.achieved_rate, 1),
                    f(100.0 * r.fraction_of_target(), 1) + "%",
                    f(r.interbeat_cv, 3),
                    f(r.overhead_pct, 2) + "%",
                    s(r.coalesced),
                ]);
                json.push(JsonRow {
                    bench: (*bench).into(),
                    target_us,
                    mechanism: (*mechanism).into(),
                    fraction_of_target: r.fraction_of_target(),
                    interbeat_cv: r.interbeat_cv,
                    overhead_pct: r.overhead_pct,
                    coalesced: r.coalesced,
                });
            }
        }
        h.table(
            &format!("Fig. 3 — heartbeat rate, ♥ = {target_us} µs, 16 CPUs"),
            &[
                "benchmark",
                "mechanism",
                "target/ms",
                "achieved/ms",
                "of target",
                "CV",
                "overhead",
                "coalesced",
            ],
            &rows,
        );
    }

    // §V-D ablation: pipeline interrupts on the Nautilus path.
    let idt = run_heartbeat(&cfg_for(&h.stack("nautilus"), 20.0, Cycles(1000)));
    let pipe = run_heartbeat(&cfg_for(&h.stack("nautilus+pipeline"), 20.0, Cycles(1000)));
    h.table(
        "§V-D ablation — Nautilus heartbeat overhead at ♥ = 20 µs by delivery mode",
        &["delivery", "overhead"],
        &[
            vec![s("IDT dispatch"), f(idt.overhead_pct, 2) + "%"],
            vec![s("pipeline-branch dispatch"), f(pipe.overhead_pct, 2) + "%"],
        ],
    );

    // End-to-end: what the delivered beats buy — heartbeat-scheduled loop
    // speedup with bounded overhead.
    use interweave_heartbeat::scaling::{scaling_sweep, ScalingConfig};
    let cfg = ScalingConfig::default_nk();
    let pts = scaling_sweep(&cfg, &[1, 2, 4, 8, 16]);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                s(p.workers),
                f(p.speedup, 2) + "x",
                s(p.promotions),
                s(p.steals),
                f(100.0 * p.overhead_fraction, 2) + "%",
            ]
        })
        .collect();
    h.table(
        "Heartbeat scheduling payoff — loop speedup via promotion (NK path, ♥=20 µs)",
        &["workers", "speedup", "promotions", "steals", "overhead"],
        &rows,
    );

    println!(
        "\nPaper: Nautilus hits target with stable rate at both 100 µs and 20 µs;\n\
         Linux undershoots at 20 µs with unsteady rates. Overheads: Linux 13–22 %,\n\
         Nautilus ≤ 4.9 % (see EXPERIMENTS.md for measured-vs-paper discussion).\n\
         The Aster-like framekernel sustains both targets like Nautilus, with\n\
         slightly higher overhead and a small but nonzero rate CV."
    );
    h.finish(&json);
}
