//! Fig. 3: achieved and target heartbeat rate in Nautilus and Linux.
//!
//! Reproduces the figure's structure: for each TPAL-style benchmark and
//! ♥ ∈ {100 µs, 20 µs} on 16 CPUs, the achieved rate as a fraction of
//! target, the inter-beat stability (CV), and the scheduling overhead —
//! plus the §V-D pipeline-interrupt ablation.

use interweave_bench::{f, print_table, s};
use interweave_heartbeat::sim::{fig3_benchmarks, run_heartbeat, HeartbeatConfig, SignalKind};
use serde::Serialize;

#[derive(Serialize)]
struct JsonRow {
    bench: String,
    target_us: f64,
    mechanism: String,
    fraction_of_target: f64,
    interbeat_cv: f64,
    overhead_pct: f64,
    coalesced: u64,
}

fn main() {
    let mut json = Vec::new();
    for &target_us in &[100.0, 20.0] {
        let mut rows = Vec::new();
        for (bench, handler) in fig3_benchmarks() {
            for kind in [SignalKind::LinuxSignals, SignalKind::NkIpi] {
                let r = run_heartbeat(&HeartbeatConfig::fig3(kind, target_us, handler));
                rows.push(vec![
                    s(bench),
                    s(kind.name()),
                    f(r.target_rate, 1),
                    f(r.achieved_rate, 1),
                    f(100.0 * r.fraction_of_target(), 1) + "%",
                    f(r.interbeat_cv, 3),
                    f(r.overhead_pct, 2) + "%",
                    s(r.coalesced),
                ]);
                json.push(JsonRow {
                    bench: bench.into(),
                    target_us,
                    mechanism: kind.name().into(),
                    fraction_of_target: r.fraction_of_target(),
                    interbeat_cv: r.interbeat_cv,
                    overhead_pct: r.overhead_pct,
                    coalesced: r.coalesced,
                });
            }
        }
        print_table(
            &format!("Fig. 3 — heartbeat rate, ♥ = {target_us} µs, 16 CPUs"),
            &[
                "benchmark",
                "mechanism",
                "target/ms",
                "achieved/ms",
                "of target",
                "CV",
                "overhead",
                "coalesced",
            ],
            &rows,
        );
    }

    // §V-D ablation: pipeline interrupts on the Nautilus path.
    let mut rows = Vec::new();
    {
        let &target_us = &20.0;
        let base =
            HeartbeatConfig::fig3(SignalKind::NkIpi, target_us, interweave_core::Cycles(1000));
        let idt = run_heartbeat(&base);
        let mut pipe_cfg = base.clone();
        pipe_cfg.machine = pipe_cfg.machine.with_pipeline_interrupts();
        let pipe = run_heartbeat(&pipe_cfg);
        rows.push(vec![s("IDT dispatch"), f(idt.overhead_pct, 2) + "%"]);
        rows.push(vec![
            s("pipeline-branch dispatch"),
            f(pipe.overhead_pct, 2) + "%",
        ]);
    }
    print_table(
        "§V-D ablation — Nautilus heartbeat overhead at ♥ = 20 µs by delivery mode",
        &["delivery", "overhead"],
        &rows,
    );

    // End-to-end: what the delivered beats buy — heartbeat-scheduled loop
    // speedup with bounded overhead.
    use interweave_heartbeat::scaling::{scaling_sweep, ScalingConfig};
    let cfg = ScalingConfig::default_nk();
    let pts = scaling_sweep(&cfg, &[1, 2, 4, 8, 16]);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                s(p.workers),
                f(p.speedup, 2) + "x",
                s(p.promotions),
                s(p.steals),
                f(100.0 * p.overhead_fraction, 2) + "%",
            ]
        })
        .collect();
    print_table(
        "Heartbeat scheduling payoff — loop speedup via promotion (NK path, ♥=20 µs)",
        &["workers", "speedup", "promotions", "steals", "overhead"],
        &rows,
    );

    println!(
        "\nPaper: Nautilus hits target with stable rate at both 100 µs and 20 µs;\n\
         Linux undershoots at 20 µs with unsteady rates. Overheads: Linux 13–22 %,\n\
         Nautilus ≤ 4.9 % (see EXPERIMENTS.md for measured-vs-paper discussion)."
    );
    interweave_bench::maybe_dump_json(&json);
}
