//! TAB-SERVE — open-loop virtine serving under chaos.
//!
//! A serving plane pushes seeded open-loop arrivals (requests do not wait
//! for completions, so queueing collapse is observable) through a sharded
//! executor over a calibrated Wasp-pool model, and sweeps offered load
//! across the saturation knee while a [`FaultConfig`] chaos plan scales
//! with it. Robustness machinery under test:
//!
//! - admission control: per-worker queue-depth caps plus predicted-wait
//!   deadline shedding — overload degrades into *accounted* shedding, the
//!   tail of admitted requests stays bounded;
//! - bounded retry: killed virtines restart from snapshot with exponential
//!   backoff + seeded jitter, then surface a typed error when the budget
//!   exhausts (the request is shed, not lost);
//! - watchdog reclaim: completion kicks dropped by the delivery fabric are
//!   picked up at the next watchdog scan (latency cost, never a hang);
//! - snapshot-cache admission: alloc-fault pressure evicts warm snapshots
//!   and the next request pays a cold start — the "layered" scenario
//!   (cache capacity 0, every request cold-boots) shows what the tail
//!   looks like without an interwoven pool.
//!
//! Every fault class keeps a ledger: `injected == recovered + shed +
//! absorbed`, asserted per class. The whole sweep is driven by one fixed
//! seed and the serving kernel is shard-invariant: two runs — and runs at
//! any `--shards` count — are byte-identical, which CI checks by diffing a
//! double run and byte-comparing `--shards 1` against `--shards 4`.
//!
//! Knobs (golden CI runs pass none): `--offered-load <x>` serves a single
//! load point at `x`× the calibrated saturation capacity instead of the
//! sweep; `--duration-ms <ms>` and `--arrival <poisson|bursty|diurnal>`
//! override the run length and the arrival process. `--metrics-out
//! <path>` flips the serving plane onto its bounded streaming sinks —
//! windowed quantile sketches instead of exact per-request sample
//! vectors, so memory stays flat over million-invocation campaigns — and
//! writes the windowed offered/completed/shed/p50/p99 trajectory as
//! JSON; `--window-cycles <n>` overrides the roll-up width (default
//! 6.6 M cycles = 2 ms of simulated time). With `--metrics-out` set,
//! `--trace-out <path>` additionally exports the trajectory as Perfetto
//! counter tracks.

use interweave_bench::harness::{Harness, Scenario};
use interweave_bench::{f, s};
use interweave_core::arrivals::ArrivalKind;
use interweave_core::machine::MachineConfig;
use interweave_core::stack::StackConfig;
use interweave_core::telemetry::{
    chrome_trace_json_with_counters, CounterTrack, Layer, TimeSeries,
};
use interweave_core::time::Cycles;
use interweave_core::{FaultClass, FaultConfig};
use interweave_ir::programs;
use interweave_ir::types::Val;
use interweave_kernel::watchdog::WatchdogPolicy;
use interweave_virtines::extract::extract_one;
use interweave_virtines::serve::{
    run_serve, MetricsPolicy, PoolOptions, RetryPolicy, ServeConfig, ServeReport, ServiceProfile,
};
use interweave_virtines::wasp::snapshot_restore;
use serde::Serialize;

/// The campaign seed. Fixed: the whole point is a bit-reproducible run.
const SEED: u64 = 0x5E4E;

/// Offered-load sweep, as multiples of the calibrated saturation capacity.
const SWEEP: [f64; 5] = [0.3, 0.6, 0.9, 1.2, 1.5];

/// Chaos rates at 1.0× load; the plan scales linearly with offered load
/// (more traffic, more faults), capped well below certainty.
const BASE_KILL: f64 = 0.10;
const BASE_DROP_KICK: f64 = 0.05;
const BASE_CACHE_OOM: f64 = 0.05;

/// Logical serving workers. Fixed — the report is identical at every
/// `--shards` count, so this is a model parameter, not a thread count.
const WORKERS: usize = 8;

/// Tail bound the admission control must hold for admitted requests at
/// every load point, µs. Generous against the measured knee (p99 ≈ 450 µs
/// at 1.5×) but far below the seconds-long open-loop collapse that an
/// uncontrolled queue produces at the same load.
const P99_BOUND_US: f64 = 2_000.0;

/// Default streaming roll-up window: 2 ms of simulated time at the
/// 3.3 GHz server clock.
const DEFAULT_WINDOW_CYCLES: u64 = 6_600_000;

/// Per-worker flight-recorder ring capacity. The recorder is passive —
/// it surfaces only in the blackbox dump attached to a fault-ledger
/// panic — so keeping it armed costs nothing on pinned stdout.
const BLACKBOX_EVENTS: usize = 64;

#[derive(Serialize)]
struct JsonRow {
    scenario: String,
    arrival: String,
    load_x: f64,
    offered: u64,
    completed: u64,
    shed_queue: u64,
    shed_deadline: u64,
    shed_retry: u64,
    wd_reclaims: u64,
    goodput: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

fn json_row(scenario: &str, arrival: ArrivalKind, load_x: f64, r: &mut ServeReport) -> JsonRow {
    JsonRow {
        scenario: scenario.to_string(),
        arrival: arrival.name().to_string(),
        load_x,
        offered: r.offered,
        completed: r.completed,
        shed_queue: r.shed_queue,
        shed_deadline: r.shed_deadline,
        shed_retry: r.shed_retry,
        wd_reclaims: r.wd_reclaims,
        goodput: r.goodput(),
        p50_us: r.latency_us.p50(),
        p99_us: r.latency_us.p99(),
        p999_us: r.latency_us.p999(),
    }
}

/// The chaos plan at `load_x`× saturation.
fn chaos(load_x: f64) -> FaultConfig {
    FaultConfig {
        virtine_kill: (BASE_KILL * load_x).min(0.5),
        drop_ipi: (BASE_DROP_KICK * load_x).min(0.5),
        alloc_fail: (BASE_CACHE_OOM * load_x).min(0.5),
        ..FaultConfig::quiet(SEED ^ 0xC4A05)
    }
}

fn main() {
    let mc = MachineConfig::xeon_server_2s();
    let h = Harness::new(vec![
        Scenario::new("interwoven", StackConfig::interwoven(), mc.clone()),
        Scenario::new("layered", StackConfig::commodity(), mc.clone()),
    ]);
    h.stack("interwoven");
    h.stack("layered");
    let shards = h.shards();

    // Calibrate the service from one real isolated execution, then derive
    // the saturation capacity from the warm-path arithmetic the pool model
    // (and the real Wasp) charges per request.
    let prog = programs::fib(12);
    let image = extract_one(&prog.module, prog.entry);
    let args = [Val::I(12)];
    let profile = ServiceProfile::calibrate(&image, &args, u64::MAX / 4);
    assert!(profile.ok, "calibration run must return");
    let warm =
        snapshot_restore(profile.dirty_pages).total_cycles(&mc) + Cycles(profile.guest_cycles);
    let warm_us = mc.freq.us(warm).get();
    // WORKERS warm servers drain one request per `warm_us` each: offered
    // load 1.0× means a global mean gap of `warm_us / WORKERS`.
    let sat_gap_us = warm_us / WORKERS as f64;

    let retry = RetryPolicy {
        max_attempts: 4,
        base: Cycles(2_000),
        cap: Cycles(16_000),
        jitter_frac: 0.25,
    };
    let arrival = h.arrival().unwrap_or(ArrivalKind::Poisson);
    let duration_us = h.duration_ms().unwrap_or(40.0) * 1e3;
    let loads: Vec<f64> = match h.offered_load() {
        Some(x) => vec![x],
        None => SWEEP.to_vec(),
    };
    // `--metrics-out` flips every run onto the bounded streaming sinks;
    // golden runs pass no flags and keep the exact sample vectors.
    let metrics = match h.metrics_out() {
        Some(_) => MetricsPolicy::Windowed {
            window: Cycles(h.window_cycles().unwrap_or(DEFAULT_WINDOW_CYCLES)),
        },
        None => MetricsPolicy::Exact,
    };
    let cfg_at =
        |arrival: ArrivalKind, load_x: f64, cache_capacity: usize, prewarm: usize| ServeConfig {
            arrival,
            mean_gap_us: sat_gap_us / load_x,
            duration_us,
            seed: SEED,
            workers: WORKERS,
            queue_cap: 8,
            deadline_slack_us: 400.0,
            budget: profile.guest_cycles + profile.guest_cycles / 3 + 2,
            pool: PoolOptions {
                cache_capacity,
                prewarm,
                retry,
            },
            faults: chaos(load_x),
            watchdog: WatchdogPolicy::new(Cycles(100_000)),
            metrics,
            blackbox: BLACKBOX_EVENTS,
        };

    let mut json = Vec::new();

    // ── Curve 1: goodput and tails vs offered load, interwoven pool vs
    // layered cold-boot serving, chaos scaling with load. ──
    let mut rows = Vec::new();
    let mut knee: Option<ServeReport> = None;
    let mut metrics_series: Option<TimeSeries> = None;
    for &load_x in &loads {
        let mut iw = run_serve(&image, &args, &mc, &cfg_at(arrival, load_x, 32, 2), shards);
        let mut ly = run_serve(&image, &args, &mc, &cfg_at(arrival, load_x, 0, 0), shards);
        if let Some(ts) = &iw.series {
            metrics_series = Some(ts.clone());
        }
        for r in [&iw, &ly] {
            assert!(
                r.accounts_balanced(),
                "fault ledger must balance at {load_x}x"
            );
            assert_eq!(
                r.offered,
                r.completed + r.shed(),
                "requests must be conserved"
            );
        }
        assert!(
            iw.latency_us.p99() <= P99_BOUND_US,
            "admitted p99 {} µs breaches the shedding bound at {load_x}x",
            iw.latency_us.p99()
        );
        rows.push(vec![
            f(load_x, 1) + "x",
            s(iw.offered),
            f(100.0 * iw.goodput(), 1) + "%",
            f(iw.latency_us.p50(), 0),
            f(iw.latency_us.p99(), 0),
            f(iw.latency_us.p999(), 0),
            format!("{}/{}/{}", iw.shed_queue, iw.shed_deadline, iw.shed_retry),
            f(100.0 * ly.goodput(), 1) + "%",
            f(ly.latency_us.p99(), 0),
        ]);
        json.push(json_row("interwoven", arrival, load_x, &mut iw));
        json.push(json_row("layered", arrival, load_x, &mut ly));
        if load_x >= 1.49 {
            knee = Some(iw);
        }
    }
    h.table(
        &format!(
            "TAB-SERVE — open-loop {} serving vs offered load (seed {SEED:#x}, {WORKERS} workers, chaos scales with load)",
            arrival.name()
        ),
        &[
            "load",
            "offered",
            "goodput",
            "p50 µs",
            "p99 µs",
            "p999 µs",
            "shed q/d/r",
            "layered goodput",
            "layered p99 µs",
        ],
        &rows,
    );

    // ── Curve 2: arrival-shape sensitivity at the 0.9× knee. ──
    if h.offered_load().is_none() {
        let mut rows = Vec::new();
        for &kind in ArrivalKind::ALL.iter() {
            let mut r = run_serve(&image, &args, &mc, &cfg_at(kind, 0.9, 32, 2), shards);
            assert!(
                r.accounts_balanced(),
                "ledger must balance for {}",
                kind.name()
            );
            rows.push(vec![
                s(kind.name()),
                s(r.offered),
                f(100.0 * r.goodput(), 1) + "%",
                f(r.latency_us.p50(), 0),
                f(r.latency_us.p99(), 0),
                f(r.latency_us.p999(), 0),
                s(r.wd_reclaims),
            ]);
            json.push(json_row("interwoven", kind, 0.9, &mut r));
        }
        h.table(
            "TAB-SERVE — arrival-shape sensitivity at 0.9x load",
            &[
                "arrival",
                "offered",
                "goodput",
                "p50 µs",
                "p99 µs",
                "p999 µs",
                "wd reclaims",
            ],
            &rows,
        );
    }

    // ── Ledger: where every injected fault landed, at the harshest point
    // of the sweep. ──
    if let Some(peak) = &knee {
        let mut rows = Vec::new();
        let mut injected_total = 0u64;
        for &class in FaultClass::ALL.iter() {
            let a = peak.account(class);
            assert_eq!(
                a.injected,
                a.recovered + a.shed + a.absorbed,
                "{} ledger must balance",
                class.name()
            );
            injected_total += a.injected;
            if a.injected == 0 {
                continue;
            }
            rows.push(vec![
                s(class.name()),
                s(a.injected),
                s(a.recovered),
                s(a.shed),
                s(a.absorbed),
            ]);
        }
        assert!(injected_total > 0, "the chaos plan must inject at 1.5x");
        h.table(
            "TAB-SERVE — fault ledger at 1.5x load (injected == recovered + shed + absorbed)",
            &["fault class", "injected", "recovered", "shed", "absorbed"],
            &rows,
        );
        println!(
            "{injected_total} faults injected at the 1.5x point; every one recovered or accounted as shed; \
             admitted p99 stayed under {P99_BOUND_US:.0} µs at every load",
        );
    }

    // ── Streaming exports: the interwoven trajectory at the last swept
    // load, as windowed JSON and (optionally) Perfetto counter tracks. ──
    if let Some(ts) = &metrics_series {
        h.finish_metrics(ts);
        if let Some(path) = h.trace_out() {
            let tracks = counter_tracks(ts);
            let trace =
                chrome_trace_json_with_counters(&[], &tracks, mc.freq.cycles_per_us(1.0).get());
            std::fs::write(path, trace).expect("writable trace path");
            println!("(trace written to {path})");
        }
    }

    h.finish(&json);
}

/// The windowed trajectory as Perfetto counter tracks, one point per
/// window at its start stamp. Queue depth rides the kernel track (it is
/// admission-queue state); the request counters and the tail ride the
/// virtine track.
fn counter_tracks(ts: &TimeSeries) -> Vec<CounterTrack> {
    let width = ts.width().get();
    let mut offered = Vec::new();
    let mut completed = Vec::new();
    let mut shed = Vec::new();
    let mut depth = Vec::new();
    let mut p99 = Vec::new();
    for (idx, w) in ts.iter() {
        let at = Cycles(idx * width);
        offered.push((at, w.counter("offered") as f64));
        completed.push((at, w.counter("completed") as f64));
        shed.push((at, w.counter("shed") as f64));
        depth.push((at, w.gauge_max("queue_depth").unwrap_or(0) as f64));
        p99.push((at, w.sketch("latency_us").map_or(0.0, |s| s.p99())));
    }
    vec![
        CounterTrack {
            name: "serve.offered",
            layer: Layer::Virtine,
            points: offered,
        },
        CounterTrack {
            name: "serve.completed",
            layer: Layer::Virtine,
            points: completed,
        },
        CounterTrack {
            name: "serve.shed",
            layer: Layer::Virtine,
            points: shed,
        },
        CounterTrack {
            name: "serve.queue_depth_max",
            layer: Layer::Kernel,
            points: depth,
        },
        CounterTrack {
            name: "serve.p99_us",
            layer: Layer::Virtine,
            points: p99,
        },
    ]
}
