//! Design-choice ablations across the workspace:
//!
//! 1. **MSI vs MESI vs selective** — MESI's E state is itself a private-
//!    data optimization; selective deactivation subsumes it.
//! 2. **Disaggregation sweep** — §V-B: "the benefits grow with scale and
//!    disaggregation": stretch cross-domain links and watch selective's
//!    advantage widen.
//! 3. **RISC-V/OpenPiton vs x64** (§V-F) — re-run the Fig. 4 cost
//!    decomposition on open hardware, where trap entry is lean and there is
//!    no mitigation tax: the *relative* interweaving wins shift.
//! 4. **CARAT guard-cost sensitivity** — how the <6 % geomean depends on
//!    the per-guard cost the runtime achieves.

use interweave_bench::{f, parallel_map, print_table, s};
use interweave_coherence::experiment::run_one_on_mesh;
use interweave_coherence::protocol::{CohMode, ProtocolKind, System, SystemConfig};
use interweave_coherence::workloads::fig7_mixes;
use interweave_core::machine::MachineConfig;

fn msi_vs_mesi() {
    // Private read-then-write traffic on one core.
    let run = |protocol, mode| {
        let mut sys = System::new(SystemConfig {
            cores: 8,
            l1_lines: 256,
            mode,
            protocol,
            lat: Default::default(),
        });
        if mode == CohMode::Selective {
            sys.classify(0..512, interweave_coherence::Class::Private(0));
        }
        let mut cycles = 0u64;
        for rep in 0..3 {
            for l in 0..512u64 {
                cycles += sys.read(0, l);
                cycles += sys.write(0, l);
            }
            let _ = rep;
        }
        (cycles, sys.stats.dir_lookups)
    };
    let (msi, msi_dir) = run(ProtocolKind::Msi, CohMode::Full);
    let (mesi, mesi_dir) = run(ProtocolKind::Mesi, CohMode::Full);
    let (sel, sel_dir) = run(ProtocolKind::Mesi, CohMode::Selective);
    print_table(
        "Ablation 1 — protocol family on private read→write traffic (8 cores)",
        &["protocol", "cycles", "directory lookups", "vs MSI"],
        &[
            vec![s("MSI"), s(msi), s(msi_dir), s("1.00x")],
            vec![
                s("MESI (E state)"),
                s(mesi),
                s(mesi_dir),
                f(msi as f64 / mesi as f64, 2) + "x",
            ],
            vec![
                s("MESI + selective deactivation"),
                s(sel),
                s(sel_dir),
                f(msi as f64 / sel as f64, 2) + "x",
            ],
        ],
    );
}

fn disaggregation_sweep() {
    let mut mix = fig7_mixes()[0].clone();
    mix.accesses_per_round /= 2;
    let penalties: Vec<u32> = vec![0, 8, 16, 32, 64];
    let rows = parallel_map(penalties, |pen| {
        let disagg = if pen == 0 { None } else { Some((8usize, pen)) };
        let (full, full_e) = run_one_on_mesh(&mix, 16, CohMode::Full, 11, disagg);
        let (sel, sel_e) = run_one_on_mesh(&mix, 16, CohMode::Selective, 11, disagg);
        vec![
            s(pen),
            f(full as f64 / sel as f64, 3),
            f(100.0 * (1.0 - sel_e / full_e), 1) + "%",
        ]
    });
    print_table(
        "Ablation 2 — disaggregation (extra cross-domain hops, 16 cores, samplesort)",
        &[
            "cross-domain penalty (hops)",
            "selective speedup",
            "NoC energy cut",
        ],
        &rows,
    );
}

fn riscv_vs_x64_fig4() {
    use interweave_core::stack::OsPoint;
    use interweave_kernel::threads::{switch_cost, SwitchKind};
    let machines = [MachineConfig::phi_knl(), MachineConfig::riscv_openpiton()];
    let mut rows = Vec::new();
    for mc in &machines {
        let thread = switch_cost(
            mc,
            OsPoint::LinuxLike,
            SwitchKind::ThreadInterrupt,
            false,
            true,
        )
        .total();
        let nk = switch_cost(
            mc,
            OsPoint::NkLike,
            SwitchKind::ThreadInterrupt,
            false,
            true,
        )
        .total();
        let fiber = switch_cost(
            mc,
            OsPoint::NkLike,
            SwitchKind::FiberCompilerTimed,
            false,
            true,
        )
        .total();
        rows.push(vec![
            s(&mc.name),
            s(thread.get()),
            s(nk.get()),
            s(fiber.get()),
            f(thread.as_f64() / fiber.as_f64(), 1) + "x",
        ]);
    }
    print_table(
        "Ablation 3 — Fig. 4 on open hardware (§V-F): switch costs (FP, cycles)",
        &[
            "machine",
            "Linux thread",
            "NK thread",
            "comp-timed fiber",
            "end-to-end gain",
        ],
        &rows,
    );
    println!(
        "Open hardware starts closer to the interwoven ideal (lean traps, no\n\
         mitigations), so the same software design wins by a smaller factor —\n\
         the kind of co-design insight §V-F expects the port to expose."
    );
}

fn guard_cost_sensitivity() {
    use interweave_carat::instrument;
    use interweave_carat::overhead::geomean_overheads;
    use interweave_carat::runtime::{CaratRuntime, GuardCosts};
    use interweave_ir::interp::{Interp, InterpConfig, NullHooks};
    use interweave_ir::programs;

    let guard_costs: Vec<u64> = vec![1, 3, 6, 12];
    let rows = parallel_map(guard_costs, |g| {
        let rows: Vec<interweave_carat::overhead::OverheadRow> = programs::suite(3)
            .iter()
            .map(|p| {
                let mut base_it = Interp::new(InterpConfig::default());
                base_it.start(&p.module, p.entry, &p.args);
                base_it.run_to_completion(&p.module, &mut NullHooks);
                let base = base_it.stats.cycles;

                let measure = |optimize: bool| {
                    let mut m = p.module.clone();
                    instrument(&mut m, optimize);
                    let mut rt = CaratRuntime::new();
                    rt.costs = GuardCosts {
                        guard: g,
                        guard_range: g + 2,
                        ..GuardCosts::default()
                    };
                    let mut it = Interp::new(InterpConfig::default());
                    it.start(&m, p.entry, &p.args);
                    it.run_to_completion(&m, &mut rt);
                    it.stats.cycles
                };
                interweave_carat::overhead::OverheadRow {
                    name: p.name.clone(),
                    base_cycles: base,
                    naive_cycles: measure(false),
                    opt_cycles: measure(true),
                    paging_cycles: base,
                    static_guards_naive: 0,
                    static_guards_opt: 0,
                    dyn_guards_naive: 0,
                    dyn_guards_opt: 0,
                }
            })
            .collect();
        let (naive, opt) = geomean_overheads(&rows);
        vec![s(g), f(naive, 2) + "%", f(opt, 2) + "%"]
    });
    print_table(
        "Ablation 4 — CARAT sensitivity to per-guard cost (geomean overheads)",
        &["guard cost (cycles)", "naive", "optimized"],
        &rows,
    );
    println!(
        "Optimization flattens the slope ~4x: hoisting removed the guards that\n\
         multiply the per-guard cost. The residual sensitivity is the pointer-\n\
         chase outlier, whose data-dependent guards cannot hoist."
    );
}

fn main() {
    msi_vs_mesi();
    disaggregation_sweep();
    riscv_vs_x64_fig4();
    guard_cost_sensitivity();
}
