//! §III: the kernel primitives table — thread management and event
//! signaling costs across the OS axis (Linux-like, Aster-like framekernel,
//! Nautilus-like; "orders of magnitude faster" at the NK end), on both
//! server and KNL presets.

use interweave_bench::{f, print_table, s};
use interweave_core::machine::MachineConfig;
use interweave_kernel::microbench::primitive_table;
use interweave_kernel::os::{AsterModel, LinuxModel, NkModel};
use serde::Serialize;

#[derive(Serialize)]
struct JsonRow {
    machine: String,
    primitive: String,
    linux_cycles: u64,
    aster_cycles: u64,
    nautilus_cycles: u64,
    speedup: f64,
}

fn main() {
    let mut json = Vec::new();
    for mc in [MachineConfig::xeon_server_2s(), MachineConfig::phi_knl()] {
        let lx = LinuxModel::new(mc.clone());
        let fk = AsterModel::new(mc.clone());
        let nk = NkModel::new(mc.clone());
        let table = primitive_table(&[("Linux", &lx), ("Aster", &fk), ("Nautilus", &nk)]);
        let rows: Vec<Vec<String>> = table
            .iter()
            .map(|r| {
                json.push(JsonRow {
                    machine: mc.name.clone(),
                    primitive: r.name.into(),
                    linux_cycles: r.costs[0].get(),
                    aster_cycles: r.costs[1].get(),
                    nautilus_cycles: r.costs[2].get(),
                    speedup: r.speedup(0, 2),
                });
                vec![
                    s(r.name),
                    s(r.costs[0].get()),
                    s(r.costs[1].get()),
                    s(r.costs[2].get()),
                    f(r.speedup(0, 2), 1) + "×",
                    format!("{}", mc.freq.us(r.costs[2])),
                ]
            })
            .collect();
        print_table(
            &format!("TAB-NK — kernel primitives on {}", mc.name),
            &[
                "primitive",
                "Linux (cyc)",
                "Aster (cyc)",
                "Nautilus (cyc)",
                "NK speedup",
                "Nautilus wall",
            ],
            &rows,
        );
    }
    // §III's NUMA claim: thread state "always in the most desirable zone".
    use interweave_kernel::numa::placement_comparison;
    let mut rows = Vec::new();
    for mc in [
        MachineConfig::xeon_server_2s(),
        MachineConfig::big_server_8s(),
    ] {
        let (nk, lx) = placement_comparison(&mc, 7);
        rows.push(vec![
            s(&mc.name),
            f(100.0 * nk.remote_fraction, 1) + "%",
            f(100.0 * lx.remote_fraction, 1) + "%",
            f(lx.penalty_per_quantum, 0),
        ]);
    }
    print_table(
        "NUMA placement of thread state (remote fraction; penalty cyc/quantum)",
        &[
            "machine",
            "NK bound",
            "first-touch + balancer",
            "commodity penalty",
        ],
        &rows,
    );

    println!(
        "\nPaper (§III): \"primitives such as thread management and event signaling\n\
         are orders of magnitude faster\"; application speedups 20–40 % over Linux.\n\
         The Aster-like framekernel lands between the endpoints on every\n\
         primitive except the uncontended mutex (its checked RAII lock is\n\
         fatter than the futex fast path)."
    );
    interweave_bench::maybe_dump_json(&json);
}
