//! §IV-D/§V-E: the isolation start-up table — process, container, full VM,
//! cold virtine, snapshotted virtine, bespoke context — plus an end-to-end
//! Fig.-5-style fib invocation through the Wasp pool.

use interweave_bench::{f, print_table, s};
use interweave_core::machine::MachineConfig;
use interweave_ir::programs;
use interweave_ir::types::Val;
use interweave_virtines::bespoke::synthesize;
use interweave_virtines::extract::extract_one;
use interweave_virtines::wasp::{startup, LaunchPath, Wasp};
use serde::Serialize;

#[derive(Serialize)]
struct JsonRow {
    path: String,
    create_us: f64,
    image_us: f64,
    boot_us: f64,
    total_us: f64,
}

fn main() {
    // Fig. 5's fib as the virtine image.
    let fib = programs::fib(20);
    let image = extract_one(&fib.module, fib.entry);
    let spec = synthesize(&image.module);

    let paths = [
        LaunchPath::Process,
        LaunchPath::Container,
        LaunchPath::FullVm,
        LaunchPath::VirtineCold,
        LaunchPath::VirtineSnapshot,
        LaunchPath::Bespoke(spec),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for p in paths {
        let b = startup(p);
        rows.push(vec![
            s(p.name()),
            f(b.create_us, 1),
            f(b.image_us, 1),
            f(b.boot_us, 1),
            f(b.total().get(), 1),
        ]);
        json.push(JsonRow {
            path: p.name().into(),
            create_us: b.create_us,
            image_us: b.image_us,
            boot_us: b.boot_us,
            total_us: b.total().get(),
        });
    }
    print_table(
        "TAB-VIRT — isolated-launch start-up latency (µs)",
        &["launch path", "create", "image", "boot", "TOTAL"],
        &rows,
    );
    println!("Paper (§IV-D): virtine start-up overheads \"as low as 100 µs\".");
    print_table(
        "Bespoke synthesis for the fib image (§V-E)",
        &["feature", "needed?"],
        &[
            vec![s("FP unit"), s(spec.needs_fp)],
            vec![s("heap"), s(spec.needs_heap)],
            vec![s("I/O"), s(spec.needs_io)],
            vec![s("64-bit long mode"), s(spec.needs_long_mode)],
        ],
    );

    // End-to-end: invoke fib(20) repeatedly through the pool.
    let mc = MachineConfig::xeon_server_2s();
    let mut wasp = Wasp::new(image, mc.clone());
    let mut rows = Vec::new();
    for i in 0..4 {
        let (outcome, cycles) = wasp.invoke(&[Val::I(20)], u64::MAX / 4);
        rows.push(vec![
            s(i + 1),
            format!("{outcome:?}"),
            s(cycles.get()),
            format!("{}", mc.freq.us(cycles)),
        ]);
    }
    print_table(
        "Wasp pool: virtine fib(20) invocations (first is cold)",
        &["invocation", "outcome", "cycles", "wall"],
        &rows,
    );
    println!(
        "pool stats: {} cold start(s), {} reuse(s)",
        wasp.stats.cold_starts, wasp.stats.reuses
    );
    // Echo service under Poisson load: the operator's view.
    use interweave_virtines::echo::{run_echo, EchoConfig, ServeMode};
    let fib12 = programs::fib(12);
    let echo_img = extract_one(&fib12.module, fib12.entry);
    let cfg = EchoConfig::default();
    let mut rows = Vec::new();
    for mode in [
        ServeMode::ProcessPerRequest,
        ServeMode::VirtineCold,
        ServeMode::VirtinePooled,
    ] {
        let r = run_echo(&echo_img, &mc, &cfg, mode);
        // A clamped p99 is only a lower bound (the rank overflowed the
        // histogram range) — print it as one, with the overflow share.
        let p99 = if r.p99_clamped {
            format!(
                ">={} ({}% over range)",
                f(r.p99_us, 1),
                f(100.0 * r.tail_overflow, 1)
            )
        } else {
            f(r.p99_us, 1)
        };
        rows.push(vec![
            s(mode.name()),
            s(r.served),
            f(r.latency_us.mean(), 1),
            p99,
            s(r.cold_starts),
        ]);
    }
    print_table(
        "Echo service, Poisson arrivals (mean gap 150 µs), single worker",
        &[
            "strategy",
            "served",
            "mean lat (µs)",
            "p99 (µs)",
            "cold starts",
        ],
        &rows,
    );

    // The isolation spectrum end-to-end: for a *trusted* (attested)
    // function, PIK runs it as a kernel-mode process — admission is paid
    // once, invocation is a call. Virtines isolate *untrusted* functions
    // with a VM boundary per invocation. Same fib(18), both ways.
    use interweave_carat::pik::PikSystem;
    use interweave_ir::interp::ExecStatus;
    let fib18 = programs::fib(18);
    let mut sys = PikSystem::new();
    let (m, att) = sys.compile(fib18.module.clone());
    let pid = sys
        .admit(m, att, fib18.entry, fib18.args.clone())
        .expect("attested");
    let pik_cycles = match sys.processes[pid].run_slice(u64::MAX / 4) {
        ExecStatus::Done(_) => sys.processes[pid].interp.stats.cycles,
        other => panic!("pik run failed: {other:?}"),
    };
    let mut wasp2 = Wasp::new(extract_one(&fib18.module, fib18.entry), mc.clone());
    let (_, virt_cold) = wasp2.invoke(&[Val::I(18)], u64::MAX / 4);
    let (_, virt_warm) = wasp2.invoke(&[Val::I(18)], u64::MAX / 4);
    print_table(
        "Isolation spectrum: invoking attested vs untrusted fib(18)",
        &["mechanism", "trust basis", "cycles", "wall"],
        &[
            vec![
                s("PIK process (guards, §IV-A)"),
                s("compiler attestation + coverage proof"),
                s(pik_cycles),
                format!("{}", mc.freq.us(interweave_core::Cycles(pik_cycles))),
            ],
            vec![
                s("virtine, warm (§IV-D)"),
                s("hardware VM boundary"),
                s(virt_warm.get()),
                format!("{}", mc.freq.us(virt_warm)),
            ],
            vec![
                s("virtine, cold"),
                s("hardware VM boundary"),
                s(virt_cold.get()),
                format!("{}", mc.freq.us(virt_cold)),
            ],
        ],
    );
    println!(
        "Interweaving's point: isolation strength becomes a per-function choice;\n\
attested code pays guard costs instead of VM transitions."
    );

    interweave_bench::maybe_dump_json(&json);
}
