//! # interweave-bench
//!
//! Regeneration harness for every table and figure in the paper. Each
//! binary in `src/bin/` reproduces one experiment and prints the same
//! rows/series the paper reports:
//!
//! | binary            | reproduces |
//! |-------------------|------------|
//! | `fig3_heartbeat`  | Fig. 3 — achieved vs. target heartbeat rate |
//! | `fig4_fibers`     | Fig. 4 — context-switch costs + granularity floors |
//! | `fig6_openmp`     | Fig. 6 — RTK/PIK/CCK vs. Linux OpenMP scaling |
//! | `fig7_coherence`  | Fig. 7 — selective coherence speedup + NoC energy |
//! | `tab_carat`       | §IV-A — CARAT overhead table (<6 % geomean) |
//! | `tab_primitives`  | §III — Nautilus vs. Linux primitive costs |
//! | `tab_virtines`    | §IV-D/§V-E — isolation start-up latency table |
//! | `tab_pipeline`    | §V-D — pipeline-interrupt dispatch + ablation |
//! | `tab_blend`       | §V-C — blended drivers + far-memory sweeps |
//!
//! Each binary accepts `--json <path>` to also dump machine-readable
//! results, used by `EXPERIMENTS.md` bookkeeping.

use serde::Serialize;
use std::fmt::Display;

/// Run `f` over `items` on scoped worker threads (one per item, capped by
/// the parallelism available), preserving input order in the output. The
/// simulators are deterministic and independent per run, so fan-out changes
/// nothing but wall-clock time.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut out: Vec<Option<R>> = items.iter().map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, item) in items.into_iter().enumerate() {
            let f = &f;
            handles.push((i, scope.spawn(move |_| f(item))));
        }
        for (i, h) in handles {
            out[i] = Some(h.join().expect("worker panicked"));
        }
    })
    .expect("scope");
    out.into_iter().map(|r| r.expect("filled")).collect()
}

/// Print a boxed table: header row then aligned data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for r in rows {
        line(r);
    }
}

/// Format a float with fixed decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Format any displayable value.
pub fn s(v: impl Display) -> String {
    v.to_string()
}

/// Write results as JSON when `--json <path>` was passed on the CLI.
pub fn maybe_dump_json<T: Serialize>(value: &T) {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        if let Some(path) = args.get(pos + 1) {
            let json = serde_json::to_string_pretty(value).expect("serializable results");
            std::fs::write(path, json).expect("writable json path");
            println!("(json written to {path})");
        }
    }
}
