//! # interweave-bench
//!
//! Regeneration harness for every table and figure in the paper. Each
//! binary in `src/bin/` reproduces one experiment and prints the same
//! rows/series the paper reports:
//!
//! | binary            | reproduces |
//! |-------------------|------------|
//! | `fig3_heartbeat`  | Fig. 3 — achieved vs. target heartbeat rate |
//! | `fig4_fibers`     | Fig. 4 — context-switch costs + granularity floors |
//! | `fig6_openmp`     | Fig. 6 — RTK/PIK/CCK vs. Linux OpenMP scaling |
//! | `fig7_coherence`  | Fig. 7 — selective coherence speedup + NoC energy |
//! | `tab_carat`       | §IV-A — CARAT overhead table (<6 % geomean) |
//! | `tab_primitives`  | §III — Nautilus vs. Linux primitive costs |
//! | `tab_virtines`    | §IV-D/§V-E — isolation start-up latency table |
//! | `tab_pipeline`    | §V-D — pipeline-interrupt dispatch + ablation |
//! | `tab_blend`       | §V-C — blended drivers + far-memory sweeps |
//! | `tab_faults`      | extension — cross-layer fault injection + recovery costs |
//! | `tab_profile`     | extension — cycle attribution, interwoven vs. layered |
//! | `tab_serve`       | extension — open-loop serving under chaos: goodput + tail curves |
//!
//! Each binary accepts `--json <path>` to also dump machine-readable
//! results, used by `EXPERIMENTS.md` bookkeeping. The [`harness`] module
//! owns that CLI contract plus stack composition and sweep plumbing; the
//! binaries above declare [`harness::Scenario`]s and print.

pub mod harness;

use serde::Serialize;
use std::fmt::Display;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `f` over `items` on a bounded pool of scoped worker threads,
/// preserving input order in the output.
///
/// The pool is capped at [`std::thread::available_parallelism`] (and at the
/// item count), and workers pull work items from a shared index — so a
/// 200-point sweep occupies exactly the host's cores instead of spawning
/// 200 threads and oversubscribing the scheduler. The simulators are
/// deterministic and independent per run, so fan-out changes nothing but
/// wall-clock time.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Items are taken by index; results land in their input slot, so the
    // output order is the input order regardless of completion order.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot")
                    .take()
                    .expect("each index is claimed once");
                let r = f(item);
                *results[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result slot").expect("worker filled"))
        .collect()
}

/// Print a boxed table: header row then aligned data rows.
///
/// Rows may be wider than the header; the extra columns get an empty
/// header cell and align like any other column.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    for l in render_table(header, rows) {
        println!("{l}");
    }
}

/// The aligned lines of a table (header, rule, data rows), without the
/// title banner. Split out so formatting is unit-testable.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> Vec<String> {
    let columns = rows
        .iter()
        .map(|r| r.len())
        .max()
        .unwrap_or(0)
        .max(header.len());
    let mut widths: Vec<usize> = vec![0; columns];
    for (i, h) in header.iter().enumerate() {
        widths[i] = h.len();
    }
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |cells: &[String]| -> String {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        s.trim_end().to_string()
    };
    let mut out = Vec::with_capacity(rows.len() + 2);
    let mut head: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    head.resize(columns, String::new());
    out.push(line(&head));
    out.push(line(
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
    ));
    for r in rows {
        out.push(line(r));
    }
    out
}

/// Format a float with fixed decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Format any displayable value.
pub fn s(v: impl Display) -> String {
    v.to_string()
}

/// Write results as JSON when `--json <path>` was passed on the CLI.
pub fn maybe_dump_json<T: Serialize>(value: &T) {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        if let Some(path) = args.get(pos + 1) {
            let json = serde_json::to_string_pretty(value).expect("serializable results");
            std::fs::write(path, json).expect("writable json path");
            println!("(json written to {path})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let out = parallel_map((0..500u64).collect(), |x| x * 3);
        assert_eq!(out, (0..500u64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert_eq!(parallel_map(Vec::<u64>::new(), |x| x), Vec::<u64>::new());
        assert_eq!(parallel_map(vec![7u64], |x| x + 1), vec![8]);
    }

    #[test]
    fn render_table_aligns_header_sized_rows() {
        let lines = render_table(
            &["name", "value"],
            &[
                vec!["alpha".into(), "1".into()],
                vec!["b".into(), "22".into()],
            ],
        );
        assert_eq!(lines[0], "name   value");
        assert_eq!(lines[1], "-----  -----");
        assert_eq!(lines[2], "alpha  1");
        assert_eq!(lines[3], "b      22");
    }

    #[test]
    fn render_table_sizes_columns_beyond_the_header() {
        // Rows wider than the header: the extra column must get a real
        // width (sized to its widest cell), not a hardcoded fallback.
        let lines = render_table(
            &["name"],
            &[
                vec!["a".into(), "short".into()],
                vec!["b".into(), "a-much-longer-cell".into()],
            ],
        );
        assert_eq!(lines[0], "name");
        assert_eq!(lines[1], "----  ------------------");
        assert_eq!(lines[2], "a     short");
        assert_eq!(lines[3], "b     a-much-longer-cell");
    }

    #[test]
    fn render_table_handles_empty_rows() {
        let lines = render_table(&["a", "b"], &[]);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "a  b");
    }
}
