//! One declarative harness for every figure/table binary.
//!
//! Each experiment declares *what* it measures — a set of [`Scenario`]s
//! naming a [`StackConfig`] on a machine preset — and the harness owns the
//! rest: composing the stack through the facade's `StackBuilder` (so a
//! binary cannot measure a composition that could not exist), the shared
//! CLI contract (`--json <path>`, `--trace-out <path>`), parallel sweeps
//! over the composed stack, table printing, and the machine-readable
//! results envelope that embeds every scenario's `StackConfig`.
//!
//! The contract the golden-stdout CI guard relies on: a harness run with no
//! flags prints exactly the tables and notes the experiment asks for —
//! nothing else — so migrating a binary onto the harness is byte-identical
//! on stdout.

use crate::{parallel_map, print_table};
use interweave::compose::ComposedStack;
use interweave_core::arrivals::ArrivalKind;
use interweave_core::machine::MachineConfig;
use interweave_core::stack::{OsPoint, StackConfig};
use interweave_core::telemetry::{CounterEntry, TimeSeries};
use serde::Serialize;

/// The command-line contract shared by every figure/table binary.
///
/// `--json <path>` additionally writes the machine-readable results
/// envelope; `--trace-out <path>` asks binaries that collect telemetry
/// spans to export a Chrome/Perfetto trace; `--shards <n>` selects the
/// simulation-kernel shard count for binaries whose hot loop runs on the
/// sharded kernel (the result is bit-identical at every count — the CI
/// determinism gate relies on exactly that). Serving binaries additionally
/// honor `--offered-load <x>` (load as a multiple of the calibrated
/// saturation point), `--duration-ms <ms>`, and `--arrival <name>`
/// (poisson | bursty | diurnal). `--metrics-out <path>` asks serving
/// binaries to run with bounded streaming sinks and export the windowed
/// time series as JSON; `--window-cycles <n>` overrides the roll-up
/// window width. `--os <name>` (nk | nautilus | aster | linux) restricts
/// an OS-axis binary to the scenarios on that point of the axis. The
/// golden CI runs pass no flags, so none affects pinned stdout.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Path for the JSON results envelope, when requested.
    pub json: Option<String>,
    /// Path for the Perfetto trace export, when requested.
    pub trace_out: Option<String>,
    /// Simulation-kernel shard count (`--shards <n>`, default 1).
    pub shards: usize,
    /// Offered load override for serving binaries, as a multiple of the
    /// calibrated saturation capacity (`--offered-load <x>`, x > 0).
    pub offered_load: Option<f64>,
    /// Serving-run duration override in milliseconds
    /// (`--duration-ms <ms>`, ms > 0).
    pub duration_ms: Option<f64>,
    /// Arrival-process override for serving binaries (`--arrival <name>`).
    pub arrival: Option<ArrivalKind>,
    /// Path for the windowed-metrics JSON export, when requested
    /// (`--metrics-out <path>`).
    pub metrics_out: Option<String>,
    /// Roll-up window width override in simulated cycles
    /// (`--window-cycles <n>`, n > 0).
    pub window_cycles: Option<u64>,
    /// OS-axis restriction for binaries that sweep the axis
    /// (`--os <name>`, nk | nautilus | aster | linux).
    pub os: Option<OsPoint>,
}

impl Default for Cli {
    fn default() -> Cli {
        Cli {
            json: None,
            trace_out: None,
            shards: 1,
            offered_load: None,
            duration_ms: None,
            arrival: None,
            metrics_out: None,
            window_cycles: None,
            os: None,
        }
    }
}

impl Cli {
    /// Parse the process's own arguments.
    pub fn parse() -> Cli {
        Cli::from_args(std::env::args())
    }

    /// Parse an explicit argument list (unit-testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Cli {
        let args: Vec<String> = args.into_iter().collect();
        let value_of = |flag: &str| {
            args.iter().position(|a| a == flag).map(|pos| {
                args.get(pos + 1)
                    .unwrap_or_else(|| panic!("{flag} takes a path"))
                    .clone()
            })
        };
        let shards = match value_of("--shards") {
            Some(v) => v
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| panic!("--shards takes a positive count, got {v:?}")),
            None => 1,
        };
        let positive_f64 = |flag: &str| {
            value_of(flag).map(|v| {
                v.parse::<f64>()
                    .ok()
                    .filter(|x| x.is_finite() && *x > 0.0)
                    .unwrap_or_else(|| panic!("{flag} takes a positive number, got {v:?}"))
            })
        };
        let arrival = value_of("--arrival").map(|v| {
            ArrivalKind::parse(&v)
                .unwrap_or_else(|| panic!("--arrival takes poisson, bursty, or diurnal, got {v:?}"))
        });
        let os = value_of("--os").map(|v| {
            OsPoint::parse(&v)
                .unwrap_or_else(|| panic!("--os takes nk, nautilus, aster, or linux, got {v:?}"))
        });
        let window_cycles = value_of("--window-cycles").map(|v| {
            v.parse::<u64>()
                .ok()
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    panic!("--window-cycles takes a positive cycle count, got {v:?}")
                })
        });
        Cli {
            json: value_of("--json"),
            trace_out: value_of("--trace-out"),
            shards,
            offered_load: positive_f64("--offered-load"),
            duration_ms: positive_f64("--duration-ms"),
            arrival,
            metrics_out: value_of("--metrics-out"),
            window_cycles,
            os,
        }
    }
}

/// One named point of an experiment: which stack composition, on which
/// machine. Declarative — composing it is the harness's job.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Short identifier used in tables and the JSON envelope.
    pub id: &'static str,
    /// The stack composition this scenario measures.
    pub config: StackConfig,
    /// The machine preset it runs on.
    pub machine: MachineConfig,
}

impl Scenario {
    /// A scenario measuring `config` on `machine`.
    pub fn new(id: &'static str, config: StackConfig, machine: MachineConfig) -> Scenario {
        Scenario {
            id,
            config,
            machine,
        }
    }

    /// Materialize the composed stack. An experiment declaring an
    /// incoherent composition is a bug in the experiment, so the typed
    /// rejection becomes a panic naming the scenario.
    pub fn compose(&self) -> ComposedStack {
        interweave::compose::compose(self.config, self.machine.clone())
            .unwrap_or_else(|e| panic!("scenario {:?} is not a coherent stack: {e}", self.id))
    }

    /// Run `f` over `items` on the bounded worker pool, every worker
    /// sharing one composed stack. Output order is input order, and the
    /// simulators are deterministic, so fan-out changes wall-clock only.
    pub fn sweep<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&ComposedStack, T) -> R + Sync,
    {
        let stack = self.compose();
        parallel_map(items, |item| f(&stack, item))
    }
}

/// Metadata for one scenario as written to the JSON envelope.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioMeta {
    /// The scenario's identifier.
    pub id: String,
    /// The machine preset's display name.
    pub machine: String,
    /// The full stack composition, round-trippable back to [`StackConfig`].
    pub stack: StackConfig,
}

/// The machine-readable results envelope: which compositions were
/// measured, then the experiment's own rows.
///
/// `Serialize` is hand-written because the envelope is generic over the
/// row type and the vendored derive only handles concrete shapes.
pub struct RunSummary<'a, T> {
    /// One entry per declared scenario.
    pub scenarios: Vec<ScenarioMeta>,
    /// The experiment's rows, in its own schema.
    pub rows: &'a T,
}

impl<T: Serialize> Serialize for RunSummary<'_, T> {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"scenarios\":");
        self.scenarios.serialize_json(out);
        out.push_str(",\"rows\":");
        self.rows.serialize_json(out);
        out.push('}');
    }
}

/// The driver a figure/table binary hands its scenarios to.
pub struct Harness {
    cli: Cli,
    scenarios: Vec<Scenario>,
}

impl Harness {
    /// A harness over `scenarios`, parsing the process CLI.
    pub fn new(scenarios: Vec<Scenario>) -> Harness {
        Harness::with_cli(Cli::parse(), scenarios)
    }

    /// A harness with an explicit CLI (unit-testable).
    pub fn with_cli(cli: Cli, scenarios: Vec<Scenario>) -> Harness {
        Harness { cli, scenarios }
    }

    /// The declared scenarios, in declaration order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Look up a scenario by id; unknown ids are experiment bugs.
    pub fn scenario(&self, id: &str) -> &Scenario {
        self.scenarios
            .iter()
            .find(|sc| sc.id == id)
            .unwrap_or_else(|| panic!("no scenario {id:?} declared"))
    }

    /// Compose one scenario's stack by id.
    pub fn stack(&self, id: &str) -> ComposedStack {
        self.scenario(id).compose()
    }

    /// The Perfetto export path, when `--trace-out` was passed.
    pub fn trace_out(&self) -> Option<&str> {
        self.cli.trace_out.as_deref()
    }

    /// The simulation-kernel shard count (`--shards`, default 1).
    pub fn shards(&self) -> usize {
        self.cli.shards
    }

    /// Offered-load override (`--offered-load`), as a multiple of the
    /// binary's calibrated saturation capacity.
    pub fn offered_load(&self) -> Option<f64> {
        self.cli.offered_load
    }

    /// Serving-run duration override in milliseconds (`--duration-ms`).
    pub fn duration_ms(&self) -> Option<f64> {
        self.cli.duration_ms
    }

    /// Arrival-process override (`--arrival`).
    pub fn arrival(&self) -> Option<ArrivalKind> {
        self.cli.arrival
    }

    /// The windowed-metrics export path, when `--metrics-out` was passed.
    pub fn metrics_out(&self) -> Option<&str> {
        self.cli.metrics_out.as_deref()
    }

    /// Roll-up window width override (`--window-cycles`).
    pub fn window_cycles(&self) -> Option<u64> {
        self.cli.window_cycles
    }

    /// OS-axis restriction (`--os`): when set, OS-axis binaries run only
    /// the scenarios whose composition sits on this point.
    pub fn os(&self) -> Option<OsPoint> {
        self.cli.os
    }

    /// Print one boxed table (title banner, aligned header and rows).
    pub fn table(&self, title: &str, header: &[&str], rows: &[Vec<String>]) {
        print_table(title, header, rows);
    }

    /// The JSON envelope for `rows` under this harness's scenarios.
    pub fn summary_json<T: Serialize>(&self, rows: &T) -> String {
        let summary = RunSummary {
            scenarios: self
                .scenarios
                .iter()
                .map(|sc| ScenarioMeta {
                    id: sc.id.to_string(),
                    machine: sc.machine.name.to_string(),
                    stack: sc.config,
                })
                .collect(),
            rows,
        };
        serde_json::to_string_pretty(&summary).expect("serializable results")
    }

    /// Finish the run: when `--json <path>` was passed, write the envelope
    /// and acknowledge on stdout (flag runs only — golden runs pass none).
    pub fn finish<T: Serialize>(&self, rows: &T) {
        if let Some(path) = &self.cli.json {
            std::fs::write(path, self.summary_json(rows)).expect("writable json path");
            println!("(json written to {path})");
        }
    }

    /// Finish the streaming-metrics export: when `--metrics-out <path>`
    /// was passed, write the windowed series as JSON and acknowledge on
    /// stdout (flag runs only — golden runs pass none). The file is a
    /// pure function of the simulated run, so CI can byte-compare it
    /// across shard counts and repeated runs.
    pub fn finish_metrics(&self, series: &TimeSeries) {
        if let Some(path) = &self.cli.metrics_out {
            let json = serde_json::to_string_pretty(&MetricsSeries::from_series(series))
                .expect("serializable metrics");
            std::fs::write(path, json).expect("writable metrics path");
            println!("(metrics written to {path})");
        }
    }
}

/// One fixed-width window of the serving plane's streaming telemetry, as
/// written by `--metrics-out` and embedded in `BENCH_summary.json`.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsWindow {
    /// Absolute window index (`cycle / window_cycles`).
    pub window: u64,
    /// First simulated cycle the window covers.
    pub start_cycles: u64,
    /// Requests that arrived in the window.
    pub offered: u64,
    /// Requests completed (attributed to their arrival window).
    pub completed: u64,
    /// Requests shed (queue bound, deadline, or retry budget).
    pub shed: u64,
    /// Deepest admission queue observed in the window.
    pub queue_depth_max: u64,
    /// Median end-to-end latency from the window's sketch, in µs
    /// (0 when the window completed nothing).
    pub p50_us: f64,
    /// 99th-percentile end-to-end latency from the window's sketch, in µs
    /// (0 when the window completed nothing).
    pub p99_us: f64,
}

/// The `--metrics-out` file schema: the window width plus one row per
/// populated window, in ascending window order.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSeries {
    /// Roll-up window width in simulated cycles.
    pub window_cycles: u64,
    /// Populated windows, ascending by index.
    pub windows: Vec<MetricsWindow>,
}

impl MetricsSeries {
    /// Roll a [`TimeSeries`] from the serving plane into the export rows.
    pub fn from_series(series: &TimeSeries) -> MetricsSeries {
        let width = series.width().0;
        let windows = series
            .iter()
            .map(|(idx, w)| {
                let lat = w.sketch("latency_us");
                MetricsWindow {
                    window: idx,
                    start_cycles: idx * width,
                    offered: w.counter("offered"),
                    completed: w.counter("completed"),
                    shed: w.counter("shed"),
                    queue_depth_max: w.gauge_max("queue_depth").unwrap_or(0),
                    p50_us: lat.map_or(0.0, |s| s.p50()),
                    p99_us: lat.map_or(0.0, |s| s.p99()),
                }
            })
            .collect();
        MetricsSeries {
            window_cycles: width,
            windows,
        }
    }
}

/// One scoreboard entry, as written to `BENCH_summary.json`.
#[derive(Serialize)]
pub struct ExperimentSummary {
    /// Figure/section identifier (e.g. "Fig 3", "§IV-A").
    pub experiment: String,
    /// The paper's claim being checked.
    pub claim: String,
    /// The stack composition the headline measures.
    pub stack: StackConfig,
    /// The OS-axis point of that composition, by display name ("Linux",
    /// "Aster", "Nautilus") — denormalized so bookkeeping scripts can
    /// group the scoreboard by OS without decoding the stack.
    pub os: String,
    /// The measured headline, formatted as in the table.
    pub measured: String,
    /// Wall-clock time to regenerate this entry, in milliseconds.
    pub wall_ms: f64,
    /// Simulation-kernel shard count the section ran with (1 = the merged
    /// sequential kernel; results are bit-identical at every count).
    pub shards: usize,
}

/// One fault class's robustness ledger from the serving-plane section, as
/// written to `BENCH_summary.json`. The invariant bookkeeping scripts can
/// check: `injected == recovered + shed + absorbed` — no fault vanishes.
#[derive(Serialize)]
pub struct FaultBreakdownEntry {
    /// Fault class name (e.g. "virtine crash"), as `FaultClass::name`.
    pub class: String,
    /// Faults the chaos plan injected for this class.
    pub injected: u64,
    /// Recovered by a mechanism one layer up (restart, watchdog scan,
    /// cold-start fallback) — the request still completed.
    pub recovered: u64,
    /// Turned into accounted load shedding (retry budget exhausted).
    pub shed: u64,
    /// Landed where they could do no harm (dead context, empty cache).
    pub absorbed: u64,
}

/// One §III primitive priced on every point of the OS axis, as written to
/// `BENCH_summary.json` (the machine-readable TAB-NK).
#[derive(Serialize)]
pub struct PrimitiveEntry {
    /// Primitive name, as in the printed table.
    pub name: String,
    /// Cost on the Linux-like kernel, in cycles.
    pub linux_cycles: u64,
    /// Cost on the Aster-like framekernel, in cycles.
    pub aster_cycles: u64,
    /// Cost on the Nautilus-like kernel, in cycles.
    pub nautilus_cycles: u64,
}

/// The scoreboard file schema (`BENCH_summary.json`).
#[derive(Serialize)]
pub struct BenchSummary {
    /// Total wall-clock for the whole scoreboard, in milliseconds.
    pub total_wall_ms: f64,
    /// One record per experiment.
    pub experiments: Vec<ExperimentSummary>,
    /// Registry snapshot from the telemetry section's instrumented run, so
    /// bookkeeping scripts can diff counters without scraping stdout.
    pub counters: Vec<CounterEntry>,
    /// Per-class fault ledger from the serving-plane section (empty when
    /// the scoreboard ran without it).
    pub fault_breakdown: Vec<FaultBreakdownEntry>,
    /// Windowed serving-plane trajectory from the scoreboard's serving
    /// section — the same rows `--metrics-out` exports (empty when the
    /// scoreboard ran without the serving section).
    pub serve_timeseries: Vec<MetricsWindow>,
    /// The §III primitives priced on all three OS-axis points (the
    /// machine-readable TAB-NK).
    pub primitives: Vec<PrimitiveEntry>,
}

/// Run one scoreboard section, timing it and recording the row. The
/// section's composition is validated eagerly: a scoreboard entry naming
/// an impossible stack fails loudly, not silently.
pub fn section(
    out: &mut Vec<ExperimentSummary>,
    experiment: &str,
    claim: &str,
    stack: StackConfig,
    machine: MachineConfig,
    run: impl FnOnce() -> String,
) {
    section_sharded(out, experiment, claim, stack, machine, 1, run);
}

/// [`section`], for a section whose hot loop ran on the sharded simulation
/// kernel: records the true shard count in the scoreboard record.
pub fn section_sharded(
    out: &mut Vec<ExperimentSummary>,
    experiment: &str,
    claim: &str,
    stack: StackConfig,
    machine: MachineConfig,
    shards: usize,
    run: impl FnOnce() -> String,
) {
    Scenario::new("section", stack, machine).compose();
    let start = std::time::Instant::now();
    let measured = run();
    out.push(ExperimentSummary {
        experiment: experiment.to_string(),
        claim: claim.to_string(),
        stack,
        os: stack.os.name().to_string(),
        measured,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        shards,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cli_parses_both_flags_anywhere() {
        let cli = Cli::from_args(args(&["bin", "--trace-out", "t.json", "--json", "r.json"]));
        assert_eq!(cli.json.as_deref(), Some("r.json"));
        assert_eq!(cli.trace_out.as_deref(), Some("t.json"));
        let none = Cli::from_args(args(&["bin"]));
        assert!(none.json.is_none() && none.trace_out.is_none());
    }

    #[test]
    fn cli_shards_defaults_to_one_and_parses() {
        assert_eq!(Cli::from_args(args(&["bin"])).shards, 1);
        assert_eq!(Cli::default().shards, 1);
        let cli = Cli::from_args(args(&["bin", "--shards", "4", "--json", "r.json"]));
        assert_eq!(cli.shards, 4);
        assert_eq!(cli.json.as_deref(), Some("r.json"));
    }

    #[test]
    #[should_panic(expected = "--shards takes a positive count")]
    fn cli_rejects_zero_shards() {
        Cli::from_args(args(&["bin", "--shards", "0"]));
    }

    #[test]
    fn cli_parses_the_serving_flags() {
        let cli = Cli::from_args(args(&[
            "bin",
            "--offered-load",
            "1.5",
            "--duration-ms",
            "250",
            "--arrival",
            "bursty",
        ]));
        assert_eq!(cli.offered_load, Some(1.5));
        assert_eq!(cli.duration_ms, Some(250.0));
        assert_eq!(cli.arrival, Some(ArrivalKind::Bursty));
        let none = Cli::from_args(args(&["bin"]));
        assert!(none.offered_load.is_none() && none.duration_ms.is_none());
        assert!(none.arrival.is_none());
    }

    #[test]
    #[should_panic(expected = "--offered-load takes a positive number")]
    fn cli_rejects_zero_offered_load() {
        Cli::from_args(args(&["bin", "--offered-load", "0"]));
    }

    #[test]
    #[should_panic(expected = "--offered-load takes a positive number")]
    fn cli_rejects_negative_offered_load() {
        Cli::from_args(args(&["bin", "--offered-load", "-0.5"]));
    }

    #[test]
    #[should_panic(expected = "--duration-ms takes a positive number")]
    fn cli_rejects_nonpositive_duration() {
        Cli::from_args(args(&["bin", "--duration-ms", "0"]));
    }

    #[test]
    #[should_panic(expected = "--arrival takes poisson, bursty, or diurnal")]
    fn cli_rejects_an_unknown_arrival() {
        Cli::from_args(args(&["bin", "--arrival", "uniform"]));
    }

    #[test]
    #[should_panic(expected = "--json takes a path")]
    fn cli_rejects_a_dangling_flag() {
        Cli::from_args(args(&["bin", "--json"]));
    }

    #[test]
    fn cli_parses_the_metrics_flags() {
        let cli = Cli::from_args(args(&[
            "bin",
            "--metrics-out",
            "m.json",
            "--window-cycles",
            "5000",
        ]));
        assert_eq!(cli.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(cli.window_cycles, Some(5000));
        let none = Cli::from_args(args(&["bin"]));
        assert!(none.metrics_out.is_none() && none.window_cycles.is_none());
        assert!(Cli::default().metrics_out.is_none() && Cli::default().window_cycles.is_none());
    }

    #[test]
    fn cli_parses_the_os_flag() {
        for (spelling, want) in [
            ("nk", OsPoint::NkLike),
            ("nautilus", OsPoint::NkLike),
            ("aster", OsPoint::AsterLike),
            ("linux", OsPoint::LinuxLike),
        ] {
            let cli = Cli::from_args(args(&["bin", "--os", spelling]));
            assert_eq!(cli.os, Some(want), "{spelling}");
        }
        assert!(Cli::from_args(args(&["bin"])).os.is_none());
        assert!(Cli::default().os.is_none());
    }

    #[test]
    #[should_panic(expected = "--os takes nk, nautilus, aster, or linux")]
    fn cli_rejects_an_unknown_os() {
        Cli::from_args(args(&["bin", "--os", "plan9"]));
    }

    #[test]
    #[should_panic(expected = "--window-cycles takes a positive cycle count")]
    fn cli_rejects_zero_window_cycles() {
        Cli::from_args(args(&["bin", "--window-cycles", "0"]));
    }

    #[test]
    #[should_panic(expected = "--metrics-out takes a path")]
    fn cli_rejects_a_dangling_metrics_out() {
        Cli::from_args(args(&["bin", "--metrics-out"]));
    }

    #[test]
    fn metrics_series_rolls_windows_up_in_order() {
        use interweave_core::time::Cycles;
        let mut ts = TimeSeries::new(Cycles(100));
        ts.add(Cycles(10), "offered", 3);
        ts.add(Cycles(10), "completed", 2);
        ts.add(Cycles(150), "shed", 1);
        ts.gauge_max(Cycles(20), "queue_depth", 7);
        ts.observe(Cycles(30), "latency_us", 12.0);
        let ms = MetricsSeries::from_series(&ts);
        assert_eq!(ms.window_cycles, 100);
        assert_eq!(ms.windows.len(), 2);
        let w0 = &ms.windows[0];
        assert_eq!((w0.window, w0.start_cycles), (0, 0));
        assert_eq!((w0.offered, w0.completed, w0.shed), (3, 2, 0));
        assert_eq!(w0.queue_depth_max, 7);
        assert!(w0.p99_us >= 12.0 && w0.p99_us <= 12.0 * (1.0 + 1.0 / 128.0));
        let w1 = &ms.windows[1];
        assert_eq!((w1.window, w1.start_cycles, w1.shed), (1, 100, 1));
        assert_eq!((w1.p50_us, w1.p99_us), (0.0, 0.0));
    }

    #[test]
    fn scenario_composes_and_sweeps_in_order() {
        let sc = Scenario::new(
            "nk",
            StackConfig::nautilus(),
            MachineConfig::xeon_server_2s(),
        );
        assert_eq!(sc.compose().os.name(), "Nautilus");
        let costs = sc.sweep((0..64u64).collect(), |stack, i| {
            stack.os.ctx_switch(false, false).get() + i
        });
        let base = sc.compose().os.ctx_switch(false, false).get();
        assert_eq!(costs, (0..64u64).map(|i| base + i).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "not a coherent stack")]
    fn scenario_with_an_incoherent_stack_panics_with_its_id() {
        use interweave_core::stack::Translation;
        let broken = StackConfig {
            translation: Translation::Carat,
            ..StackConfig::commodity()
        };
        Scenario::new("broken", broken, MachineConfig::xeon_server_2s()).compose();
    }

    #[test]
    fn envelope_embeds_every_scenario_stack() {
        let h = Harness::with_cli(
            Cli::default(),
            vec![
                Scenario::new(
                    "linux",
                    StackConfig::commodity(),
                    MachineConfig::xeon_server_2s(),
                ),
                Scenario::new("nk", StackConfig::nautilus(), MachineConfig::phi_knl()),
            ],
        );
        #[derive(Serialize)]
        struct Row {
            v: u64,
        }
        let json = h.summary_json(&vec![Row { v: 7 }]);
        let v = serde::json::parse(&json).expect("valid envelope");
        let scenarios = match v.get("scenarios") {
            Some(serde::json::JsonValue::Arr(a)) => a,
            other => panic!("scenarios must be an array, got {other:?}"),
        };
        assert_eq!(scenarios.len(), 2);
        let stack = scenarios[1].get("stack").expect("stack embedded");
        use serde::Deserialize;
        let parsed = StackConfig::deserialize_json(stack).expect("round-trips");
        assert_eq!(parsed, StackConfig::nautilus());
        assert!(json.contains("\"rows\""));
    }
}
