//! The interweaving axes as data.
//!
//! Figure 1 of the paper sketches a system where the compiler, runtime,
//! kernel, and hardware are blended per application. [`StackConfig`] names
//! the design axes that the paper's examples vary, so an experiment can say
//! precisely *which* stack composition it is measuring and reports can label
//! series consistently. Each axis corresponds to one section of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Where timing events come from (§IV-C, compiler-based timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimingSource {
    /// Hardware timer interrupts through the interrupt path.
    HardwareTimer,
    /// Compiler-injected calls into the timer framework — no interrupts.
    CompilerInjected,
}

/// How out-of-band events reach parallel workers (§IV-B, heartbeat).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalPath {
    /// Commodity path: kernel timers + POSIX signals into user space.
    LinuxSignals,
    /// Interwoven path: LAPIC timer on one CPU broadcast by IPI directly to
    /// kernel-mode workers (the Nautilus/Nemo design of Fig. 2).
    NkIpiBroadcast,
}

/// How addresses are translated and protected (§IV-A, CARAT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Translation {
    /// Conventional paging with TLBs; protection by hardware.
    Paging,
    /// Identity mapping with the largest page size; no protection (raw
    /// Nautilus).
    Identity,
    /// CARAT: physical addressing everywhere, protection and mobility by
    /// compiler-inserted guards and a tracking runtime.
    Carat,
}

/// Cache-coherence policy (§V-B, selective coherence deactivation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoherencePolicy {
    /// Hardware MESI for all memory, always on.
    FullMesi,
    /// MESI extended with selective deactivation driven by language-level
    /// sharing knowledge.
    Selective,
}

/// Isolation mechanism for launching functions/tasks (§IV-D, virtines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Isolation {
    /// Conventional OS process.
    Process,
    /// Container (namespaced process with image setup).
    Container,
    /// Full virtual machine with a general-purpose guest.
    FullVm,
    /// A virtine: minimal VM context with custom stack, compiler-created.
    Virtine,
    /// A bespoke context (§V-E): synthesized runtime, possibly no OS at all.
    Bespoke,
}

/// A complete stack composition: one point in the interweaving design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StackConfig {
    /// Timing-event source.
    pub timing: TimingSource,
    /// Out-of-band signaling path.
    pub signal: SignalPath,
    /// Address translation and protection scheme.
    pub translation: Translation,
    /// Cache-coherence policy.
    pub coherence: CoherencePolicy,
    /// Isolation mechanism for task launch.
    pub isolation: Isolation,
}

impl StackConfig {
    /// The commodity layered stack the paper's figures use as a baseline:
    /// Linux-like kernel, hardware timers, signals, paging, full coherence,
    /// process isolation.
    pub fn commodity() -> StackConfig {
        StackConfig {
            timing: TimingSource::HardwareTimer,
            signal: SignalPath::LinuxSignals,
            translation: Translation::Paging,
            coherence: CoherencePolicy::FullMesi,
            isolation: Isolation::Process,
        }
    }

    /// The fully interwoven stack of Fig. 1: compiler timing, IPI broadcast
    /// signaling, CARAT translation, selective coherence, virtine isolation.
    pub fn interwoven() -> StackConfig {
        StackConfig {
            timing: TimingSource::CompilerInjected,
            signal: SignalPath::NkIpiBroadcast,
            translation: Translation::Carat,
            coherence: CoherencePolicy::Selective,
            isolation: Isolation::Virtine,
        }
    }

    /// Raw Nautilus as described in §III: kernel-mode everything, identity
    /// mapping, hardware timers but direct (no crossing) delivery.
    pub fn nautilus() -> StackConfig {
        StackConfig {
            timing: TimingSource::HardwareTimer,
            signal: SignalPath::NkIpiBroadcast,
            translation: Translation::Identity,
            coherence: CoherencePolicy::FullMesi,
            isolation: Isolation::Process,
        }
    }

    /// Count of axes on which `self` differs from the commodity stack — a
    /// crude "degree of interweaving" used in reports.
    pub fn interweaving_degree(&self) -> usize {
        let c = StackConfig::commodity();
        usize::from(self.timing != c.timing)
            + usize::from(self.signal != c.signal)
            + usize::from(self.translation != c.translation)
            + usize::from(self.coherence != c.coherence)
            + usize::from(self.isolation != c.isolation)
    }
}

impl fmt::Display for StackConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "timing={:?} signal={:?} translation={:?} coherence={:?} isolation={:?}",
            self.timing, self.signal, self.translation, self.coherence, self.isolation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commodity_has_degree_zero() {
        assert_eq!(StackConfig::commodity().interweaving_degree(), 0);
    }

    #[test]
    fn interwoven_differs_on_every_axis() {
        assert_eq!(StackConfig::interwoven().interweaving_degree(), 5);
    }

    #[test]
    fn nautilus_is_partially_interwoven() {
        let d = StackConfig::nautilus().interweaving_degree();
        assert!(d > 0 && d < 5, "nautilus degree = {d}");
    }

    #[test]
    fn display_is_informative() {
        let s = StackConfig::commodity().to_string();
        assert!(s.contains("Paging"));
        assert!(s.contains("LinuxSignals"));
    }
}
