//! The interweaving axes as data.
//!
//! Figure 1 of the paper sketches a system where the compiler, runtime,
//! kernel, and hardware are blended per application. [`StackConfig`] names
//! the design axes that the paper's examples vary, so an experiment can say
//! precisely *which* stack composition it is measuring and reports can label
//! series consistently. Each axis corresponds to one section of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Where timing events come from (§IV-C, compiler-based timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimingSource {
    /// Hardware timer interrupts through the interrupt path.
    HardwareTimer,
    /// Compiler-injected calls into the timer framework — no interrupts.
    CompilerInjected,
}

impl TimingSource {
    /// Every value of this axis, in declaration order.
    pub const ALL: [TimingSource; 2] =
        [TimingSource::HardwareTimer, TimingSource::CompilerInjected];
}

/// Which kernel personality the stack runs on (§III and ROADMAP item 4).
///
/// The OS is one axis of the blended stack, not a fixed backdrop. The two
/// endpoints are the paper's: a Nautilus-like kernel (kernel-mode
/// everything, deterministic paths) and a Linux-like commodity kernel
/// (user/kernel split, timing pathologies). Between them sits an
/// Asterinas-style *framekernel*: a safe-Rust kernel with real page-table
/// isolation but no user/kernel world switch on the task path — services
/// are bounds-checked calls, not syscalls.
///
/// The out-of-band signal topology follows the kernel: Linux-like stacks
/// deliver per-CPU POSIX signals; NK-like and Aster-like stacks own the
/// timer and broadcast by IPI directly to kernel-mode workers (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OsPoint {
    /// Nautilus-like: kernel-mode everything, identity-friendly, no
    /// crossings anywhere (§III).
    NkLike,
    /// Asterinas-like framekernel: safe-Rust kernel, in-kernel page-table
    /// isolation, syscall-free but bounds-checked fast paths.
    AsterLike,
    /// Commodity Linux-like kernel: user/kernel split, signals, ticks.
    LinuxLike,
}

impl OsPoint {
    /// Every value of this axis, in declaration order (most to least
    /// interwoven).
    pub const ALL: [OsPoint; 3] = [OsPoint::NkLike, OsPoint::AsterLike, OsPoint::LinuxLike];

    /// Display name matching the `OsModel` impl this point materializes to.
    pub fn name(self) -> &'static str {
        match self {
            OsPoint::NkLike => "Nautilus",
            OsPoint::AsterLike => "Aster",
            OsPoint::LinuxLike => "Linux",
        }
    }

    /// Parse a CLI spelling (`--os nk|nautilus|aster|linux`).
    pub fn parse(s: &str) -> Option<OsPoint> {
        match s.to_ascii_lowercase().as_str() {
            "nk" | "nautilus" => Some(OsPoint::NkLike),
            "aster" => Some(OsPoint::AsterLike),
            "linux" => Some(OsPoint::LinuxLike),
            _ => None,
        }
    }
}

/// How addresses are translated and protected (§IV-A, CARAT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Translation {
    /// Conventional paging with TLBs; protection by hardware.
    Paging,
    /// Identity mapping with the largest page size; no protection (raw
    /// Nautilus).
    Identity,
    /// CARAT: physical addressing everywhere, protection and mobility by
    /// compiler-inserted guards and a tracking runtime.
    Carat,
}

impl Translation {
    /// Every value of this axis, in declaration order.
    pub const ALL: [Translation; 3] = [
        Translation::Paging,
        Translation::Identity,
        Translation::Carat,
    ];
}

/// Cache-coherence policy (§V-B, selective coherence deactivation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoherencePolicy {
    /// Hardware MESI for all memory, always on.
    FullMesi,
    /// MESI extended with selective deactivation driven by language-level
    /// sharing knowledge.
    Selective,
}

impl CoherencePolicy {
    /// Every value of this axis, in declaration order.
    pub const ALL: [CoherencePolicy; 2] = [CoherencePolicy::FullMesi, CoherencePolicy::Selective];
}

/// Isolation mechanism for launching functions/tasks (§IV-D, virtines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Isolation {
    /// Conventional OS process.
    Process,
    /// Container (namespaced process with image setup).
    Container,
    /// Full virtual machine with a general-purpose guest.
    FullVm,
    /// A virtine: minimal VM context with custom stack, compiler-created.
    Virtine,
    /// A bespoke context (§V-E): synthesized runtime, possibly no OS at all.
    Bespoke,
}

impl Isolation {
    /// Every value of this axis, in declaration order.
    pub const ALL: [Isolation; 5] = [
        Isolation::Process,
        Isolation::Container,
        Isolation::FullVm,
        Isolation::Virtine,
        Isolation::Bespoke,
    ];
}

/// A complete stack composition: one point in the interweaving design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StackConfig {
    /// Timing-event source.
    pub timing: TimingSource,
    /// Kernel personality (which `OsModel` the stack materializes).
    pub os: OsPoint,
    /// Address translation and protection scheme.
    pub translation: Translation,
    /// Cache-coherence policy.
    pub coherence: CoherencePolicy,
    /// Isolation mechanism for task launch.
    pub isolation: Isolation,
}

impl StackConfig {
    /// The commodity layered stack the paper's figures use as a baseline:
    /// Linux-like kernel, hardware timers, signals, paging, full coherence,
    /// process isolation.
    pub fn commodity() -> StackConfig {
        StackConfig {
            timing: TimingSource::HardwareTimer,
            os: OsPoint::LinuxLike,
            translation: Translation::Paging,
            coherence: CoherencePolicy::FullMesi,
            isolation: Isolation::Process,
        }
    }

    /// The fully interwoven stack of Fig. 1: compiler timing, NK-like
    /// kernel, CARAT translation, selective coherence, virtine isolation.
    pub fn interwoven() -> StackConfig {
        StackConfig {
            timing: TimingSource::CompilerInjected,
            os: OsPoint::NkLike,
            translation: Translation::Carat,
            coherence: CoherencePolicy::Selective,
            isolation: Isolation::Virtine,
        }
    }

    /// Raw Nautilus as described in §III: kernel-mode everything, identity
    /// mapping, hardware timers but direct (no crossing) delivery.
    pub fn nautilus() -> StackConfig {
        StackConfig {
            timing: TimingSource::HardwareTimer,
            os: OsPoint::NkLike,
            translation: Translation::Identity,
            coherence: CoherencePolicy::FullMesi,
            isolation: Isolation::Process,
        }
    }

    /// The framekernel mid-point (ROADMAP item 4): an Asterinas-like
    /// safe-Rust kernel. Real page tables (the framekernel premise is
    /// enforced in-kernel isolation, so `Paging` is mandatory), hardware
    /// timers, full coherence, process-grade isolation — everything the
    /// commodity stack offers, minus the user/kernel world switch.
    pub fn framekernel() -> StackConfig {
        StackConfig {
            timing: TimingSource::HardwareTimer,
            os: OsPoint::AsterLike,
            translation: Translation::Paging,
            coherence: CoherencePolicy::FullMesi,
            isolation: Isolation::Process,
        }
    }

    /// The RTK composition of §V-A: the OpenMP *runtime in the kernel*.
    /// Structurally this is the raw Nautilus stack — identity mapping,
    /// kernel-mode workers kicked by IPI — with the runtime linked in.
    pub fn rtk() -> StackConfig {
        StackConfig {
            timing: TimingSource::HardwareTimer,
            os: OsPoint::NkLike,
            translation: Translation::Identity,
            coherence: CoherencePolicy::FullMesi,
            isolation: Isolation::Process,
        }
    }

    /// The PIK composition of §V-A: an unmodified *process in the kernel*,
    /// kept safe without paging by CARAT-style compiler guards and
    /// attestation (the `carat::pik` admission path).
    pub fn pik() -> StackConfig {
        StackConfig {
            translation: Translation::Carat,
            ..StackConfig::rtk()
        }
    }

    /// The CCK composition of §V-A: *custom compilation for the kernel* —
    /// the PIK guarantees plus a compiler-interwoven toolchain that owns
    /// timing (task-based execution, no timer interrupts).
    pub fn cck() -> StackConfig {
        StackConfig {
            timing: TimingSource::CompilerInjected,
            ..StackConfig::pik()
        }
    }

    /// Every point in the design space: the cartesian product of all five
    /// axes (2 × 3 × 3 × 2 × 5 = 180 compositions), in a fixed
    /// lexicographic order. Not every point is a *coherent* stack — the
    /// facade's `StackBuilder` validates and rejects the incoherent ones
    /// with typed errors.
    pub fn enumerate() -> impl Iterator<Item = StackConfig> {
        TimingSource::ALL.into_iter().flat_map(|timing| {
            OsPoint::ALL.into_iter().flat_map(move |os| {
                Translation::ALL.into_iter().flat_map(move |translation| {
                    CoherencePolicy::ALL.into_iter().flat_map(move |coherence| {
                        Isolation::ALL
                            .into_iter()
                            .map(move |isolation| StackConfig {
                                timing,
                                os,
                                translation,
                                coherence,
                                isolation,
                            })
                    })
                })
            })
        })
    }

    /// Count of axes on which `self` differs from the commodity stack — a
    /// crude "degree of interweaving" used in reports.
    pub fn interweaving_degree(&self) -> usize {
        let c = StackConfig::commodity();
        usize::from(self.timing != c.timing)
            + usize::from(self.os != c.os)
            + usize::from(self.translation != c.translation)
            + usize::from(self.coherence != c.coherence)
            + usize::from(self.isolation != c.isolation)
    }
}

impl fmt::Display for StackConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "timing={:?} os={:?} translation={:?} coherence={:?} isolation={:?}",
            self.timing, self.os, self.translation, self.coherence, self.isolation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commodity_has_degree_zero() {
        assert_eq!(StackConfig::commodity().interweaving_degree(), 0);
    }

    #[test]
    fn interwoven_differs_on_every_axis() {
        assert_eq!(StackConfig::interwoven().interweaving_degree(), 5);
    }

    #[test]
    fn nautilus_is_partially_interwoven() {
        let d = StackConfig::nautilus().interweaving_degree();
        assert!(d > 0 && d < 5, "nautilus degree = {d}");
    }

    #[test]
    fn framekernel_sits_between_the_endpoints() {
        let fk = StackConfig::framekernel();
        assert_eq!(fk.os, OsPoint::AsterLike);
        // The framekernel differs from commodity only on the OS axis.
        assert_eq!(fk.interweaving_degree(), 1);
        assert_eq!(
            StackConfig {
                os: OsPoint::LinuxLike,
                ..fk
            },
            StackConfig::commodity()
        );
    }

    #[test]
    fn os_point_names_and_parse_round_trip() {
        for os in OsPoint::ALL {
            assert_eq!(OsPoint::parse(&os.name().to_lowercase()), Some(os));
        }
        assert_eq!(OsPoint::parse("nk"), Some(OsPoint::NkLike));
        assert_eq!(OsPoint::parse("Aster"), Some(OsPoint::AsterLike));
        assert_eq!(OsPoint::parse("windows"), None);
    }

    #[test]
    fn enumerate_covers_the_whole_design_space() {
        let all: Vec<StackConfig> = StackConfig::enumerate().collect();
        assert_eq!(all.len(), 2 * 3 * 3 * 2 * 5);
        assert_eq!(all.len(), 180);
        // No duplicates, and every named preset is in the space.
        for (i, a) in all.iter().enumerate() {
            assert!(!all[i + 1..].contains(a), "duplicate composition {a}");
        }
        for preset in [
            StackConfig::commodity(),
            StackConfig::interwoven(),
            StackConfig::nautilus(),
            StackConfig::framekernel(),
            StackConfig::rtk(),
            StackConfig::pik(),
            StackConfig::cck(),
        ] {
            assert!(all.contains(&preset));
        }
    }

    #[test]
    fn omp_presets_differ_only_on_the_expected_axes() {
        assert_eq!(StackConfig::rtk(), StackConfig::nautilus());
        let (rtk, pik, cck) = (StackConfig::rtk(), StackConfig::pik(), StackConfig::cck());
        assert_eq!(pik.translation, Translation::Carat);
        assert_eq!(
            StackConfig {
                translation: rtk.translation,
                ..pik
            },
            rtk
        );
        assert_eq!(cck.timing, TimingSource::CompilerInjected);
        assert_eq!(
            StackConfig {
                timing: pik.timing,
                ..cck
            },
            pik
        );
    }

    #[test]
    fn display_is_informative() {
        let s = StackConfig::commodity().to_string();
        assert!(s.contains("Paging"));
        assert!(s.contains("LinuxLike"));
        assert!(StackConfig::framekernel().to_string().contains("AsterLike"));
    }
}
