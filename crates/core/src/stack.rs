//! The interweaving axes as data.
//!
//! Figure 1 of the paper sketches a system where the compiler, runtime,
//! kernel, and hardware are blended per application. [`StackConfig`] names
//! the design axes that the paper's examples vary, so an experiment can say
//! precisely *which* stack composition it is measuring and reports can label
//! series consistently. Each axis corresponds to one section of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Where timing events come from (§IV-C, compiler-based timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimingSource {
    /// Hardware timer interrupts through the interrupt path.
    HardwareTimer,
    /// Compiler-injected calls into the timer framework — no interrupts.
    CompilerInjected,
}

impl TimingSource {
    /// Every value of this axis, in declaration order.
    pub const ALL: [TimingSource; 2] =
        [TimingSource::HardwareTimer, TimingSource::CompilerInjected];
}

/// How out-of-band events reach parallel workers (§IV-B, heartbeat).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalPath {
    /// Commodity path: kernel timers + POSIX signals into user space.
    LinuxSignals,
    /// Interwoven path: LAPIC timer on one CPU broadcast by IPI directly to
    /// kernel-mode workers (the Nautilus/Nemo design of Fig. 2).
    NkIpiBroadcast,
}

impl SignalPath {
    /// Every value of this axis, in declaration order.
    pub const ALL: [SignalPath; 2] = [SignalPath::LinuxSignals, SignalPath::NkIpiBroadcast];
}

/// How addresses are translated and protected (§IV-A, CARAT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Translation {
    /// Conventional paging with TLBs; protection by hardware.
    Paging,
    /// Identity mapping with the largest page size; no protection (raw
    /// Nautilus).
    Identity,
    /// CARAT: physical addressing everywhere, protection and mobility by
    /// compiler-inserted guards and a tracking runtime.
    Carat,
}

impl Translation {
    /// Every value of this axis, in declaration order.
    pub const ALL: [Translation; 3] = [
        Translation::Paging,
        Translation::Identity,
        Translation::Carat,
    ];
}

/// Cache-coherence policy (§V-B, selective coherence deactivation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoherencePolicy {
    /// Hardware MESI for all memory, always on.
    FullMesi,
    /// MESI extended with selective deactivation driven by language-level
    /// sharing knowledge.
    Selective,
}

impl CoherencePolicy {
    /// Every value of this axis, in declaration order.
    pub const ALL: [CoherencePolicy; 2] = [CoherencePolicy::FullMesi, CoherencePolicy::Selective];
}

/// Isolation mechanism for launching functions/tasks (§IV-D, virtines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Isolation {
    /// Conventional OS process.
    Process,
    /// Container (namespaced process with image setup).
    Container,
    /// Full virtual machine with a general-purpose guest.
    FullVm,
    /// A virtine: minimal VM context with custom stack, compiler-created.
    Virtine,
    /// A bespoke context (§V-E): synthesized runtime, possibly no OS at all.
    Bespoke,
}

impl Isolation {
    /// Every value of this axis, in declaration order.
    pub const ALL: [Isolation; 5] = [
        Isolation::Process,
        Isolation::Container,
        Isolation::FullVm,
        Isolation::Virtine,
        Isolation::Bespoke,
    ];
}

/// A complete stack composition: one point in the interweaving design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StackConfig {
    /// Timing-event source.
    pub timing: TimingSource,
    /// Out-of-band signaling path.
    pub signal: SignalPath,
    /// Address translation and protection scheme.
    pub translation: Translation,
    /// Cache-coherence policy.
    pub coherence: CoherencePolicy,
    /// Isolation mechanism for task launch.
    pub isolation: Isolation,
}

impl StackConfig {
    /// The commodity layered stack the paper's figures use as a baseline:
    /// Linux-like kernel, hardware timers, signals, paging, full coherence,
    /// process isolation.
    pub fn commodity() -> StackConfig {
        StackConfig {
            timing: TimingSource::HardwareTimer,
            signal: SignalPath::LinuxSignals,
            translation: Translation::Paging,
            coherence: CoherencePolicy::FullMesi,
            isolation: Isolation::Process,
        }
    }

    /// The fully interwoven stack of Fig. 1: compiler timing, IPI broadcast
    /// signaling, CARAT translation, selective coherence, virtine isolation.
    pub fn interwoven() -> StackConfig {
        StackConfig {
            timing: TimingSource::CompilerInjected,
            signal: SignalPath::NkIpiBroadcast,
            translation: Translation::Carat,
            coherence: CoherencePolicy::Selective,
            isolation: Isolation::Virtine,
        }
    }

    /// Raw Nautilus as described in §III: kernel-mode everything, identity
    /// mapping, hardware timers but direct (no crossing) delivery.
    pub fn nautilus() -> StackConfig {
        StackConfig {
            timing: TimingSource::HardwareTimer,
            signal: SignalPath::NkIpiBroadcast,
            translation: Translation::Identity,
            coherence: CoherencePolicy::FullMesi,
            isolation: Isolation::Process,
        }
    }

    /// The RTK composition of §V-A: the OpenMP *runtime in the kernel*.
    /// Structurally this is the raw Nautilus stack — identity mapping,
    /// kernel-mode workers kicked by IPI — with the runtime linked in.
    pub fn rtk() -> StackConfig {
        StackConfig {
            timing: TimingSource::HardwareTimer,
            signal: SignalPath::NkIpiBroadcast,
            translation: Translation::Identity,
            coherence: CoherencePolicy::FullMesi,
            isolation: Isolation::Process,
        }
    }

    /// The PIK composition of §V-A: an unmodified *process in the kernel*,
    /// kept safe without paging by CARAT-style compiler guards and
    /// attestation (the `carat::pik` admission path).
    pub fn pik() -> StackConfig {
        StackConfig {
            translation: Translation::Carat,
            ..StackConfig::rtk()
        }
    }

    /// The CCK composition of §V-A: *custom compilation for the kernel* —
    /// the PIK guarantees plus a compiler-interwoven toolchain that owns
    /// timing (task-based execution, no timer interrupts).
    pub fn cck() -> StackConfig {
        StackConfig {
            timing: TimingSource::CompilerInjected,
            ..StackConfig::pik()
        }
    }

    /// Every point in the design space: the cartesian product of all five
    /// axes (2 × 2 × 3 × 2 × 5 = 120 compositions), in a fixed
    /// lexicographic order. Not every point is a *coherent* stack — the
    /// facade's `StackBuilder` validates and rejects the incoherent ones
    /// with typed errors.
    pub fn enumerate() -> impl Iterator<Item = StackConfig> {
        TimingSource::ALL.into_iter().flat_map(|timing| {
            SignalPath::ALL.into_iter().flat_map(move |signal| {
                Translation::ALL.into_iter().flat_map(move |translation| {
                    CoherencePolicy::ALL.into_iter().flat_map(move |coherence| {
                        Isolation::ALL
                            .into_iter()
                            .map(move |isolation| StackConfig {
                                timing,
                                signal,
                                translation,
                                coherence,
                                isolation,
                            })
                    })
                })
            })
        })
    }

    /// Count of axes on which `self` differs from the commodity stack — a
    /// crude "degree of interweaving" used in reports.
    pub fn interweaving_degree(&self) -> usize {
        let c = StackConfig::commodity();
        usize::from(self.timing != c.timing)
            + usize::from(self.signal != c.signal)
            + usize::from(self.translation != c.translation)
            + usize::from(self.coherence != c.coherence)
            + usize::from(self.isolation != c.isolation)
    }
}

impl fmt::Display for StackConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "timing={:?} signal={:?} translation={:?} coherence={:?} isolation={:?}",
            self.timing, self.signal, self.translation, self.coherence, self.isolation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commodity_has_degree_zero() {
        assert_eq!(StackConfig::commodity().interweaving_degree(), 0);
    }

    #[test]
    fn interwoven_differs_on_every_axis() {
        assert_eq!(StackConfig::interwoven().interweaving_degree(), 5);
    }

    #[test]
    fn nautilus_is_partially_interwoven() {
        let d = StackConfig::nautilus().interweaving_degree();
        assert!(d > 0 && d < 5, "nautilus degree = {d}");
    }

    #[test]
    fn enumerate_covers_the_whole_design_space() {
        let all: Vec<StackConfig> = StackConfig::enumerate().collect();
        assert_eq!(all.len(), 2 * 2 * 3 * 2 * 5);
        // No duplicates, and every named preset is in the space.
        for (i, a) in all.iter().enumerate() {
            assert!(!all[i + 1..].contains(a), "duplicate composition {a}");
        }
        for preset in [
            StackConfig::commodity(),
            StackConfig::interwoven(),
            StackConfig::nautilus(),
            StackConfig::rtk(),
            StackConfig::pik(),
            StackConfig::cck(),
        ] {
            assert!(all.contains(&preset));
        }
    }

    #[test]
    fn omp_presets_differ_only_on_the_expected_axes() {
        assert_eq!(StackConfig::rtk(), StackConfig::nautilus());
        let (rtk, pik, cck) = (StackConfig::rtk(), StackConfig::pik(), StackConfig::cck());
        assert_eq!(pik.translation, Translation::Carat);
        assert_eq!(
            StackConfig {
                translation: rtk.translation,
                ..pik
            },
            rtk
        );
        assert_eq!(cck.timing, TimingSource::CompilerInjected);
        assert_eq!(
            StackConfig {
                timing: pik.timing,
                ..cck
            },
            pik
        );
    }

    #[test]
    fn display_is_informative() {
        let s = StackConfig::commodity().to_string();
        assert!(s.contains("Paging"));
        assert!(s.contains("LinuxSignals"));
    }
}
