//! A deterministic discrete-event queue.
//!
//! Every simulator in the workspace (kernel scheduler, heartbeat signaling,
//! coherence protocol, device models) advances simulated time by popping the
//! earliest pending event from an [`EventQueue`]. Determinism matters: the
//! paper's comparisons (Linux vs. Nautilus stacks running *the same
//! workload*) are only meaningful if a run is a pure function of its
//! configuration, so ties in event time are broken by insertion order
//! (FIFO), never by heap internals.

use crate::time::Cycles;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at an absolute simulated time.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: Cycles,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties FIFO.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue generic over the event payload.
///
/// ```
/// use interweave_core::{EventQueue, Cycles};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycles(100), "timer");
/// q.schedule(Cycles(50), "ipi");
/// q.schedule(Cycles(100), "second-timer"); // same time: FIFO after "timer"
///
/// assert_eq!(q.pop().unwrap(), (Cycles(50), "ipi"));
/// assert_eq!(q.pop().unwrap(), (Cycles(100), "timer"));
/// assert_eq!(q.pop().unwrap(), (Cycles(100), "second-timer"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: Cycles,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Cycles::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulator's "now").
    #[inline]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is a simulator bug; it panics in debug builds
    /// and is clamped to `now` in release builds so long sweeps fail soft.
    pub fn schedule(&mut self, at: Cycles, payload: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Schedule `payload` `delay` cycles after the current time.
    pub fn schedule_in(&mut self, delay: Cycles, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pop the earliest event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.payload))
    }

    /// Pop the earliest event only if it fires at or before `deadline`.
    pub fn pop_before(&mut self, deadline: Cycles) -> Option<(Cycles, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Advance `now` to `t` without firing anything (idle time).
    ///
    /// Panics (debug) if events earlier than `t` are pending — skipping over
    /// pending work would silently corrupt a simulation.
    pub fn advance_to(&mut self, t: Cycles) {
        debug_assert!(
            self.peek_time().is_none_or(|p| p >= t),
            "advance_to({t}) would skip a pending event at {:?}",
            self.peek_time()
        );
        if t > self.now {
            self.now = t;
        }
    }

    /// Drop all pending events matching `pred`, returning how many were
    /// removed. Used e.g. to cancel a thread's timers on exit.
    pub fn cancel_where(&mut self, mut pred: impl FnMut(&E) -> bool) -> usize {
        let before = self.heap.len();
        let kept: Vec<Scheduled<E>> = self.heap.drain().filter(|s| !pred(&s.payload)).collect();
        self.heap = kept.into();
        before - self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(30), 3);
        q.schedule(Cycles(10), 1);
        q.schedule(Cycles(20), 2);
        assert_eq!(q.pop(), Some((Cycles(10), 1)));
        assert_eq!(q.pop(), Some((Cycles(20), 2)));
        assert_eq!(q.pop(), Some((Cycles(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycles(5), i)));
        }
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(42), ());
        assert_eq!(q.now(), Cycles::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycles(42));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), "a");
        q.pop();
        q.schedule_in(Cycles(5), "b");
        assert_eq!(q.pop(), Some((Cycles(15), "b")));
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(100), "late");
        assert_eq!(q.pop_before(Cycles(50)), None);
        assert_eq!(q.pop_before(Cycles(100)), Some((Cycles(100), "late")));
    }

    #[test]
    fn cancel_where_removes_matching() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(1), 1);
        q.schedule(Cycles(2), 2);
        q.schedule(Cycles(3), 3);
        let n = q.cancel_where(|e| *e % 2 == 1);
        assert_eq!(n, 2);
        assert_eq!(q.pop(), Some((Cycles(2), 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn advance_to_moves_idle_time() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(Cycles(500));
        assert_eq!(q.now(), Cycles(500));
        // Going backwards is a no-op.
        q.advance_to(Cycles(100));
        assert_eq!(q.now(), Cycles(500));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn schedule_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(100), ());
        q.pop();
        q.schedule(Cycles(50), ());
    }
}
