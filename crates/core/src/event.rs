//! A deterministic discrete-event queue.
//!
//! Every simulator in the workspace (kernel scheduler, heartbeat signaling,
//! coherence protocol, device models) advances simulated time by popping the
//! earliest pending event from an [`EventQueue`]. Determinism matters: the
//! paper's comparisons (Linux vs. Nautilus stacks running *the same
//! workload*) are only meaningful if a run is a pure function of its
//! configuration, so ties in event time are broken by insertion order
//! (FIFO), never by heap internals.
//!
//! Cancellation is *lazy*: [`EventQueue::cancel`] tombstones the event's
//! sequence number in O(1) instead of rebuilding the heap, and tombstoned
//! entries are discarded when they surface at the top. When tombstones
//! outnumber live events the heap is compacted in one pass, so memory stays
//! bounded by the live event count. The heap top is never left tombstoned,
//! which keeps [`EventQueue::peek_time`] an `&self` read.

use crate::telemetry::{Key, Layer, Sink, Unit};
use crate::time::Cycles;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Registry key: events scheduled since the queue was created.
const KEY_SCHEDULED: Key = Key::new("core.evq.scheduled", Layer::Hardware, Unit::Count);
/// Registry key: events popped (fired).
const KEY_POPPED: Key = Key::new("core.evq.popped", Layer::Hardware, Unit::Count);
/// Registry key: events cancelled (tombstoned).
const KEY_CANCELLED: Key = Key::new("core.evq.cancelled", Layer::Hardware, Unit::Count);
/// Registry key: tombstone compaction passes.
const KEY_COMPACTIONS: Key = Key::new("core.evq.compactions", Layer::Hardware, Unit::Count);

/// Lifetime counters the queue maintains for the telemetry plane. Plain
/// integer increments on the hot paths; published on demand with
/// [`EventQueue::publish_telemetry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvqStats {
    /// Events scheduled (either way).
    pub scheduled: u64,
    /// Events popped (fired).
    pub popped: u64,
    /// Events cancelled via handle or predicate.
    pub cancelled: u64,
    /// Tombstone compaction passes performed.
    pub compactions: u64,
}

/// An event scheduled at an absolute simulated time.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: Cycles,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties FIFO.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A ticket for a pending event scheduled with
/// [`EventQueue::schedule_cancellable`]; redeem it with
/// [`EventQueue::cancel`].
///
/// Handles are cheap copyable tokens. A handle whose event has already
/// fired (or already been cancelled) is simply stale: cancelling it returns
/// `false` and does nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    seq: u64,
}

/// A deterministic discrete-event queue generic over the event payload.
///
/// ```
/// use interweave_core::{EventQueue, Cycles};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycles(100), "timer");
/// q.schedule(Cycles(50), "ipi");
/// q.schedule(Cycles(100), "second-timer"); // same time: FIFO after "timer"
///
/// assert_eq!(q.pop().unwrap(), (Cycles(50), "ipi"));
/// assert_eq!(q.pop().unwrap(), (Cycles(100), "timer"));
/// assert_eq!(q.pop().unwrap(), (Cycles(100), "second-timer"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: Cycles,
    /// Seqs of events scheduled via `schedule_cancellable` and still
    /// pending; membership makes `cancel` accurate and idempotent.
    cancellable: HashSet<u64>,
    /// Tombstones: seqs of cancelled events still physically in the heap.
    cancelled: HashSet<u64>,
    /// Lifetime telemetry counters.
    stats: EvqStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Cycles::ZERO,
            cancellable: HashSet::new(),
            cancelled: HashSet::new(),
            stats: EvqStats::default(),
        }
    }

    /// Lifetime queue counters (scheduled/popped/cancelled/compactions).
    #[inline]
    pub fn stats(&self) -> EvqStats {
        self.stats
    }

    /// Publish the queue's lifetime counters into `sink`'s registry as
    /// gauges under telemetry shard `shard`, stamped with the queue's
    /// current time. A standalone queue publishes under shard 0; a queue
    /// that is one shard of a [`crate::shard::ShardedKernel`] publishes
    /// under its own shard index, so the registry's per-shard breakdown
    /// mirrors the kernel's sharding. Gauge semantics make re-publishing
    /// idempotent.
    pub fn publish_telemetry(&self, sink: &Sink, shard: usize) {
        sink.gauge_at(&KEY_SCHEDULED, shard, self.stats.scheduled, self.now);
        sink.gauge_at(&KEY_POPPED, shard, self.stats.popped, self.now);
        sink.gauge_at(&KEY_CANCELLED, shard, self.stats.cancelled, self.now);
        sink.gauge_at(&KEY_COMPACTIONS, shard, self.stats.compactions, self.now);
    }

    /// The time of the most recently popped event (the simulator's "now").
    #[inline]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True when no live events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is a simulator bug; it panics in debug builds
    /// and is clamped to `now` in release builds so long sweeps fail soft.
    pub fn schedule(&mut self, at: Cycles, payload: E) {
        self.push(at, payload);
    }

    /// Schedule `payload` at `at`, returning a handle that can later cancel
    /// the event in O(1) (see [`EventQueue::cancel`]).
    ///
    /// Same time semantics as [`EventQueue::schedule`], including FIFO
    /// tie-breaking against events scheduled either way.
    pub fn schedule_cancellable(&mut self, at: Cycles, payload: E) -> EventHandle {
        let seq = self.push(at, payload);
        self.cancellable.insert(seq);
        EventHandle { seq }
    }

    fn push(&mut self, at: Cycles, payload: E) -> u64 {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.scheduled += 1;
        self.heap.push(Scheduled { at, seq, payload });
        seq
    }

    /// Schedule `payload` `delay` cycles after the current time.
    pub fn schedule_in(&mut self, delay: Cycles, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Cancel the event behind `handle`. Returns true if the event was
    /// still pending (and is now dead), false if it already fired or was
    /// already cancelled.
    ///
    /// The entry is tombstoned, not removed: it stays in the heap until it
    /// surfaces at the top or a compaction sweeps it out.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if !self.cancellable.remove(&handle.seq) {
            return false;
        }
        self.cancelled.insert(handle.seq);
        self.stats.cancelled += 1;
        self.after_cancel();
        true
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycles> {
        // Invariant: the heap top is never tombstoned (every cancellation
        // prunes the top), so peeking needs no skipping.
        self.heap.peek().map(|s| s.at)
    }

    /// Pop the earliest live event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let s = self.heap.pop()?;
        debug_assert!(!self.cancelled.contains(&s.seq), "tombstone at heap top");
        self.cancellable.remove(&s.seq);
        self.prune_top();
        self.now = s.at;
        self.stats.popped += 1;
        Some((s.at, s.payload))
    }

    /// Pop the earliest event only if it fires at or before `deadline`.
    pub fn pop_before(&mut self, deadline: Cycles) -> Option<(Cycles, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Advance `now` to `t` without firing anything (idle time).
    ///
    /// Panics (debug) if events earlier than `t` are pending — skipping over
    /// pending work would silently corrupt a simulation.
    pub fn advance_to(&mut self, t: Cycles) {
        debug_assert!(
            self.peek_time().is_none_or(|p| p >= t),
            "advance_to({t}) would skip a pending event at {:?}",
            self.peek_time()
        );
        if t > self.now {
            self.now = t;
        }
    }

    /// Restore the no-tombstone-at-top invariant and bound tombstone load.
    fn after_cancel(&mut self) {
        // Compact when tombstones exceed half the heap; otherwise just make
        // sure the top entry is live.
        if self.cancelled.len() * 2 > self.heap.len() {
            self.compact();
        } else {
            self.prune_top();
        }
    }

    /// Discard tombstoned entries sitting at the top of the heap.
    fn prune_top(&mut self) {
        while let Some(top) = self.heap.peek() {
            let seq = top.seq;
            if !self.cancelled.contains(&seq) {
                break;
            }
            self.heap.pop();
            self.cancelled.remove(&seq);
        }
    }

    /// Rebuild the heap without its tombstoned entries (one O(n) pass).
    fn compact(&mut self) {
        self.stats.compactions += 1;
        let cancelled = std::mem::take(&mut self.cancelled);
        let kept: Vec<Scheduled<E>> = self
            .heap
            .drain()
            .filter(|s| !cancelled.contains(&s.seq))
            .collect();
        self.heap = kept.into();
    }

    /// Physical heap entries, live + tombstoned (for tests and diagnostics).
    #[doc(hidden)]
    pub fn raw_len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(30), 3);
        q.schedule(Cycles(10), 1);
        q.schedule(Cycles(20), 2);
        assert_eq!(q.pop(), Some((Cycles(10), 1)));
        assert_eq!(q.pop(), Some((Cycles(20), 2)));
        assert_eq!(q.pop(), Some((Cycles(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycles(5), i)));
        }
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(42), ());
        assert_eq!(q.now(), Cycles::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycles(42));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), "a");
        q.pop();
        q.schedule_in(Cycles(5), "b");
        assert_eq!(q.pop(), Some((Cycles(15), "b")));
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(100), "late");
        assert_eq!(q.pop_before(Cycles(50)), None);
        assert_eq!(q.pop_before(Cycles(100)), Some((Cycles(100), "late")));
    }

    #[test]
    fn advance_to_moves_idle_time() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(Cycles(500));
        assert_eq!(q.now(), Cycles(500));
        // Going backwards is a no-op.
        q.advance_to(Cycles(100));
        assert_eq!(q.now(), Cycles(500));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn schedule_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(100), ());
        q.pop();
        q.schedule(Cycles(50), ());
    }

    #[test]
    fn cancel_removes_pending_event() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(1), "a");
        let h = q.schedule_cancellable(Cycles(2), "b");
        q.schedule(Cycles(3), "c");
        assert!(q.cancel(h));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Cycles(1), "a")));
        assert_eq!(q.pop(), Some((Cycles(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_is_idempotent_and_stale_after_fire() {
        let mut q = EventQueue::new();
        let h1 = q.schedule_cancellable(Cycles(1), "first");
        let h2 = q.schedule_cancellable(Cycles(2), "second");
        assert!(q.cancel(h2));
        assert!(!q.cancel(h2), "double cancel must be a no-op");
        assert_eq!(q.pop(), Some((Cycles(1), "first")));
        assert!(!q.cancel(h1), "cancelling a fired event must be a no-op");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_top() {
        let mut q = EventQueue::new();
        let h = q.schedule_cancellable(Cycles(5), "soon");
        q.schedule(Cycles(10), "later");
        assert_eq!(q.peek_time(), Some(Cycles(5)));
        assert!(q.cancel(h));
        // The cancelled event was the top: peek must see through it.
        assert_eq!(q.peek_time(), Some(Cycles(10)));
        assert_eq!(q.pop_before(Cycles(7)), None);
        assert_eq!(q.pop(), Some((Cycles(10), "later")));
    }

    #[test]
    fn cancellation_preserves_fifo_ties() {
        let mut q = EventQueue::new();
        let mut handles = Vec::new();
        for i in 0..50 {
            handles.push(q.schedule_cancellable(Cycles(7), i));
        }
        // Cancel every third event; the survivors must still pop in
        // insertion order.
        for (i, h) in handles.iter().enumerate() {
            if i % 3 == 0 {
                assert!(q.cancel(*h));
            }
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            assert_eq!(t, Cycles(7));
            popped.push(i);
        }
        let expect: Vec<i32> = (0..50).filter(|i| i % 3 != 0).collect();
        assert_eq!(popped, expect);
    }

    #[test]
    fn heavy_cancellation_triggers_compaction() {
        let mut q = EventQueue::new();
        let handles: Vec<EventHandle> = (0..1000)
            .map(|i| q.schedule_cancellable(Cycles(1_000_000 + i), i))
            .collect();
        // Cancel everything except the last event. Tombstones may never
        // exceed half the physical heap.
        for h in &handles[..999] {
            assert!(q.cancel(*h));
        }
        assert_eq!(q.len(), 1);
        assert!(
            q.raw_len() <= 2,
            "compaction failed to bound tombstones: raw_len={}",
            q.raw_len()
        );
        assert_eq!(q.pop(), Some((Cycles(1_000_999), 999)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn advance_to_past_tombstones_never_resurrects() {
        // Regression guard: a cancelled event whose fire time lies behind an
        // `advance_to` target must neither trip the skipped-event assertion
        // (it is not pending work) nor ever pop afterwards.
        let mut q = EventQueue::new();
        let doomed = q.schedule_cancellable(Cycles(100), "doomed");
        q.schedule(Cycles(300), "live");
        assert!(q.cancel(doomed));
        // Advancing beyond the tombstone's time is legal idle time...
        q.advance_to(Cycles(200));
        assert_eq!(q.now(), Cycles(200));
        // ...and the dead event stays dead: only the live one ever pops.
        assert_eq!(q.pop(), Some((Cycles(300), "live")));
        assert_eq!(q.pop(), None);

        // Same with the tombstone buried (not at the heap top): cancel,
        // advance past it, and confirm no resurrection on later pops.
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), "first");
        let mid = q.schedule_cancellable(Cycles(20), "mid");
        q.schedule(Cycles(30), "last");
        assert!(q.cancel(mid));
        assert_eq!(q.pop(), Some((Cycles(10), "first")));
        q.advance_to(Cycles(25));
        assert_eq!(q.pop(), Some((Cycles(30), "last")));
        assert!(q.is_empty());
    }

    #[test]
    fn stats_count_and_publish_as_gauges() {
        use crate::telemetry::{Level, Sink};
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), 0);
        let h = q.schedule_cancellable(Cycles(20), 1);
        q.schedule(Cycles(30), 2);
        q.cancel(h);
        q.pop();
        let st = q.stats();
        assert_eq!((st.scheduled, st.popped, st.cancelled), (3, 1, 1), "{st:?}");
        let sink = Sink::on(Level::Counters);
        q.publish_telemetry(&sink, 0);
        q.publish_telemetry(&sink, 0); // gauge semantics: idempotent
        assert_eq!(sink.counter("core.evq.scheduled"), 3);
        assert_eq!(sink.counter("core.evq.popped"), 1);
        assert_eq!(sink.counter("core.evq.cancelled"), 1);
        assert_eq!(sink.counter("core.evq.compactions"), 0);
    }

    #[test]
    fn len_counts_only_live_events() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), 0);
        let h = q.schedule_cancellable(Cycles(20), 1);
        q.schedule(Cycles(30), 2);
        assert_eq!(q.len(), 3);
        q.cancel(h);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
