//! Fixed-width windowed roll-ups over *simulated* cycles.
//!
//! End-of-run aggregates say *that* a serving knee happened; a campaign
//! needs to see *when*. A [`TimeSeries`] chops the simulated clock into
//! fixed-width windows and rolls counters (sums), gauges (window maxima),
//! and quantile [`Sketch`]es up per window. Windows are indexed by the
//! *absolute* window number `cycles / width`, not by position in the run,
//! which buys two structural properties:
//!
//! - **Merge is canonical.** Two series over disjoint or overlapping shard
//!   slices merge window-by-window (counter add, gauge max, sketch merge),
//!   all order-insensitive — so merging per-shard series in canonical
//!   shard order is bit-identical at every shard count.
//! - **Concatenation is trivial.** A run split into `[0, t)` and `[t, end)`
//!   produces, merged, exactly the series of the whole-range run, because
//!   every observation lands in the same absolute window either way
//!   (provided the split point is window-aligned; an unaligned split
//!   shares its boundary window, and merge handles that too).
//!
//! Backing maps are `BTreeMap`s so iteration is window-index /
//! name-ordered — serialized series are a pure function of the
//! observations, never of insertion order.

use crate::stats::Sketch;
use crate::time::Cycles;
use std::collections::BTreeMap;

/// One window's roll-up: counter sums, gauge maxima, and sketches.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Window {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    sketches: BTreeMap<&'static str, Sketch>,
}

impl Window {
    /// Counter total for `name` in this window (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge maximum observed in this window (`None` when never set).
    pub fn gauge_max(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// The quantile sketch for `name`, if any observation landed here.
    pub fn sketch(&self, name: &str) -> Option<&Sketch> {
        self.sketches.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    fn merge(&mut self, other: &Window) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.gauges {
            let g = self.gauges.entry(k).or_insert(0);
            *g = (*g).max(v);
        }
        for (&k, s) in &other.sketches {
            match self.sketches.get_mut(k) {
                Some(mine) => mine.merge(s),
                None => {
                    self.sketches.insert(k, s.clone());
                }
            }
        }
    }
}

/// A windowed time series over simulated cycles.
///
/// All mutators take the absolute cycle stamp of the observation; the
/// series derives the window as `at.0 / width.0`. Memory is bounded by
/// (windows elapsed) × (names used) × (sketch cap) — independent of the
/// observation count, which is what lets a million-invocation campaign
/// keep a full trajectory resident.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    width: Cycles,
    windows: BTreeMap<u64, Window>,
}

impl TimeSeries {
    /// An empty series with windows of `width` cycles.
    pub fn new(width: Cycles) -> TimeSeries {
        assert!(width.0 > 0, "window width must be positive");
        TimeSeries {
            width,
            windows: BTreeMap::new(),
        }
    }

    /// The configured window width.
    pub fn width(&self) -> Cycles {
        self.width
    }

    fn window_mut(&mut self, at: Cycles) -> &mut Window {
        self.windows.entry(at.0 / self.width.0).or_default()
    }

    /// Add `n` to counter `name` in the window containing `at`.
    pub fn add(&mut self, at: Cycles, name: &'static str, n: u64) {
        *self.window_mut(at).counters.entry(name).or_insert(0) += n;
    }

    /// Record gauge `name` at value `v`; the window keeps the maximum.
    pub fn gauge_max(&mut self, at: Cycles, name: &'static str, v: u64) {
        let g = self.window_mut(at).gauges.entry(name).or_insert(0);
        *g = (*g).max(v);
    }

    /// Record one observation into sketch `name` in the window at `at`.
    /// Sketches are created lazily with [`Sketch::for_latency_us`]
    /// geometry so every window's sketch merges with every other's.
    pub fn observe(&mut self, at: Cycles, name: &'static str, x: f64) {
        self.window_mut(at)
            .sketches
            .entry(name)
            .or_insert_with(Sketch::for_latency_us)
            .add(x);
    }

    /// Absorb `other` window-by-window. Panics on width mismatch —
    /// realigned windows have no meaningful merge.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert!(
            self.width == other.width,
            "window width mismatch: {} vs {}",
            self.width.0,
            other.width.0
        );
        for (&idx, w) in &other.windows {
            match self.windows.get_mut(&idx) {
                Some(mine) => mine.merge(w),
                None => {
                    self.windows.insert(idx, w.clone());
                }
            }
        }
    }

    /// Number of windows that received at least one observation.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no window has data.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Iterate `(window_index, window)` in ascending index order. A
    /// window's covered range is `[idx·width, (idx+1)·width)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Window)> + '_ {
        self.windows.iter().map(|(&idx, w)| (idx, w))
    }

    /// The window at absolute index `idx`, if it has data.
    pub fn window(&self, idx: u64) -> Option<&Window> {
        self.windows.get(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(c: u64) -> Cycles {
        Cycles(c)
    }

    #[test]
    fn observations_land_in_absolute_windows() {
        let mut ts = TimeSeries::new(Cycles(100));
        ts.add(at(5), "done", 1);
        ts.add(at(99), "done", 1);
        ts.add(at(100), "done", 1);
        ts.add(at(250), "done", 4);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.window(0).unwrap().counter("done"), 2);
        assert_eq!(ts.window(1).unwrap().counter("done"), 1);
        assert_eq!(ts.window(2).unwrap().counter("done"), 4);
        assert_eq!(ts.window(3), None);
    }

    #[test]
    fn gauges_keep_window_maxima() {
        let mut ts = TimeSeries::new(Cycles(10));
        ts.gauge_max(at(1), "queue", 3);
        ts.gauge_max(at(2), "queue", 7);
        ts.gauge_max(at(3), "queue", 5);
        assert_eq!(ts.window(0).unwrap().gauge_max("queue"), Some(7));
        assert_eq!(ts.window(0).unwrap().gauge_max("absent"), None);
    }

    #[test]
    fn split_range_concatenation_equals_whole_range() {
        let stamps: Vec<u64> = (0..500).map(|i| i * 7 % 1000).collect();
        let mut whole = TimeSeries::new(Cycles(100));
        let mut lo = TimeSeries::new(Cycles(100));
        let mut hi = TimeSeries::new(Cycles(100));
        for &s in &stamps {
            whole.add(at(s), "n", 1);
            whole.observe(at(s), "lat", s as f64 + 0.5);
            let part = if s < 470 { &mut lo } else { &mut hi };
            part.add(at(s), "n", 1);
            part.observe(at(s), "lat", s as f64 + 0.5);
        }
        // 470 is not window-aligned: window 4 is shared across the split.
        lo.merge(&hi);
        assert_eq!(lo, whole);
    }

    #[test]
    fn merge_is_order_insensitive_across_shards() {
        let mk = |shard: u64| {
            let mut ts = TimeSeries::new(Cycles(50));
            for i in 0..40 {
                let c = (i * 13 + shard * 31) % 200;
                ts.add(at(c), "done", 1);
                ts.gauge_max(at(c), "q", c % 9);
                ts.observe(at(c), "lat", c as f64 / 3.0 + 0.01);
            }
            ts
        };
        let (a, b, c) = (mk(0), mk(1), mk(2));
        let mut abc = a.clone();
        abc.merge(&b);
        abc.merge(&c);
        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);
        assert_eq!(abc, cba);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_rejects_mismatched_widths() {
        let mut a = TimeSeries::new(Cycles(10));
        a.merge(&TimeSeries::new(Cycles(20)));
    }
}
