//! The cross-layer telemetry plane: counter registry, cycle attribution,
//! and unified span tracing.
//!
//! The paper's central claim is about *where cycles go* when the stack is
//! interwoven versus layered — interrupt dispatch, kernel crossings, guard
//! checks, coherence traffic. This module turns that question into data
//! every crate can answer the same way:
//!
//! - a **counter/gauge [`Registry`]** with typed [`Key`]s, per-CPU shards,
//!   and cycle stamps, that core, kernel, coherence, CARAT, heartbeat, and
//!   virtine code all publish into;
//! - a **cycle-[`Attribution`] ledger** that charges every simulated cycle
//!   to a ([`Layer`], mechanism) category, with an invariant check that the
//!   charged categories sum *exactly* to the machine clock;
//! - **unified [`Span`] tracing** generalizing the kernel-only scheduler
//!   timeline into cross-layer intervals (interrupt delivery, fault
//!   recovery, virtine invocations, coherence epochs) exported as
//!   Chrome/Perfetto trace-event JSON with one process track per layer;
//! - **windowed [`TimeSeries`]** roll-ups (see [`timeseries`]) turning
//!   counters/gauges/quantile sketches into per-window trajectories over
//!   simulated cycles, mergeable bit-identically across shards;
//! - a bounded **[`FlightRecorder`]** blackbox (see [`recorder`]) that
//!   keeps the last N events per shard and dumps deterministically when an
//!   invariant trips.
//!
//! Everything hangs off a [`Sink`]: a cheaply clonable handle that is
//! either *off* (the default — every publish call is a single branch on a
//! `None`, so disabled telemetry cannot perturb a simulation or its golden
//! outputs) or *on* at a [`Level`]. The backing state is single-threaded
//! (`Rc<RefCell>`): simulators in this workspace are deterministic
//! single-threaded machines, and keeping telemetry on the same thread keeps
//! snapshot ordering and span order a pure function of the run.
//!
//! Determinism: counters live in `BTreeMap`s keyed by `'static` names, so
//! snapshots iterate in name order; spans append in simulation order; no
//! wall-clock or host state is ever read. Two runs of the same seed produce
//! byte-identical snapshots and traces.

pub mod recorder;
pub mod timeseries;

pub use recorder::{FlightEvent, FlightRecorder};
pub use timeseries::TimeSeries;

use crate::time::Cycles;
use serde::Serialize;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// The stack layer a counter or span belongs to. One Perfetto process
/// track per layer; the attribution table groups by layer first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Layer {
    /// Simulated hardware: idle cycles, interrupt fabric, event machinery.
    Hardware,
    /// Cache-coherence protocol and NoC traffic.
    Coherence,
    /// Kernel: scheduler, context switches, buddy allocator, watchdog.
    Kernel,
    /// Interwoven runtime services (CARAT guards, audits, relocation).
    Runtime,
    /// Virtine execution and the Wasp microhypervisor.
    Virtine,
    /// Application compute: the cycles the workload actually wanted.
    Application,
}

impl Layer {
    /// Every layer, in track order (also the Perfetto `pid` for each).
    pub const ALL: [Layer; 6] = [
        Layer::Hardware,
        Layer::Coherence,
        Layer::Kernel,
        Layer::Runtime,
        Layer::Virtine,
        Layer::Application,
    ];

    /// Display name (also the Perfetto process name).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Hardware => "hardware",
            Layer::Coherence => "coherence",
            Layer::Kernel => "kernel",
            Layer::Runtime => "runtime",
            Layer::Virtine => "virtine",
            Layer::Application => "application",
        }
    }

    /// Stable index: the Perfetto `pid` and the attribution sort key.
    pub fn index(self) -> usize {
        match self {
            Layer::Hardware => 0,
            Layer::Coherence => 1,
            Layer::Kernel => 2,
            Layer::Runtime => 3,
            Layer::Virtine => 4,
            Layer::Application => 5,
        }
    }
}

/// What a counter's value measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Unit {
    /// Plain event count.
    Count,
    /// Simulated cycles.
    Cycles,
    /// Bytes.
    Bytes,
}

impl Unit {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Cycles => "cycles",
            Unit::Bytes => "bytes",
        }
    }
}

/// A typed counter key: the static identity of one registry entry.
///
/// Keys are declared as `const`s by the publishing crate (e.g.
/// `kernel.watchdog.rekicks` in the kernel), so the name, layer, and unit
/// of a counter are fixed at compile time and every publish site agrees.
#[derive(Debug, Clone, Copy)]
pub struct Key {
    /// Registry name, dot-separated by convention (`layer.subsystem.what`).
    pub name: &'static str,
    /// Owning layer.
    pub layer: Layer,
    /// Value unit.
    pub unit: Unit,
}

impl Key {
    /// A new key (usable in `const` declarations).
    pub const fn new(name: &'static str, layer: Layer, unit: Unit) -> Key {
        Key { name, layer, unit }
    }
}

/// One registry cell: per-CPU shards plus the cycle stamp of the last
/// update.
#[derive(Debug, Clone)]
struct Cell {
    layer: Layer,
    unit: Unit,
    per_cpu: Vec<u64>,
    last: Cycles,
}

/// One counter in a [`Snapshot`], totals plus per-CPU shards.
#[derive(Debug, Clone, Serialize)]
pub struct CounterEntry {
    /// Registry name.
    pub name: String,
    /// Owning layer name.
    pub layer: &'static str,
    /// Unit name.
    pub unit: &'static str,
    /// Sum across all shards.
    pub total: u64,
    /// Per-CPU (shard) values; index is the CPU id.
    pub per_cpu: Vec<u64>,
    /// Cycle stamp of the most recent update.
    pub last_cycle: u64,
}

/// The counter/gauge registry: typed keys, per-CPU shards, cycle-stamped.
///
/// Counters are created lazily on first publish; snapshots iterate in name
/// order, so registry output is deterministic regardless of publish order.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    cells: BTreeMap<&'static str, Cell>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn cell(&mut self, key: &Key, cpu: usize) -> &mut Cell {
        let cell = self.cells.entry(key.name).or_insert_with(|| Cell {
            layer: key.layer,
            unit: key.unit,
            per_cpu: Vec::new(),
            last: Cycles::ZERO,
        });
        if cell.per_cpu.len() <= cpu {
            cell.per_cpu.resize(cpu + 1, 0);
        }
        cell
    }

    /// Add `n` to `key`'s shard for `cpu`, stamping the update at `now`.
    pub fn add(&mut self, key: &Key, cpu: usize, n: u64, now: Cycles) {
        let cell = self.cell(key, cpu);
        cell.per_cpu[cpu] += n;
        cell.last = cell.last.max(now);
    }

    /// Set `key`'s shard for `cpu` to `v` (gauge semantics), stamped `now`.
    pub fn set(&mut self, key: &Key, cpu: usize, v: u64, now: Cycles) {
        let cell = self.cell(key, cpu);
        cell.per_cpu[cpu] = v;
        cell.last = cell.last.max(now);
    }

    /// Total of `name` across all shards (0 for an unknown counter).
    pub fn total(&self, name: &str) -> u64 {
        self.cells
            .get(name)
            .map(|c| c.per_cpu.iter().sum())
            .unwrap_or(0)
    }

    /// Value of `name`'s shard for `cpu` (0 when absent).
    pub fn shard(&self, name: &str, cpu: usize) -> u64 {
        self.cells
            .get(name)
            .and_then(|c| c.per_cpu.get(cpu).copied())
            .unwrap_or(0)
    }

    /// Deterministic snapshot: every counter, in name order.
    pub fn snapshot(&self) -> Vec<CounterEntry> {
        self.cells
            .iter()
            .map(|(name, c)| CounterEntry {
                name: name.to_string(),
                layer: c.layer.name(),
                unit: c.unit.name(),
                total: c.per_cpu.iter().sum(),
                per_cpu: c.per_cpu.clone(),
                last_cycle: c.last.get(),
            })
            .collect()
    }
}

/// One row of the cycle-attribution table.
#[derive(Debug, Clone, Serialize)]
pub struct AttributionRow {
    /// Layer the cycles belong to.
    pub layer: &'static str,
    /// Mechanism within the layer (e.g. `context-switch`, `guard-check`).
    pub mechanism: &'static str,
    /// Cycles charged.
    pub cycles: u64,
}

/// The attribution invariant failed: charged cycles do not equal the clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttributionImbalance {
    /// Cycles the ledger holds.
    pub attributed: Cycles,
    /// The machine clock the ledger was checked against.
    pub clock: Cycles,
}

impl std::fmt::Display for AttributionImbalance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "attributed {} cycles != machine clock {}",
            self.attributed, self.clock
        )
    }
}

/// The cycle-attribution ledger: every simulated cycle charged to one
/// ([`Layer`], mechanism) category.
///
/// The whole point is the invariant: [`Attribution::verify`] demands that
/// the categories sum *exactly* to the machine clock, so a "where the
/// cycles went" table is an audit, not an estimate.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    cells: BTreeMap<(usize, &'static str), u64>,
}

impl Attribution {
    /// An empty ledger.
    pub fn new() -> Attribution {
        Attribution::default()
    }

    /// Charge `cycles` to `(layer, mechanism)`.
    pub fn charge(&mut self, layer: Layer, mechanism: &'static str, cycles: Cycles) {
        if cycles > Cycles::ZERO {
            *self.cells.entry((layer.index(), mechanism)).or_insert(0) += cycles.get();
        }
    }

    /// Total cycles charged across all categories.
    pub fn total(&self) -> Cycles {
        Cycles(self.cells.values().sum())
    }

    /// Cycles charged to one `(layer, mechanism)` category.
    pub fn get(&self, layer: Layer, mechanism: &str) -> Cycles {
        Cycles(
            self.cells
                .iter()
                .filter(|((l, m), _)| *l == layer.index() && *m == mechanism)
                .map(|(_, v)| *v)
                .sum(),
        )
    }

    /// The table rows, ordered by layer track then mechanism name.
    pub fn rows(&self) -> Vec<AttributionRow> {
        self.cells
            .iter()
            .map(|((l, m), v)| AttributionRow {
                layer: Layer::ALL[*l].name(),
                mechanism: m,
                cycles: *v,
            })
            .collect()
    }

    /// The invariant check: charged cycles must equal `clock` exactly.
    pub fn verify(&self, clock: Cycles) -> Result<(), AttributionImbalance> {
        let attributed = self.total();
        if attributed == clock {
            Ok(())
        } else {
            Err(AttributionImbalance { attributed, clock })
        }
    }
}

/// What a span represents; maps to the Perfetto `cat` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A task computed.
    Run,
    /// The scheduler switched contexts (preemption or yield).
    Switch,
    /// A CPU sat stalled on a lost kick until the watchdog rescued it.
    Stall,
    /// An interrupt in flight through the delivery fabric.
    Interrupt,
    /// Fault recovery in progress (audit, relocation, restart).
    FaultRecovery,
    /// A virtine invocation, entry to return.
    VirtineCall,
    /// A coherence epoch (one classified phase of the protocol).
    CoherenceEpoch,
    /// Anything else; the string is the Perfetto category.
    Custom(&'static str),
}

impl SpanKind {
    /// The Perfetto `cat` string.
    pub fn cat(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Switch => "sched",
            SpanKind::Stall => "stall",
            SpanKind::Interrupt => "irq",
            SpanKind::FaultRecovery => "fault",
            SpanKind::VirtineCall => "virtine",
            SpanKind::CoherenceEpoch => "coherence",
            SpanKind::Custom(c) => c,
        }
    }
}

/// One traced interval on one track of one layer.
///
/// Generalizes the kernel-only scheduler `TraceEvent`: the kernel's
/// timeline is `layer: Kernel, track: cpu`, a virtine invocation is
/// `layer: Virtine, track: virtine-context`, a coherence epoch is
/// `layer: Coherence`. Within one `(layer, track)` lane spans are either
/// disjoint or properly nested — see [`find_overlap`] and
/// [`well_bracketed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Layer (the Perfetto process).
    pub layer: Layer,
    /// Track within the layer (CPU id, virtine id, …; the Perfetto tid).
    pub track: usize,
    /// Subject id (task id, invocation sequence…; `u64::MAX` for none).
    pub id: u64,
    /// What the interval was.
    pub kind: SpanKind,
    /// Interval start (cycles).
    pub start: Cycles,
    /// Interval end (cycles).
    pub end: Cycles,
}

impl Span {
    /// Duration of the interval.
    pub fn duration(&self) -> Cycles {
        self.end - self.start
    }

    /// Display name (the Perfetto `name` field).
    pub fn label(&self) -> String {
        match self.kind {
            SpanKind::Run => format!("task{}", self.id),
            SpanKind::Switch => "switch".to_string(),
            SpanKind::Stall => "stall".to_string(),
            SpanKind::Interrupt => "irq".to_string(),
            SpanKind::FaultRecovery => "recover".to_string(),
            SpanKind::VirtineCall => format!("virtine{}", self.id),
            SpanKind::CoherenceEpoch => "epoch".to_string(),
            SpanKind::Custom(c) => c.to_string(),
        }
    }
}

/// Verify the strict trace invariant: spans on one `(layer, track)` lane
/// never overlap *at all* (no nesting). Returns the first violating pair.
///
/// This is the scheduler-timeline invariant — one CPU runs one thing at a
/// time. Layers with hierarchical spans (virtine restarts inside an
/// invocation) satisfy the weaker [`well_bracketed`] instead.
pub fn find_overlap(spans: &[Span]) -> Option<(Span, Span)> {
    let mut lanes: BTreeMap<(usize, usize), Vec<Span>> = BTreeMap::new();
    for &s in spans {
        lanes.entry((s.layer.index(), s.track)).or_default().push(s);
    }
    for (_, mut lane) in lanes {
        lane.sort_by_key(|s| (s.start, s.end));
        for w in lane.windows(2) {
            if w[1].start < w[0].end {
                return Some((w[0], w[1]));
            }
        }
    }
    None
}

/// Verify the nesting invariant: any two spans on one `(layer, track)`
/// lane are either disjoint or one properly contains the other (no partial
/// overlap). Returns the first violating pair.
pub fn well_bracketed(spans: &[Span]) -> Option<(Span, Span)> {
    let mut lanes: BTreeMap<(usize, usize), Vec<Span>> = BTreeMap::new();
    for &s in spans {
        lanes.entry((s.layer.index(), s.track)).or_default().push(s);
    }
    for (_, mut lane) in lanes {
        // Sorted by (start, -end): an enclosing span precedes its children.
        lane.sort_by(|a, b| a.start.cmp(&b.start).then(b.end.cmp(&a.end)));
        let mut open: Vec<Span> = Vec::new();
        for &s in &lane {
            while let Some(top) = open.last() {
                if top.end <= s.start {
                    open.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = open.last() {
                // `s` starts inside `top`; it must also end inside it.
                if s.end > top.end {
                    return Some((*top, s));
                }
            }
            open.push(s);
        }
    }
    None
}

/// Render spans as a Chrome/Perfetto trace-event JSON document, one
/// process track per layer (`pid` = layer index, named via metadata
/// events) and one thread per track within it.
///
/// Cycles are reported as microsecond timestamps scaled by
/// `cycles_per_us` (pass the machine frequency in MHz; 1 keeps raw
/// cycles). The output is deterministic: metadata events in layer order,
/// then spans in input order.
pub fn chrome_trace_json(spans: &[Span], cycles_per_us: u64) -> String {
    chrome_trace_json_with_counters(spans, &[], cycles_per_us)
}

/// A named counter trajectory rendered as a Perfetto counter track
/// (`ph:"C"` events): sampled values over simulated time, displayed as a
/// stepped area chart under the owning layer's process track. The serving
/// harness emits goodput / queue-depth / p99 trajectories this way so the
/// knee is *visible* on the same timeline as the spans.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterTrack {
    /// Counter name (one Perfetto track per name).
    pub name: &'static str,
    /// The layer whose process track hosts the counter.
    pub layer: Layer,
    /// `(stamp, value)` samples in ascending stamp order.
    pub points: Vec<(Cycles, f64)>,
}

/// [`chrome_trace_json`] plus counter tracks. With `counters` empty the
/// output is byte-identical to the spans-only form — the existing trace
/// goldens rely on that. Counter events follow the spans, grouped per
/// track in input order; sample order within a track is preserved.
pub fn chrome_trace_json_with_counters(
    spans: &[Span],
    counters: &[CounterTrack],
    cycles_per_us: u64,
) -> String {
    let scale = cycles_per_us.max(1) as f64;
    let mut present = [false; Layer::ALL.len()];
    for s in spans {
        present[s.layer.index()] = true;
    }
    for c in counters {
        present[c.layer.index()] = true;
    }
    let mut out = String::from("[\n");
    let mut first = true;
    let emit = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    for layer in Layer::ALL {
        if present[layer.index()] {
            emit(
                format!(
                    "  {{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    layer.index(),
                    layer.name()
                ),
                &mut out,
                &mut first,
            );
        }
    }
    for s in spans {
        let mut line = String::new();
        let _ = write!(
            line,
            "  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":{},\"tid\":{}}}",
            s.label(),
            s.kind.cat(),
            s.start.as_f64() / scale,
            s.duration().as_f64() / scale,
            s.layer.index(),
            s.track
        );
        emit(line, &mut out, &mut first);
    }
    for c in counters {
        for &(at, v) in &c.points {
            let mut line = String::new();
            let _ = write!(
                line,
                "  {{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{:.3},\"pid\":{},\"tid\":0,\
                 \"args\":{{\"{}\":{:.3}}}}}",
                c.name,
                at.as_f64() / scale,
                c.layer.index(),
                c.name,
                v
            );
            emit(line, &mut out, &mut first);
        }
    }
    out.push_str("\n]");
    out
}

/// How much the telemetry plane records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Counters and cycle attribution only; span publishes are dropped.
    Counters,
    /// Counters, attribution, and full span tracing.
    Full,
}

/// The backing telemetry state behind an enabled [`Sink`].
#[derive(Debug)]
pub struct Telemetry {
    /// Recording level.
    pub level: Level,
    /// The counter/gauge registry.
    pub registry: Registry,
    /// The cycle-attribution ledger.
    pub attribution: Attribution,
    /// Collected spans, in publish order (empty below [`Level::Full`]).
    pub spans: Vec<Span>,
}

impl Telemetry {
    /// Fresh empty state at `level`.
    pub fn new(level: Level) -> Telemetry {
        Telemetry {
            level,
            registry: Registry::new(),
            attribution: Attribution::new(),
            spans: Vec::new(),
        }
    }
}

/// A serializable snapshot of the whole plane: every counter plus the
/// attribution table, both in deterministic order.
#[derive(Debug, Clone, Serialize)]
pub struct Snapshot {
    /// Every counter, in name order.
    pub counters: Vec<CounterEntry>,
    /// The attribution table, in (layer, mechanism) order.
    pub attribution: Vec<AttributionRow>,
}

/// The handle every publisher holds: either off (default; publishing is a
/// single branch and records nothing) or a shared reference to one
/// [`Telemetry`].
///
/// Clones share the same backing state, so one sink threaded through the
/// executor, its allocator, its fault plan, a CARAT runtime, and a Wasp
/// instance aggregates into one registry/ledger/trace.
#[derive(Debug, Clone, Default)]
pub struct Sink {
    inner: Option<Rc<RefCell<Telemetry>>>,
}

impl Sink {
    /// The disabled sink: every publish is a no-op.
    pub fn off() -> Sink {
        Sink::default()
    }

    /// An enabled sink over fresh state at `level`.
    pub fn on(level: Level) -> Sink {
        Sink {
            inner: Some(Rc::new(RefCell::new(Telemetry::new(level)))),
        }
    }

    /// Is this sink recording at all?
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Is this sink recording spans (on, at [`Level::Full`])?
    pub fn spans_on(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|t| t.borrow().level == Level::Full)
    }

    /// Add `n` to `key`'s shard for `cpu` (unstamped).
    pub fn count(&self, key: &Key, cpu: usize, n: u64) {
        self.count_at(key, cpu, n, Cycles::ZERO);
    }

    /// Add `n` to `key`'s shard for `cpu`, stamped with the cycle `now`.
    pub fn count_at(&self, key: &Key, cpu: usize, n: u64, now: Cycles) {
        if let Some(t) = &self.inner {
            t.borrow_mut().registry.add(key, cpu, n, now);
        }
    }

    /// Set `key`'s shard for `cpu` to `v` (gauge semantics, unstamped).
    pub fn gauge(&self, key: &Key, cpu: usize, v: u64) {
        self.gauge_at(key, cpu, v, Cycles::ZERO);
    }

    /// Set `key`'s shard for `cpu` to `v`, stamped with the cycle `now`.
    pub fn gauge_at(&self, key: &Key, cpu: usize, v: u64, now: Cycles) {
        if let Some(t) = &self.inner {
            t.borrow_mut().registry.set(key, cpu, v, now);
        }
    }

    /// Charge `cycles` to the `(layer, mechanism)` attribution category.
    pub fn charge(&self, layer: Layer, mechanism: &'static str, cycles: Cycles) {
        if let Some(t) = &self.inner {
            t.borrow_mut().attribution.charge(layer, mechanism, cycles);
        }
    }

    /// Record a span (dropped below [`Level::Full`]). Zero-length spans
    /// are dropped too: an instant is a counter's job.
    pub fn span(&self, span: Span) {
        if let Some(t) = &self.inner {
            let mut t = t.borrow_mut();
            if t.level == Level::Full && span.end > span.start {
                t.spans.push(span);
            }
        }
    }

    /// Total of counter `name` across shards (0 when off or unknown).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map(|t| t.borrow().registry.total(name))
            .unwrap_or(0)
    }

    /// Run the attribution invariant check against `clock`.
    /// A disabled sink trivially passes (it attributed nothing to nothing).
    pub fn verify_attribution(&self, clock: Cycles) -> Result<(), AttributionImbalance> {
        match &self.inner {
            Some(t) => t.borrow().attribution.verify(clock),
            None => Ok(()),
        }
    }

    /// Cycles attributed so far (0 when off).
    pub fn attributed(&self) -> Cycles {
        self.inner
            .as_ref()
            .map(|t| t.borrow().attribution.total())
            .unwrap_or(Cycles::ZERO)
    }

    /// The attribution table (empty when off).
    pub fn attribution_rows(&self) -> Vec<AttributionRow> {
        self.inner
            .as_ref()
            .map(|t| t.borrow().attribution.rows())
            .unwrap_or_default()
    }

    /// A copy of the collected spans (empty when off).
    pub fn spans(&self) -> Vec<Span> {
        self.inner
            .as_ref()
            .map(|t| t.borrow().spans.clone())
            .unwrap_or_default()
    }

    /// A deterministic snapshot of counters + attribution (None when off).
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.inner.as_ref().map(|t| {
            let t = t.borrow();
            Snapshot {
                counters: t.registry.snapshot(),
                attribution: t.attribution.rows(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K_A: Key = Key::new("test.alpha", Layer::Kernel, Unit::Count);
    const K_B: Key = Key::new("test.beta", Layer::Runtime, Unit::Cycles);

    fn sp(layer: Layer, track: usize, start: u64, end: u64) -> Span {
        Span {
            layer,
            track,
            id: 0,
            kind: SpanKind::Run,
            start: Cycles(start),
            end: Cycles(end),
        }
    }

    #[test]
    fn registry_shards_and_stamps() {
        let mut r = Registry::new();
        r.add(&K_A, 0, 2, Cycles(10));
        r.add(&K_A, 3, 5, Cycles(40));
        r.add(&K_A, 0, 1, Cycles(20));
        assert_eq!(r.total("test.alpha"), 8);
        assert_eq!(r.shard("test.alpha", 0), 3);
        assert_eq!(r.shard("test.alpha", 3), 5);
        assert_eq!(r.shard("test.alpha", 1), 0);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].last_cycle, 40);
        assert_eq!(snap[0].per_cpu, vec![3, 0, 0, 5]);
    }

    #[test]
    fn registry_gauge_sets_instead_of_adding() {
        let mut r = Registry::new();
        r.set(&K_B, 0, 7, Cycles(1));
        r.set(&K_B, 0, 3, Cycles(2));
        assert_eq!(r.total("test.beta"), 3);
    }

    #[test]
    fn snapshot_is_name_ordered_regardless_of_publish_order() {
        let mut r = Registry::new();
        r.add(&K_B, 0, 1, Cycles::ZERO);
        r.add(&K_A, 0, 1, Cycles::ZERO);
        let names: Vec<String> = r.snapshot().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["test.alpha", "test.beta"]);
    }

    #[test]
    fn attribution_verifies_exact_sum() {
        let mut a = Attribution::new();
        a.charge(Layer::Application, "compute", Cycles(70));
        a.charge(Layer::Kernel, "context-switch", Cycles(20));
        a.charge(Layer::Hardware, "idle", Cycles(10));
        assert_eq!(a.total(), Cycles(100));
        assert!(a.verify(Cycles(100)).is_ok());
        let err = a.verify(Cycles(99)).unwrap_err();
        assert_eq!(err.attributed, Cycles(100));
        assert_eq!(err.clock, Cycles(99));
    }

    #[test]
    fn attribution_rows_sorted_by_layer_then_mechanism() {
        let mut a = Attribution::new();
        a.charge(Layer::Application, "compute", Cycles(1));
        a.charge(Layer::Kernel, "z-mech", Cycles(1));
        a.charge(Layer::Kernel, "a-mech", Cycles(1));
        a.charge(Layer::Hardware, "idle", Cycles(1));
        let rows: Vec<(&str, &str)> = a.rows().iter().map(|r| (r.layer, r.mechanism)).collect();
        assert_eq!(
            rows,
            vec![
                ("hardware", "idle"),
                ("kernel", "a-mech"),
                ("kernel", "z-mech"),
                ("application", "compute"),
            ]
        );
    }

    #[test]
    fn overlap_detected_per_lane_only() {
        // Same window on different tracks/layers: fine.
        let ok = [
            sp(Layer::Kernel, 0, 0, 10),
            sp(Layer::Kernel, 1, 5, 15),
            sp(Layer::Virtine, 0, 5, 15),
            sp(Layer::Kernel, 0, 10, 20),
        ];
        assert!(find_overlap(&ok).is_none());
        let bad = [sp(Layer::Kernel, 0, 0, 10), sp(Layer::Kernel, 0, 9, 20)];
        assert!(find_overlap(&bad).is_some());
    }

    #[test]
    fn bracketing_accepts_nesting_rejects_partial_overlap() {
        let nested = [
            sp(Layer::Virtine, 0, 0, 100),
            sp(Layer::Virtine, 0, 10, 40),
            sp(Layer::Virtine, 0, 20, 30),
            sp(Layer::Virtine, 0, 50, 90),
            sp(Layer::Virtine, 0, 100, 120),
        ];
        assert!(well_bracketed(&nested).is_none());
        assert!(
            find_overlap(&nested).is_some(),
            "the strict invariant must reject nesting"
        );
        let partial = [sp(Layer::Virtine, 0, 0, 50), sp(Layer::Virtine, 0, 25, 75)];
        assert!(well_bracketed(&partial).is_some());
    }

    #[test]
    fn chrome_json_has_layer_tracks() {
        let spans = [
            sp(Layer::Kernel, 2, 100, 300),
            Span {
                layer: Layer::Virtine,
                track: 0,
                id: 4,
                kind: SpanKind::VirtineCall,
                start: Cycles(50),
                end: Cycles(250),
            },
        ];
        let json = chrome_trace_json(&spans, 1);
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"args\":{\"name\":\"kernel\"}"));
        assert!(json.contains("\"args\":{\"name\":\"virtine\"}"));
        assert!(json.contains("\"name\":\"task0\""));
        assert!(json.contains("\"name\":\"virtine4\""));
        assert!(json.contains("\"ts\":100.000"));
        assert!(json.contains("\"dur\":200.000"));
        // Parse-validate with serde: the document must be a JSON array of
        // objects with the trace-event required fields.
        let v = serde::json::parse(&json).expect("valid JSON");
        let serde_json::Value::Arr(arr) = &v else {
            panic!("trace is an array");
        };
        assert_eq!(arr.len(), 4, "2 metadata + 2 spans");
        for ev in arr {
            assert!(ev.get("name").is_some() && ev.get("ph").is_some());
            if ev.get("ph").and_then(|p| p.as_str()) == Some("X") {
                for f in ["cat", "ts", "dur", "pid", "tid"] {
                    assert!(ev.get(f).is_some(), "missing {f}");
                }
            }
        }
    }

    #[test]
    fn chrome_json_scales_timestamps_by_frequency() {
        let spans = [sp(Layer::Kernel, 0, 1400, 2800)];
        // 1400 MHz → 1400 cycles = 1 µs.
        let json = chrome_trace_json(&spans, 1400);
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":1.000"));
    }

    #[test]
    fn counter_tracks_emit_perfetto_counter_events() {
        let spans = [sp(Layer::Kernel, 0, 0, 100)];
        let tracks = [CounterTrack {
            name: "goodput",
            layer: Layer::Virtine,
            points: vec![(Cycles(0), 12.0), (Cycles(50), 7.5)],
        }];
        let json = chrome_trace_json_with_counters(&spans, &tracks, 1);
        // Counter-only layers still get their process metadata.
        assert!(json.contains("\"args\":{\"name\":\"virtine\"}"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"goodput\":7.500}"));
        let v = serde::json::parse(&json).expect("valid JSON");
        let serde_json::Value::Arr(arr) = &v else {
            panic!("trace is an array");
        };
        assert_eq!(arr.len(), 5, "2 metadata + 1 span + 2 counter samples");
    }

    #[test]
    fn empty_counter_tracks_keep_the_trace_byte_identical() {
        let spans = [
            sp(Layer::Kernel, 0, 100, 300),
            sp(Layer::Virtine, 4, 50, 250),
        ];
        assert_eq!(
            chrome_trace_json(&spans, 1400),
            chrome_trace_json_with_counters(&spans, &[], 1400)
        );
    }

    #[test]
    fn disabled_sink_is_inert() {
        let s = Sink::off();
        s.count(&K_A, 0, 5);
        s.charge(Layer::Kernel, "x", Cycles(5));
        s.span(sp(Layer::Kernel, 0, 0, 10));
        assert!(!s.is_on());
        assert!(!s.spans_on());
        assert_eq!(s.counter("test.alpha"), 0);
        assert_eq!(s.attributed(), Cycles::ZERO);
        assert!(s.spans().is_empty());
        assert!(s.snapshot().is_none());
        assert!(s.verify_attribution(Cycles(12345)).is_ok());
    }

    #[test]
    fn counters_level_drops_spans_but_keeps_counts() {
        let s = Sink::on(Level::Counters);
        s.count(&K_A, 1, 3);
        s.span(sp(Layer::Kernel, 0, 0, 10));
        assert!(s.is_on() && !s.spans_on());
        assert_eq!(s.counter("test.alpha"), 3);
        assert!(s.spans().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let s = Sink::on(Level::Full);
        let s2 = s.clone();
        s.count(&K_A, 0, 1);
        s2.count(&K_A, 0, 2);
        s2.span(sp(Layer::Kernel, 0, 3, 9));
        assert_eq!(s.counter("test.alpha"), 3);
        assert_eq!(s.spans().len(), 1);
        // Zero-length spans are dropped.
        s.span(sp(Layer::Kernel, 0, 9, 9));
        assert_eq!(s.spans().len(), 1);
    }

    #[test]
    fn snapshot_serializes() {
        let s = Sink::on(Level::Full);
        s.count_at(&K_A, 0, 2, Cycles(33));
        s.charge(Layer::Application, "compute", Cycles(10));
        let snap = s.snapshot().unwrap();
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"test.alpha\""));
        assert!(json.contains("\"compute\""));
        let back = serde::json::parse(&json).unwrap();
        let first = |field: &str| -> serde_json::Value {
            match back.get(field) {
                Some(serde_json::Value::Arr(a)) => a[0].clone(),
                other => panic!("{field} not an array: {other:?}"),
            }
        };
        let counter = first("counters");
        assert_eq!(
            counter.get("total"),
            Some(&serde_json::Value::Num("2".into()))
        );
        assert_eq!(
            counter.get("last_cycle"),
            Some(&serde_json::Value::Num("33".into()))
        );
        assert_eq!(
            first("attribution").get("cycles"),
            Some(&serde_json::Value::Num("10".into()))
        );
    }
}
