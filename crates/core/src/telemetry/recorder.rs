//! A bounded flight recorder: the last N events before something broke.
//!
//! Chaos campaigns fail rarely and late — a fault-ledger imbalance at
//! invocation 900k of a million-invocation run is unreproducible by
//! staring and expensive to re-run under a debugger. The flight recorder
//! is the blackbox answer: every shard/worker/executor keeps a bounded
//! ring of its most recent events (admissions, sheds, watchdog reclaims,
//! message hops), paying O(1) per event and a fixed few KiB of memory.
//! When an invariant trips — a ledger assertion, a watchdog abandon — the
//! ring is dumped *deterministically* (same run, same dump, byte for
//! byte) so the failure reads like a story instead of a stack trace.
//!
//! Events carry a monotone per-recorder sequence number, the simulated
//! cycle stamp, a numeric track (worker/CPU/shard index), a `'static`
//! label, and two bare `u64` operands — no allocation, no formatting on
//! the hot path. The ring never blocks and never reallocates after
//! construction; when full, the oldest event is evicted and counted, so a
//! dump always says how much history was lost.

use crate::time::Cycles;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// One recorded event. Operands `a`/`b` are label-specific (queue depth,
/// request id, backoff cycles, …) — the dump prints them raw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone per-recorder sequence number (0-based, never reused).
    pub seq: u64,
    /// Simulated cycle stamp.
    pub at: Cycles,
    /// Which worker/CPU/shard the event belongs to.
    pub track: usize,
    /// Static event label, e.g. `"shed-queue"` or `"wd-reclaim"`.
    pub what: &'static str,
    /// First operand (label-specific).
    pub a: u64,
    /// Second operand (label-specific).
    pub b: u64,
}

/// A fixed-capacity ring of recent [`FlightEvent`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    cap: usize,
    next_seq: u64,
    ring: VecDeque<FlightEvent>,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `cap` events (`cap > 0`).
    pub fn new(cap: usize) -> FlightRecorder {
        assert!(cap > 0, "flight recorder needs capacity");
        FlightRecorder {
            cap,
            next_seq: 0,
            ring: VecDeque::with_capacity(cap),
        }
    }

    /// Record one event, evicting the oldest when full. O(1), no
    /// allocation after construction.
    pub fn record(&mut self, at: Cycles, track: usize, what: &'static str, a: u64, b: u64) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(FlightEvent {
            seq: self.next_seq,
            at,
            track,
            what,
            a,
            b,
        });
        self.next_seq += 1;
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.next_seq - self.ring.len() as u64
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> + '_ {
        self.ring.iter()
    }

    /// Render the blackbox as a deterministic multi-line dump, oldest
    /// event first, for inclusion in a panic message or failure report.
    pub fn dump(&self, header: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== flight recorder: {header} ({} kept, {} dropped) ===",
            self.ring.len(),
            self.dropped()
        );
        for e in &self.ring {
            let _ = writeln!(
                out,
                "  #{:<6} @{:<12} [{}] {:<16} a={} b={}",
                e.seq, e.at.0, e.track, e.what, e.a, e.b
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_the_most_recent_events() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.record(Cycles(i * 10), 0, "tick", i, 0);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 2);
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, [2, 3, 4]);
    }

    #[test]
    fn dump_is_deterministic_and_reports_loss() {
        let mk = || {
            let mut r = FlightRecorder::new(2);
            r.record(Cycles(1), 0, "admit", 7, 0);
            r.record(Cycles(5), 1, "shed-queue", 8, 6);
            r.record(Cycles(9), 0, "wd-reclaim", 7, 2);
            r
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a, b);
        let d = a.dump("ledger imbalance");
        assert_eq!(d, b.dump("ledger imbalance"));
        assert!(d.contains("2 kept, 1 dropped"));
        assert!(d.contains("wd-reclaim"));
        assert!(!d.contains("admit"), "evicted event must not appear");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        FlightRecorder::new(0);
    }
}
