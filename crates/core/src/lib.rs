//! # interweave-core
//!
//! The hardware substrate of the Interweave laboratory: a deterministic,
//! discrete-event simulated machine with an explicit cycle-cost model.
//!
//! The paper this library reproduces — *The Case for an Interwoven Parallel
//! Hardware/Software Stack* (Hale, Campanoni, Hardavellas, Dinda; SC
//! Workshops 2021) — argues that the costs imposed by the layered commodity
//! stack (interrupt dispatch, kernel/user crossings, paging and TLBs,
//! always-on cache coherence) can be removed by *interweaving* the compiler,
//! runtime, kernel, and hardware. Every experiment in the workspace therefore
//! needs a machine on which those costs are explicit, configurable, and
//! measurable. This crate provides it:
//!
//! - [`time`]: cycle-granularity simulated time and frequency conversion.
//! - [`event`]: a deterministic discrete-event queue, generic over the event
//!   payload, used by every simulator in the workspace.
//! - [`machine`]: machine topology ([`machine::MachineConfig`]) and the cost
//!   model ([`machine::CostModel`]) with presets for the platforms the paper
//!   evaluates on (Xeon Phi KNL, dual-socket x64 server, 8-socket 192-core).
//! - [`interrupt`]: interrupt delivery modes, including the paper's proposed
//!   *pipeline interrupts* (§V-D) delivered at predicted-branch cost.
//! - [`stack`]: the interweaving axes as data — which timing source,
//!   signaling path, address translation, coherence policy, and isolation
//!   mechanism a stack composition uses.
//! - [`stats`]: online statistics, histograms, and geometric means used to
//!   report every figure and table.
//! - [`energy`]: interconnect/cache energy accounting (Fig. 7).
//! - [`rng`]: a small deterministic RNG so all experiments are reproducible.
//! - [`arrivals`]: seeded open-loop arrival processes (Poisson, bursty
//!   MMPP on/off, diurnal) driving the request-serving experiments.
//! - [`faults`]: the seeded fault-injection plane ([`faults::FaultPlan`])
//!   that higher layers consult to inject lost IPIs, allocation failures,
//!   memory bit-flips, and virtine crashes — deterministically.
//! - [`shard`]: the sharded discrete-event kernel — per-CPU [`EventQueue`]
//!   shards advancing under conservative-lookahead synchronization, with a
//!   deterministic cross-shard mailbox (merge order: time, shard, sequence)
//!   so sharded runs are bit-identical to sequential ones.
//! - [`telemetry`]: the cross-layer observability plane — a counter/gauge
//!   registry, a cycle-attribution ledger whose categories must sum exactly
//!   to the machine clock, and unified span tracing exported as
//!   Chrome/Perfetto JSON with one track per layer (plus counter tracks).
//!   Zero-cost when off. Streaming additions: windowed
//!   [`telemetry::TimeSeries`] roll-ups over simulated cycles and the
//!   bounded [`telemetry::FlightRecorder`] blackbox, both mergeable
//!   bit-identically across shards.

#![warn(missing_docs)]

pub mod arrivals;
pub mod energy;
pub mod event;
pub mod faults;
pub mod interrupt;
pub mod machine;
pub mod rng;
pub mod shard;
pub mod stack;
pub mod stats;
pub mod telemetry;
pub mod time;

pub use arrivals::{ArrivalGen, ArrivalKind};
pub use event::{EventHandle, EventQueue, EvqStats};
pub use faults::{FaultClass, FaultConfig, FaultPlan, FaultRecord};
pub use interrupt::DeliveryMode;
pub use machine::{CostModel, MachineConfig, Platform};
pub use rng::SplitMix64;
pub use shard::{Envelope, Mailbox, ShardCtx, ShardedKernel};
pub use stack::StackConfig;
pub use telemetry::{FlightRecorder, Layer, Level, Sink, Span, SpanKind, TimeSeries};
pub use time::{Cycles, Freq, MicroSeconds};
