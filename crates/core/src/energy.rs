//! Interconnect and cache energy accounting.
//!
//! Fig. 7's companion claim is that selective coherence deactivation cuts
//! interconnect energy by ~53 %. The coherence simulator charges energy per
//! architectural action through this accounting type; per-action costs are
//! in picojoules, loosely calibrated to published NoC/cache models (link
//! traversal and router energy dominate; cache array accesses are cheaper).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Energy in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct PicoJoules(pub f64);

impl PicoJoules {
    /// Zero energy.
    pub const ZERO: PicoJoules = PicoJoules(0.0);

    /// Raw value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Add for PicoJoules {
    type Output = PicoJoules;
    fn add(self, rhs: PicoJoules) -> PicoJoules {
        PicoJoules(self.0 + rhs.0)
    }
}

impl AddAssign for PicoJoules {
    fn add_assign(&mut self, rhs: PicoJoules) {
        self.0 += rhs.0;
    }
}

/// Per-action energy costs for the on-chip network and cache hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One flit traversing one router (buffering + arbitration + crossbar).
    pub router_per_flit: PicoJoules,
    /// One flit traversing one inter-router link.
    pub link_per_flit: PicoJoules,
    /// One L1 array access.
    pub l1_access: PicoJoules,
    /// One L2 array access.
    pub l2_access: PicoJoules,
    /// One L3-slice array access.
    pub l3_access: PicoJoules,
    /// One directory lookup/update.
    pub directory_access: PicoJoules,
    /// DRAM access (per cache line).
    pub dram_access: PicoJoules,
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        EnergyModel {
            router_per_flit: PicoJoules(1.5),
            link_per_flit: PicoJoules(2.0),
            l1_access: PicoJoules(10.0),
            l2_access: PicoJoules(25.0),
            l3_access: PicoJoules(60.0),
            directory_access: PicoJoules(15.0),
            dram_access: PicoJoules(640.0),
        }
    }
}

/// Accumulated energy, split by component so reports can isolate the
/// interconnect reduction Fig. 7 claims.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EnergyLedger {
    /// Network-on-chip energy (routers + links).
    pub interconnect: PicoJoules,
    /// Cache array energy (L1+L2+L3).
    pub caches: PicoJoules,
    /// Directory energy.
    pub directory: PicoJoules,
    /// DRAM energy.
    pub dram: PicoJoules,
}

impl EnergyLedger {
    /// A zeroed ledger.
    pub fn new() -> EnergyLedger {
        EnergyLedger::default()
    }

    /// Charge a message traversing `hops` routers/links carrying `flits`
    /// flits.
    pub fn charge_noc(&mut self, model: &EnergyModel, hops: u32, flits: u32) {
        let per_flit = model.router_per_flit + model.link_per_flit;
        self.interconnect += PicoJoules(per_flit.0 * hops as f64 * flits as f64);
    }

    /// Total energy across all components.
    pub fn total(&self) -> PicoJoules {
        self.interconnect + self.caches + self.directory + self.dram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noc_charge_scales_with_hops_and_flits() {
        let model = EnergyModel::default();
        let mut a = EnergyLedger::new();
        let mut b = EnergyLedger::new();
        a.charge_noc(&model, 1, 1);
        b.charge_noc(&model, 3, 2);
        assert!((b.interconnect.get() - 6.0 * a.interconnect.get()).abs() < 1e-9);
    }

    #[test]
    fn total_sums_components() {
        let mut l = EnergyLedger::new();
        l.interconnect = PicoJoules(1.0);
        l.caches = PicoJoules(2.0);
        l.directory = PicoJoules(3.0);
        l.dram = PicoJoules(4.0);
        assert!((l.total().get() - 10.0).abs() < 1e-12);
    }
}
