//! Online statistics used by every experiment report.
//!
//! The paper summarizes with geometric means (CARAT's <6 % overhead, RTK's
//! 22 % gain), rate stability (Fig. 3's "consistent, stable rate"), and
//! cycle-cost distributions (Fig. 4). This module provides the corresponding
//! estimators: Welford online mean/variance, fixed-bucket histograms with
//! percentile queries, and geometric-mean helpers.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Summary {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (stddev / mean); the Fig. 3 stability
    /// metric — a "consistent, stable rate" is a low CV.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// A fixed-width-bucket histogram over `[0, bucket_width × buckets)`, with
/// an overflow bucket; supports percentile queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// A histogram with `buckets` buckets of width `bucket_width`.
    pub fn new(bucket_width: f64, buckets: usize) -> Histogram {
        assert!(bucket_width > 0.0 && buckets > 0);
        Histogram {
            bucket_width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        let idx = (x / self.bucket_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate `p`-th percentile (0 < p ≤ 100) by bucket upper edge.
    /// Returns `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as f64 + 1.0) * self.bucket_width);
            }
        }
        // Landed in the overflow bucket; report the histogram's upper bound.
        Some(self.bucket_width * self.counts.len() as f64)
    }

    /// Fraction of observations that overflowed the tracked range.
    pub fn overflow_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.overflow as f64 / self.total as f64
        }
    }
}

/// An exact-quantile sample reservoir: stores every observation and answers
/// arbitrary quantiles by nearest-rank on the sorted data.
///
/// [`Histogram`] answers percentile queries by bucket upper edge, which is
/// fine for p50/p99 over wide distributions but useless for p999 — at tail
/// ranks the bucket quantization error dominates the signal. Serving-plane
/// reports need exact tails, and at small n the nearest-rank definition is
/// the only one that is unambiguous (no interpolation choices), so `Samples`
/// keeps the raw values. Memory is 8 bytes per observation; the serving
/// sweeps record a few hundred thousand latencies per point, well within
/// budget.
///
/// `PartialEq` compares the *observation multisets* (sorted), so two reports
/// built from the same requests in different merge orders compare equal —
/// the shard-invariance tests rely on this.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    xs: Vec<f64>,
    /// Sorted-prefix watermark: `xs[..sorted]` is known sorted.
    sorted: usize,
}

impl Samples {
    /// An empty reservoir.
    pub fn new() -> Samples {
        Samples::default()
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        self.xs.push(x);
    }

    /// Absorb every observation of `other`.
    pub fn merge(&mut self, other: &Samples) {
        self.xs.extend_from_slice(&other.xs);
        self.sorted = 0;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.xs.len()
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if self.sorted != self.xs.len() {
            self.xs.sort_by(f64::total_cmp);
            self.sorted = self.xs.len();
        }
    }

    /// Exact `q`-quantile for `q` in `(0, 1]` by the nearest-rank method:
    /// the smallest observation such that at least `⌈q·n⌉` observations are
    /// ≤ it. Returns `None` when empty. `quantile(1.0)` is the maximum.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!(q > 0.0 && q <= 1.0, "quantile requires 0 < q <= 1, got {q}");
        if self.xs.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.xs.len();
        let rank = (q * n as f64).ceil() as usize;
        Some(self.xs[rank.clamp(1, n) - 1])
    }

    /// Median (`quantile(0.5)`); 0 when empty.
    pub fn p50(&mut self) -> f64 {
        self.quantile(0.5).unwrap_or(0.0)
    }

    /// 99th percentile; 0 when empty.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99).unwrap_or(0.0)
    }

    /// 99.9th percentile; 0 when empty.
    pub fn p999(&mut self) -> f64 {
        self.quantile(0.999).unwrap_or(0.0)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.xs.is_empty() {
            0.0
        } else {
            self.xs.iter().sum::<f64>() / self.xs.len() as f64
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&mut self) -> f64 {
        self.ensure_sorted();
        self.xs.first().copied().unwrap_or(0.0)
    }

    /// Largest observation (0 when empty).
    pub fn max(&mut self) -> f64 {
        self.ensure_sorted();
        self.xs.last().copied().unwrap_or(0.0)
    }
}

impl PartialEq for Samples {
    fn eq(&self, other: &Samples) -> bool {
        if self.xs.len() != other.xs.len() {
            return false;
        }
        let mut a = self.clone();
        let mut b = other.clone();
        a.ensure_sorted();
        b.ensure_sorted();
        a.xs.iter().zip(&b.xs).all(|(x, y)| x.total_cmp(y).is_eq())
    }
}

/// Geometric mean of strictly positive values. Returns 0.0 for an empty
/// slice; ignores non-positive entries are a caller bug and panic in debug.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut log_sum = 0.0;
    for &x in xs {
        debug_assert!(x > 0.0, "geomean requires positive values, got {x}");
        log_sum += x.max(f64::MIN_POSITIVE).ln();
    }
    (log_sum / xs.len() as f64).exp()
}

/// Geometric-mean *speedup* of paired (baseline, variant) times: values >1
/// mean `variant` is faster. Convenience used by Figs. 6 and 7 reports.
pub fn geomean_speedup(pairs: &[(f64, f64)]) -> f64 {
    let ratios: Vec<f64> = pairs.iter().map(|&(base, var)| base / var).collect();
    geomean(&ratios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn cv_measures_stability() {
        let mut stable = Summary::new();
        let mut jittery = Summary::new();
        for i in 0..100 {
            stable.add(100.0 + (i % 2) as f64); // ±0.5%
            jittery.add(100.0 + (i % 10) as f64 * 20.0); // large swings
        }
        assert!(stable.cv() < 0.01);
        assert!(jittery.cv() > 0.2);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(10.0, 10);
        for i in 0..100 {
            h.add(i as f64);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile(50.0).unwrap();
        assert!((40.0..=60.0).contains(&p50), "p50 = {p50}");
        let p99 = h.percentile(99.0).unwrap();
        assert!(p99 >= 90.0);
    }

    #[test]
    fn histogram_overflow() {
        let mut h = Histogram::new(1.0, 4);
        h.add(0.5);
        h.add(100.0);
        assert_eq!(h.overflow_fraction(), 0.5);
    }

    #[test]
    fn histogram_empty_percentile_is_none() {
        let h = Histogram::new(1.0, 4);
        assert!(h.percentile(50.0).is_none());
    }

    #[test]
    fn samples_small_n_quantiles_are_exact_nearest_rank() {
        let mut s = Samples::new();
        for x in [15.0, 20.0, 35.0, 40.0, 50.0] {
            s.add(x);
        }
        // Nearest-rank on n=5: rank = ceil(q*5).
        assert_eq!(s.quantile(0.30), Some(20.0)); // rank 2
        assert_eq!(s.quantile(0.40), Some(20.0)); // rank 2
        assert_eq!(s.quantile(0.50), Some(35.0)); // rank 3
        assert_eq!(s.quantile(1.00), Some(50.0)); // rank 5 = max
        assert_eq!(s.p50(), 35.0);
        // Tail quantiles at small n resolve to the max, never interpolate.
        assert_eq!(s.p99(), 50.0);
        assert_eq!(s.p999(), 50.0);
    }

    #[test]
    fn samples_p999_picks_the_true_tail_at_large_n() {
        let mut s = Samples::new();
        // 0..10_000 in a scrambled insert order.
        for i in 0..10_000u64 {
            s.add((i.wrapping_mul(7919) % 10_000) as f64);
        }
        // rank = ceil(0.999 * 10_000) = 9990 → value 9989.
        assert_eq!(s.p999(), 9989.0);
        assert_eq!(s.p99(), 9899.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 9999.0);
    }

    #[test]
    fn samples_quantiles_are_monotone_in_q() {
        let mut s = Samples::new();
        for i in 0..997u64 {
            s.add((i.wrapping_mul(31) % 997) as f64);
        }
        let mut prev = f64::NEG_INFINITY;
        for k in 1..=100 {
            let v = s.quantile(k as f64 / 100.0).unwrap();
            assert!(v >= prev, "quantile must be monotone: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn samples_merge_order_does_not_matter_for_equality() {
        let (mut a, mut b) = (Samples::new(), Samples::new());
        let (mut x, mut y) = (Samples::new(), Samples::new());
        for v in [3.0, 1.0, 2.0] {
            x.add(v);
        }
        for v in [9.0, 4.0] {
            y.add(v);
        }
        a.merge(&x);
        a.merge(&y);
        b.merge(&y);
        b.merge(&x);
        assert_eq!(a, b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.quantile(1.0), b.quantile(1.0));
    }

    #[test]
    fn samples_empty_is_none_or_zero() {
        let mut s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.p999(), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile requires")]
    fn samples_rejects_out_of_range_q() {
        let mut s = Samples::new();
        s.add(1.0);
        s.quantile(0.0);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        // geomean(1, 4) = 2; geomean(2, 8) = 4.
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_speedup_pairs() {
        // Variant twice as fast in both cases → speedup 2.
        let s = geomean_speedup(&[(10.0, 5.0), (4.0, 2.0)]);
        assert!((s - 2.0).abs() < 1e-12);
    }
}
