//! Online statistics used by every experiment report.
//!
//! The paper summarizes with geometric means (CARAT's <6 % overhead, RTK's
//! 22 % gain), rate stability (Fig. 3's "consistent, stable rate"), and
//! cycle-cost distributions (Fig. 4). This module provides the corresponding
//! estimators: Welford online mean/variance, fixed-bucket histograms with
//! percentile queries, and geometric-mean helpers.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Summary {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (stddev / mean); the Fig. 3 stability
    /// metric — a "consistent, stable rate" is a low CV.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// A fixed-width-bucket histogram over `[0, bucket_width × buckets)`, with
/// an overflow bucket; supports percentile queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// A histogram with `buckets` buckets of width `bucket_width`.
    pub fn new(bucket_width: f64, buckets: usize) -> Histogram {
        assert!(bucket_width > 0.0 && buckets > 0);
        Histogram {
            bucket_width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        let idx = (x / self.bucket_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate `p`-th percentile (0 < p ≤ 100) by bucket upper edge.
    /// Returns `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as f64 + 1.0) * self.bucket_width);
            }
        }
        // Landed in the overflow bucket; report the histogram's upper bound.
        Some(self.bucket_width * self.counts.len() as f64)
    }

    /// Fraction of observations that overflowed the tracked range.
    pub fn overflow_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.overflow as f64 / self.total as f64
        }
    }
}

/// Geometric mean of strictly positive values. Returns 0.0 for an empty
/// slice; ignores non-positive entries are a caller bug and panic in debug.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut log_sum = 0.0;
    for &x in xs {
        debug_assert!(x > 0.0, "geomean requires positive values, got {x}");
        log_sum += x.max(f64::MIN_POSITIVE).ln();
    }
    (log_sum / xs.len() as f64).exp()
}

/// Geometric-mean *speedup* of paired (baseline, variant) times: values >1
/// mean `variant` is faster. Convenience used by Figs. 6 and 7 reports.
pub fn geomean_speedup(pairs: &[(f64, f64)]) -> f64 {
    let ratios: Vec<f64> = pairs.iter().map(|&(base, var)| base / var).collect();
    geomean(&ratios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn cv_measures_stability() {
        let mut stable = Summary::new();
        let mut jittery = Summary::new();
        for i in 0..100 {
            stable.add(100.0 + (i % 2) as f64); // ±0.5%
            jittery.add(100.0 + (i % 10) as f64 * 20.0); // large swings
        }
        assert!(stable.cv() < 0.01);
        assert!(jittery.cv() > 0.2);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(10.0, 10);
        for i in 0..100 {
            h.add(i as f64);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile(50.0).unwrap();
        assert!((40.0..=60.0).contains(&p50), "p50 = {p50}");
        let p99 = h.percentile(99.0).unwrap();
        assert!(p99 >= 90.0);
    }

    #[test]
    fn histogram_overflow() {
        let mut h = Histogram::new(1.0, 4);
        h.add(0.5);
        h.add(100.0);
        assert_eq!(h.overflow_fraction(), 0.5);
    }

    #[test]
    fn histogram_empty_percentile_is_none() {
        let h = Histogram::new(1.0, 4);
        assert!(h.percentile(50.0).is_none());
    }

    #[test]
    fn geomean_matches_hand_computation() {
        // geomean(1, 4) = 2; geomean(2, 8) = 4.
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_speedup_pairs() {
        // Variant twice as fast in both cases → speedup 2.
        let s = geomean_speedup(&[(10.0, 5.0), (4.0, 2.0)]);
        assert!((s - 2.0).abs() < 1e-12);
    }
}
