//! Online statistics used by every experiment report.
//!
//! The paper summarizes with geometric means (CARAT's <6 % overhead, RTK's
//! 22 % gain), rate stability (Fig. 3's "consistent, stable rate"), and
//! cycle-cost distributions (Fig. 4). This module provides the corresponding
//! estimators: Welford online mean/variance, fixed-bucket histograms with
//! percentile queries, exact sample reservoirs, a fixed-memory mergeable
//! quantile [`Sketch`] for million-invocation campaigns, and geometric-mean
//! helpers.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Summary {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (stddev / mean); the Fig. 3 stability
    /// metric — a "consistent, stable rate" is a low CV.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// A fixed-width-bucket histogram over `[0, bucket_width × buckets)`, with
/// an overflow bucket; supports percentile queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// A histogram with `buckets` buckets of width `bucket_width`.
    pub fn new(bucket_width: f64, buckets: usize) -> Histogram {
        assert!(bucket_width > 0.0 && buckets > 0);
        Histogram {
            bucket_width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        let idx = (x / self.bucket_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate `p`-th percentile (0 < p ≤ 100) by bucket upper edge.
    /// Returns `None` when empty.
    ///
    /// When the requested rank lands in the overflow bucket the answer is
    /// *clamped* to the last finite bucket edge — the true value is at least
    /// that, but the histogram cannot say how much more. Callers printing a
    /// percentile should use [`Histogram::percentile_clamped`] and surface
    /// [`Histogram::overflow_fraction`] when the flag is set, instead of
    /// silently reporting an in-range value.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        self.percentile_clamped(p).map(|(v, _)| v)
    }

    /// [`Histogram::percentile`] plus a clamp flag: `true` means the rank
    /// landed in the overflow bucket and the returned value is only a lower
    /// bound (the last finite bucket edge), not an in-range estimate.
    pub fn percentile_clamped(&self, p: f64) -> Option<(f64, bool)> {
        if self.total == 0 {
            return None;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(((i as f64 + 1.0) * self.bucket_width, false));
            }
        }
        // Landed in the overflow bucket: clamp to the last finite edge and
        // say so — the caller must not present this as an in-range value.
        Some((self.bucket_width * self.counts.len() as f64, true))
    }

    /// Fraction of observations that overflowed the tracked range.
    pub fn overflow_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.overflow as f64 / self.total as f64
        }
    }
}

/// An exact-quantile sample reservoir: stores every observation and answers
/// arbitrary quantiles by nearest-rank on the sorted data.
///
/// [`Histogram`] answers percentile queries by bucket upper edge, which is
/// fine for p50/p99 over wide distributions but useless for p999 — at tail
/// ranks the bucket quantization error dominates the signal. Serving-plane
/// reports need exact tails, and at small n the nearest-rank definition is
/// the only one that is unambiguous (no interpolation choices), so `Samples`
/// keeps the raw values. Memory is 8 bytes per observation; the serving
/// sweeps record a few hundred thousand latencies per point, well within
/// budget.
///
/// `PartialEq` compares the *observation multisets* (sorted), so two reports
/// built from the same requests in different merge orders compare equal —
/// the shard-invariance tests rely on this.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    xs: Vec<f64>,
    /// Sorted-prefix watermark: `xs[..sorted]` is known sorted.
    sorted: usize,
}

impl Samples {
    /// An empty reservoir.
    pub fn new() -> Samples {
        Samples::default()
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        self.xs.push(x);
    }

    /// Absorb every observation of `other`.
    pub fn merge(&mut self, other: &Samples) {
        self.xs.extend_from_slice(&other.xs);
        self.sorted = 0;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.xs.len()
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Heap bytes held by the reservoir — grows without bound with the
    /// observation count, which is exactly why long campaigns swap this
    /// sink for a [`Sketch`].
    pub fn bytes(&self) -> usize {
        std::mem::size_of::<Samples>() + self.xs.capacity() * std::mem::size_of::<f64>()
    }

    fn ensure_sorted(&mut self) {
        if self.sorted != self.xs.len() {
            self.xs.sort_by(f64::total_cmp);
            self.sorted = self.xs.len();
        }
    }

    /// Exact `q`-quantile for `q` in `(0, 1]` by the nearest-rank method:
    /// the smallest observation such that at least `⌈q·n⌉` observations are
    /// ≤ it. Returns `None` when empty. `quantile(1.0)` is the maximum.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!(q > 0.0 && q <= 1.0, "quantile requires 0 < q <= 1, got {q}");
        if self.xs.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.xs.len();
        let rank = (q * n as f64).ceil() as usize;
        Some(self.xs[rank.clamp(1, n) - 1])
    }

    /// Median (`quantile(0.5)`); 0 when empty.
    pub fn p50(&mut self) -> f64 {
        self.quantile(0.5).unwrap_or(0.0)
    }

    /// 99th percentile; 0 when empty.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99).unwrap_or(0.0)
    }

    /// 99.9th percentile; 0 when empty.
    pub fn p999(&mut self) -> f64 {
        self.quantile(0.999).unwrap_or(0.0)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.xs.is_empty() {
            0.0
        } else {
            self.xs.iter().sum::<f64>() / self.xs.len() as f64
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&mut self) -> f64 {
        self.ensure_sorted();
        self.xs.first().copied().unwrap_or(0.0)
    }

    /// Largest observation (0 when empty).
    pub fn max(&mut self) -> f64 {
        self.ensure_sorted();
        self.xs.last().copied().unwrap_or(0.0)
    }
}

impl PartialEq for Samples {
    fn eq(&self, other: &Samples) -> bool {
        if self.xs.len() != other.xs.len() {
            return false;
        }
        let mut a = self.clone();
        let mut b = other.clone();
        a.ensure_sorted();
        b.ensure_sorted();
        a.xs.iter().zip(&b.xs).all(|(x, y)| x.total_cmp(y).is_eq())
    }
}

/// A deterministic, fixed-memory, log-bucketed quantile sketch (HDR-style).
///
/// Buckets are defined purely by IEEE-754 bit structure: a positive finite
/// `f64` with unbiased exponent `e` and mantissa top bits `s` (the top
/// `sub_bits` bits) lands in bucket `(e, s)`, i.e. the value range
/// `[2^e·(1 + s/S), 2^e·(1 + (s+1)/S))` with `S = 2^sub_bits`. No
/// transcendental math is involved, so bucketing is bit-exact on every
/// platform, and a bucket's width over its lower edge is at most
/// `2^-sub_bits` — the documented **relative error bound**: for any
/// quantile `q`, `exact ≤ sketch(q) ≤ exact · (1 + 2^-sub_bits)`
/// (values below `2^lo_exp` are reported at `2^lo_exp`; ranks landing in
/// the overflow bucket are clamped to `2^(hi_exp+1)` — see
/// [`Sketch::quantile_clamped`] and [`Sketch::overflow_fraction`]).
///
/// Counts are pure integers, so [`Sketch::merge`] (bucket-wise `u64` add)
/// is exactly order-insensitive: any merge tree over the same observations
/// yields a bit-identical sketch, which makes sharded reports bit-identical
/// at every shard count. Memory is hard-capped at
/// [`Sketch::max_buckets`] entries regardless of observation count; the
/// backing map is sparse, so a workload touching few distinct magnitudes
/// pays only for the buckets it hits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sketch {
    /// Mantissa bits per octave: each power of two splits into
    /// `2^sub_bits` sub-buckets.
    sub_bits: u32,
    /// Smallest tracked unbiased exponent (values below go to `under`).
    lo_exp: i32,
    /// Largest tracked unbiased exponent (values at or above
    /// `2^(hi_exp+1)` go to `over`).
    hi_exp: i32,
    /// Observations that were zero, negative, or NaN.
    zero: u64,
    /// Positive observations below `2^lo_exp` (incl. subnormals).
    under: u64,
    /// Observations at or above `2^(hi_exp+1)` (incl. +inf).
    over: u64,
    /// Sparse bucket counts, keyed by `(exp - lo_exp) << sub_bits | sub`.
    buckets: BTreeMap<u32, u64>,
    total: u64,
}

impl Sketch {
    /// A sketch tracking `[2^lo_exp, 2^(hi_exp+1))` with `2^sub_bits`
    /// sub-buckets per octave.
    pub fn new(lo_exp: i32, hi_exp: i32, sub_bits: u32) -> Sketch {
        assert!(lo_exp <= hi_exp, "empty exponent range");
        assert!(
            (-1022..=1022).contains(&lo_exp) && (-1022..=1022).contains(&hi_exp),
            "exponent range must stay in normal f64 territory"
        );
        assert!(sub_bits <= 12, "sub_bits > 12 buys no useful precision");
        Sketch {
            sub_bits,
            lo_exp,
            hi_exp,
            zero: 0,
            under: 0,
            over: 0,
            buckets: BTreeMap::new(),
            total: 0,
        }
    }

    /// The geometry every latency sink in the serving plane uses:
    /// `[2^-10, 2^31)` µs ≈ 1 ns to 35 min, 128 sub-buckets per octave
    /// (relative error ≤ 2^-7 ≈ 0.79 %), ≤ 5248 buckets ≈ 42 KiB dense.
    pub fn for_latency_us() -> Sketch {
        Sketch::new(-10, 30, 7)
    }

    /// Record one observation. Zero/negative/NaN count toward the zero
    /// bucket (reported as 0.0); magnitudes outside the tracked range fall
    /// into under/over buckets rather than being dropped, so
    /// [`Sketch::count`] always equals the number of `add` calls.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x.is_nan() || x <= 0.0 {
            self.zero += 1;
            return;
        }
        let bits = x.to_bits();
        let exp = ((bits >> 52) & 0x7FF) as i32 - 1023;
        if exp < self.lo_exp {
            self.under += 1;
        } else if exp > self.hi_exp {
            self.over += 1;
        } else {
            let sub = ((bits >> (52 - self.sub_bits)) & ((1 << self.sub_bits) - 1)) as u32;
            let idx = (((exp - self.lo_exp) as u32) << self.sub_bits) | sub;
            *self.buckets.entry(idx).or_insert(0) += 1;
        }
    }

    /// Absorb every observation of `other`. Panics if the two sketches
    /// were built with different geometry — mixed-resolution merges would
    /// silently degrade the error bound.
    pub fn merge(&mut self, other: &Sketch) {
        assert!(
            self.sub_bits == other.sub_bits
                && self.lo_exp == other.lo_exp
                && self.hi_exp == other.hi_exp,
            "sketch geometry mismatch: ({}, {}, {}) vs ({}, {}, {})",
            self.lo_exp,
            self.hi_exp,
            self.sub_bits,
            other.lo_exp,
            other.hi_exp,
            other.sub_bits
        );
        self.zero += other.zero;
        self.under += other.under;
        self.over += other.over;
        self.total += other.total;
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact power of two `2^e` for `e` in normal-f64 range, built from
    /// bits so no libm rounding is involved.
    fn exp2_exact(e: i32) -> f64 {
        f64::from_bits(((e + 1023) as u64) << 52)
    }

    /// Upper edge of bucket `idx` — the reported quantile value for ranks
    /// landing there.
    fn bucket_upper_edge(&self, idx: u32) -> f64 {
        let subs = (1u32 << self.sub_bits) as f64;
        let exp = self.lo_exp + (idx >> self.sub_bits) as i32;
        let sub = idx & ((1 << self.sub_bits) - 1);
        Sketch::exp2_exact(exp) * (1.0 + (sub + 1) as f64 / subs)
    }

    /// `q`-quantile for `q` in `(0, 1]` by the same nearest-rank rule as
    /// [`Samples::quantile`], reported at the containing bucket's upper
    /// edge. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.quantile_clamped(q).map(|(v, _)| v)
    }

    /// [`Sketch::quantile`] plus a clamp flag: `true` means the rank
    /// landed in the overflow bucket, so the returned value
    /// (`2^(hi_exp+1)`, the top of the tracked range) is only a lower
    /// bound on the true quantile.
    pub fn quantile_clamped(&self, q: f64) -> Option<(f64, bool)> {
        assert!(q > 0.0 && q <= 1.0, "quantile requires 0 < q <= 1, got {q}");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = self.zero;
        if seen >= rank {
            return Some((0.0, false));
        }
        seen += self.under;
        if seen >= rank {
            // Below the tracked range: report its floor.
            return Some((Sketch::exp2_exact(self.lo_exp), false));
        }
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some((self.bucket_upper_edge(idx), false));
            }
        }
        // Landed in the overflow bucket: clamp to the range ceiling.
        Some((Sketch::exp2_exact(self.hi_exp + 1), true))
    }

    /// Median; 0 when empty.
    pub fn p50(&self) -> f64 {
        self.quantile(0.5).unwrap_or(0.0)
    }

    /// 99th percentile; 0 when empty.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99).unwrap_or(0.0)
    }

    /// 99.9th percentile; 0 when empty.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999).unwrap_or(0.0)
    }

    /// The documented relative-error bound: any in-range quantile `v`
    /// satisfies `exact ≤ v ≤ exact · (1 + relative_error())`.
    pub fn relative_error(&self) -> f64 {
        1.0 / (1u64 << self.sub_bits) as f64
    }

    /// Fraction of observations above the tracked range. Any table
    /// printing a clamped quantile should surface this.
    pub fn overflow_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.over as f64 / self.total as f64
        }
    }

    /// Hard cap on distinct buckets, fixed by the geometry: the sketch can
    /// never hold more entries than this no matter how many observations
    /// arrive.
    pub fn max_buckets(&self) -> usize {
        ((self.hi_exp - self.lo_exp + 1) as usize) << self.sub_bits
    }

    /// Approximate heap bytes held — bounded by
    /// `max_buckets() × per-entry cost`, independent of observation count.
    pub fn bytes(&self) -> usize {
        // BTreeMap per-entry overhead is node-dependent; 32 B per entry is
        // a conservative flat estimate (12 B payload + node bookkeeping).
        std::mem::size_of::<Sketch>() + self.buckets.len() * 32
    }
}

/// Geometric mean of strictly positive values. Returns 0.0 for an empty
/// slice; ignores non-positive entries are a caller bug and panic in debug.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut log_sum = 0.0;
    for &x in xs {
        debug_assert!(x > 0.0, "geomean requires positive values, got {x}");
        log_sum += x.max(f64::MIN_POSITIVE).ln();
    }
    (log_sum / xs.len() as f64).exp()
}

/// Geometric-mean *speedup* of paired (baseline, variant) times: values >1
/// mean `variant` is faster. Convenience used by Figs. 6 and 7 reports.
pub fn geomean_speedup(pairs: &[(f64, f64)]) -> f64 {
    let ratios: Vec<f64> = pairs.iter().map(|&(base, var)| base / var).collect();
    geomean(&ratios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn cv_measures_stability() {
        let mut stable = Summary::new();
        let mut jittery = Summary::new();
        for i in 0..100 {
            stable.add(100.0 + (i % 2) as f64); // ±0.5%
            jittery.add(100.0 + (i % 10) as f64 * 20.0); // large swings
        }
        assert!(stable.cv() < 0.01);
        assert!(jittery.cv() > 0.2);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(10.0, 10);
        for i in 0..100 {
            h.add(i as f64);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile(50.0).unwrap();
        assert!((40.0..=60.0).contains(&p50), "p50 = {p50}");
        let p99 = h.percentile(99.0).unwrap();
        assert!(p99 >= 90.0);
    }

    #[test]
    fn histogram_overflow() {
        let mut h = Histogram::new(1.0, 4);
        h.add(0.5);
        h.add(100.0);
        assert_eq!(h.overflow_fraction(), 0.5);
    }

    #[test]
    fn histogram_percentile_in_overflow_clamps_and_flags() {
        let mut h = Histogram::new(1.0, 4);
        h.add(0.5);
        for _ in 0..9 {
            h.add(100.0); // 90% of mass beyond the tracked range
        }
        // p50 sits in the overflow bucket: clamped to the last finite edge
        // (4.0) with the flag raised, never an invented in-range value.
        assert_eq!(h.percentile_clamped(50.0), Some((4.0, true)));
        assert_eq!(h.percentile(50.0), Some(4.0));
        // A rank inside the finite range stays unflagged.
        assert_eq!(h.percentile_clamped(10.0), Some((1.0, false)));
        assert_eq!(h.overflow_fraction(), 0.9);
    }

    #[test]
    fn histogram_empty_percentile_is_none() {
        let h = Histogram::new(1.0, 4);
        assert!(h.percentile(50.0).is_none());
    }

    #[test]
    fn samples_small_n_quantiles_are_exact_nearest_rank() {
        let mut s = Samples::new();
        for x in [15.0, 20.0, 35.0, 40.0, 50.0] {
            s.add(x);
        }
        // Nearest-rank on n=5: rank = ceil(q*5).
        assert_eq!(s.quantile(0.30), Some(20.0)); // rank 2
        assert_eq!(s.quantile(0.40), Some(20.0)); // rank 2
        assert_eq!(s.quantile(0.50), Some(35.0)); // rank 3
        assert_eq!(s.quantile(1.00), Some(50.0)); // rank 5 = max
        assert_eq!(s.p50(), 35.0);
        // Tail quantiles at small n resolve to the max, never interpolate.
        assert_eq!(s.p99(), 50.0);
        assert_eq!(s.p999(), 50.0);
    }

    #[test]
    fn samples_p999_picks_the_true_tail_at_large_n() {
        let mut s = Samples::new();
        // 0..10_000 in a scrambled insert order.
        for i in 0..10_000u64 {
            s.add((i.wrapping_mul(7919) % 10_000) as f64);
        }
        // rank = ceil(0.999 * 10_000) = 9990 → value 9989.
        assert_eq!(s.p999(), 9989.0);
        assert_eq!(s.p99(), 9899.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 9999.0);
    }

    #[test]
    fn samples_quantiles_are_monotone_in_q() {
        let mut s = Samples::new();
        for i in 0..997u64 {
            s.add((i.wrapping_mul(31) % 997) as f64);
        }
        let mut prev = f64::NEG_INFINITY;
        for k in 1..=100 {
            let v = s.quantile(k as f64 / 100.0).unwrap();
            assert!(v >= prev, "quantile must be monotone: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn samples_merge_order_does_not_matter_for_equality() {
        let (mut a, mut b) = (Samples::new(), Samples::new());
        let (mut x, mut y) = (Samples::new(), Samples::new());
        for v in [3.0, 1.0, 2.0] {
            x.add(v);
        }
        for v in [9.0, 4.0] {
            y.add(v);
        }
        a.merge(&x);
        a.merge(&y);
        b.merge(&y);
        b.merge(&x);
        assert_eq!(a, b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.quantile(1.0), b.quantile(1.0));
    }

    #[test]
    fn samples_empty_is_none_or_zero() {
        let mut s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.p999(), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile requires")]
    fn samples_rejects_out_of_range_q() {
        let mut s = Samples::new();
        s.add(1.0);
        s.quantile(0.0);
    }

    #[test]
    fn sketch_quantiles_agree_with_exact_within_documented_bound() {
        let mut sk = Sketch::for_latency_us();
        let mut exact = Samples::new();
        // A scrambled heavy-tailed-ish workload spanning several octaves.
        for i in 0..50_000u64 {
            let r = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
            let x = 1.0 + (r as f64) / 64.0; // [1, ~262145)
            sk.add(x);
            exact.add(x);
        }
        let eps = sk.relative_error();
        assert_eq!(eps, 1.0 / 128.0);
        for q in [0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let e = exact.quantile(q).unwrap();
            let v = sk.quantile(q).unwrap();
            assert!(
                e <= v && v <= e * (1.0 + eps) * (1.0 + 1e-12),
                "q={q}: exact {e}, sketch {v}"
            );
        }
    }

    #[test]
    fn sketch_merge_is_exactly_order_insensitive() {
        let mk = |vals: &[f64]| {
            let mut s = Sketch::for_latency_us();
            for &v in vals {
                s.add(v);
            }
            s
        };
        let parts = [
            mk(&[1.5, 900.0, 0.002]),
            mk(&[7.25, 7.25, 1e9]),
            mk(&[0.0, 33.0]),
        ];
        let mut ab = parts[0].clone();
        ab.merge(&parts[1]);
        ab.merge(&parts[2]);
        let mut ba = parts[2].clone();
        ba.merge(&parts[0]);
        ba.merge(&parts[1]);
        // Bit-identical, not just quantile-close: PartialEq is exact.
        assert_eq!(ab, ba);
        let bulk = mk(&[1.5, 900.0, 0.002, 7.25, 7.25, 1e9, 0.0, 33.0]);
        assert_eq!(ab, bulk);
        assert_eq!(ab.count(), 8);
    }

    #[test]
    fn sketch_routes_zero_under_and_overflow() {
        let mut s = Sketch::new(0, 3, 2); // tracks [1, 16)
        s.add(0.0);
        s.add(-4.0);
        s.add(f64::NAN);
        s.add(0.25); // under
        s.add(2.0); // in range
        s.add(1e6); // over
        assert_eq!(s.count(), 6);
        // Ranks: 3 zero-ish, 1 under, 1 in-range, 1 over.
        assert_eq!(s.quantile_clamped(0.5), Some((0.0, false)));
        assert_eq!(s.quantile_clamped(4.0 / 6.0), Some((1.0, false))); // 2^lo_exp
        assert_eq!(s.quantile_clamped(1.0), Some((16.0, true))); // clamped
        assert!((s.overflow_fraction() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn sketch_memory_is_hard_capped() {
        let mut s = Sketch::for_latency_us();
        assert_eq!(s.max_buckets(), 41 * 128);
        for i in 0..1_000_000u64 {
            s.add((i % 100_000) as f64 / 7.0 + 0.001);
        }
        assert_eq!(s.count(), 1_000_000);
        assert!(s.buckets.len() <= s.max_buckets());
        assert!(s.bytes() <= std::mem::size_of::<Sketch>() + s.max_buckets() * 32);
    }

    #[test]
    fn sketch_empty_is_none_or_zero() {
        let s = Sketch::for_latency_us();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.p999(), 0.0);
        assert_eq!(s.overflow_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn sketch_merge_rejects_mismatched_geometry() {
        let mut a = Sketch::new(-10, 30, 7);
        let b = Sketch::new(-10, 30, 6);
        a.merge(&b);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        // geomean(1, 4) = 2; geomean(2, 8) = 4.
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_speedup_pairs() {
        // Variant twice as fast in both cases → speedup 2.
        let s = geomean_speedup(&[(10.0, 5.0), (4.0, 2.0)]);
        assert!((s - 2.0).abs() < 1e-12);
    }
}
