//! Deterministic random numbers.
//!
//! Every stochastic element of the simulation (OS noise, workload
//! irregularity, device arrivals) draws from a seeded [`SplitMix64`] so each
//! experiment is a pure function of its configuration. SplitMix64 is tiny,
//! fast, and passes BigCrush for the purposes of workload generation; the
//! heavyweight `rand` crate is only used by workload *generators* in higher
//! crates where distributions are convenient.

/// SplitMix64 PRNG (public-domain algorithm by Sebastiano Vigna).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // simulation purposes and determinism is what matters here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi]` inclusive.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Sample from an exponential distribution with the given mean
    /// (inter-arrival times for device events and noise).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // Inverse CDF; clamp the uniform away from 0 to avoid inf.
        -mean * (1.0 - self.f64()).max(f64::MIN_POSITIVE).ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SplitMix64::new(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_approximately_correct() {
        let mut r = SplitMix64::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(50.0)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 2.0, "mean = {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(13);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }
}
