//! Machine topology and the cycle-cost model.
//!
//! The interweaving argument is quantitative: an interrupt costs ~1000 cycles
//! to dispatch (§V-D), a Linux context switch with FP state costs ~5000
//! cycles on Xeon Phi KNL (§IV-C), a kernel/user crossing costs hundreds of
//! cycles plus mitigation flushes, and so on. [`CostModel`] makes every such
//! cost an explicit, named parameter; [`MachineConfig`] bundles a cost model
//! with a topology and frequency. Presets reproduce the platforms in the
//! paper's figures.

use crate::interrupt::DeliveryMode;
use crate::time::{Cycles, Freq};
use serde::{Deserialize, Serialize};

/// Identifier of a CPU (hardware thread) in the simulated machine.
pub type CpuId = usize;

/// The platforms the paper's figures were produced on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Platform {
    /// Intel Xeon Phi Knights Landing (Figs. 4 and 6): many slow cores,
    /// expensive FP state (AVX-512), 1.4 GHz.
    PhiKnl,
    /// Dual-socket x64 server (Fig. 7 caption: 2× 3.3 GHz 12-core).
    XeonServer2S,
    /// The 8-socket, 192-core machine of §V-A's repetition study.
    BigServer8S,
    /// RISC-V on OpenPiton (§V-F): the open-hardware port target. In-order
    /// cores, lean trap entry, no speculation mitigations.
    RiscvOpenPiton,
    /// A deliberately small machine for fast unit tests.
    Test,
}

/// Per-mechanism cycle costs for a simulated machine.
///
/// Grouped by the stack layer that pays them. Every cost that a figure in
/// the paper attributes to the commodity stack appears here by name, so the
/// experiments can show exactly which costs interweaving removes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    // ---- interrupt path (hardware) ----
    /// IDT-based interrupt/exception dispatch: from interrupt assertion to
    /// the first instruction of the handler. The paper measures ~1000 cycles
    /// on x64 (§V-D).
    pub intr_dispatch: Cycles,
    /// Return from interrupt (`iretq`).
    pub intr_return: Cycles,
    /// The paper's proposed *pipeline interrupt* (§V-D): delivery injected
    /// into instruction fetch like a predicted branch; 100–1000× cheaper.
    pub pipeline_branch_dispatch: Cycles,
    /// Writing the APIC ICR to send an IPI.
    pub ipi_send: Cycles,
    /// Wire latency from ICR write to remote-core interrupt assertion.
    pub ipi_latency: Cycles,
    /// Arming the LAPIC one-shot timer.
    pub timer_program: Cycles,

    // ---- kernel/user boundary (layered stacks only) ----
    /// `syscall` entry path.
    pub syscall_entry: Cycles,
    /// `sysret` exit path.
    pub syscall_exit: Cycles,
    /// Spectre/Meltdown mitigation work added to each crossing (§V-D notes
    /// these dominate crossing costs on commodity stacks).
    pub mitigation_flush: Cycles,
    /// Building a user signal frame and entering the handler (the cost the
    /// heartbeat work in §IV-B must pay per signal on Linux).
    pub signal_frame: Cycles,
    /// `sigreturn` back out of a user signal handler.
    pub sigreturn: Cycles,

    // ---- context state (architecture) ----
    /// Save all general-purpose registers (full interrupt frame).
    pub gpr_save: Cycles,
    /// Restore all general-purpose registers.
    pub gpr_restore: Cycles,
    /// Save only the callee-saved subset (a fiber switch at a call site —
    /// the compiler knows caller-saved state is dead, §IV-C).
    pub callee_saved_save: Cycles,
    /// Restore the callee-saved subset.
    pub callee_saved_restore: Cycles,
    /// Save FP/vector state (`xsave`); very expensive on KNL (AVX-512).
    pub fp_save: Cycles,
    /// Restore FP/vector state (`xrstor`).
    pub fp_restore: Cycles,

    // ---- scheduling (software, but cost depends on the kernel design) ----
    /// Real-time (table-driven / EDF) scheduler pick: deterministic.
    pub sched_pick_rt: Cycles,
    /// Fair-share (CFS-like) scheduler pick: red-black tree + load tracking.
    pub sched_pick_fair: Cycles,
    /// Nautilus-like run-queue pick: per-CPU queue, no locks on fast path.
    pub sched_pick_nk: Cycles,

    // ---- memory translation (paging stacks only) ----
    /// A TLB miss page-table walk.
    pub tlb_walk: Cycles,
    /// A minor page fault (fault dispatch + kernel fill path).
    pub page_fault: Cycles,
    /// Data-TLB capacity in entries (per core).
    pub tlb_entries: usize,
    /// Page size in bytes for the paging configuration.
    pub page_size: u64,

    // ---- miscellaneous ----
    /// A call+return pair: the cost compiler-based timing pays instead of
    /// `intr_dispatch` (§IV-C).
    pub call_overhead: Cycles,
    /// A compiler-injected time check (`rdtsc` + compare + predicted branch).
    pub time_check: Cycles,
    /// One kernel-watchdog liveness scan of a CPU's dispatch state (a few
    /// loads and compares over per-CPU bookkeeping; the recovery path the
    /// fault-injection experiments charge per check).
    pub watchdog_check: Cycles,
    /// Cache line size in bytes.
    pub cacheline: u64,
}

impl CostModel {
    /// Baseline x64 cost model; presets tweak from here.
    pub fn x64_default() -> CostModel {
        CostModel {
            intr_dispatch: Cycles(1000),
            intr_return: Cycles(300),
            pipeline_branch_dispatch: Cycles(2),
            ipi_send: Cycles(150),
            ipi_latency: Cycles(400),
            timer_program: Cycles(60),
            syscall_entry: Cycles(150),
            syscall_exit: Cycles(150),
            mitigation_flush: Cycles(450),
            signal_frame: Cycles(4200),
            sigreturn: Cycles(1600),
            gpr_save: Cycles(150),
            gpr_restore: Cycles(150),
            callee_saved_save: Cycles(60),
            callee_saved_restore: Cycles(60),
            fp_save: Cycles(400),
            fp_restore: Cycles(400),
            sched_pick_rt: Cycles(100),
            sched_pick_fair: Cycles(900),
            sched_pick_nk: Cycles(150),
            tlb_walk: Cycles(80),
            page_fault: Cycles(2500),
            tlb_entries: 1536,
            page_size: 4096,
            call_overhead: Cycles(5),
            time_check: Cycles(15),
            watchdog_check: Cycles(25),
            cacheline: 64,
        }
    }

    /// Cost of one full kernel/user round trip (syscall in + out with
    /// mitigations) — what every layered-stack primitive pays at least once.
    pub fn kernel_crossing(&self) -> Cycles {
        self.syscall_entry + self.syscall_exit + self.mitigation_flush
    }

    /// Cost of delivering one signal to a user handler and returning.
    pub fn signal_round_trip(&self) -> Cycles {
        self.signal_frame + self.sigreturn + self.mitigation_flush
    }
}

/// A complete simulated machine: topology, clock, costs, delivery mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Which preset (or `Test`) this machine models.
    pub platform: Platform,
    /// Human-readable name for reports.
    pub name: String,
    /// Core clock.
    pub freq: Freq,
    /// Total hardware threads.
    pub cores: usize,
    /// Socket count (NUMA domains = sockets).
    pub sockets: usize,
    /// Cycle costs.
    pub cost: CostModel,
    /// How interrupts are delivered on this machine (IDT vs. the paper's
    /// pipeline-interrupt extension, §V-D).
    pub delivery: DeliveryMode,
}

impl MachineConfig {
    /// Xeon Phi Knights Landing: the platform of Figs. 4 and 6.
    ///
    /// 64 cores at 1.4 GHz. FP state is AVX-512 (2 KB), so `fp_save`/
    /// `fp_restore` are far more expensive than on a desktop part; the
    /// layered stack additionally pays an eager-save penalty folded into the
    /// fair-scheduler pick. Calibrated so a Linux non-RT thread context
    /// switch with FP state costs ≈5000 cycles (§IV-C).
    pub fn phi_knl() -> MachineConfig {
        let mut cost = CostModel::x64_default();
        cost.fp_save = Cycles(800);
        cost.fp_restore = Cycles(800);
        cost.sched_pick_fair = Cycles(1400);
        cost.sched_pick_nk = Cycles(200);
        cost.gpr_save = Cycles(200);
        cost.gpr_restore = Cycles(200);
        MachineConfig {
            platform: Platform::PhiKnl,
            name: "Xeon Phi KNL (64c, 1.4 GHz)".into(),
            freq: Freq::ghz(1.4),
            cores: 64,
            sockets: 1,
            cost,
            delivery: DeliveryMode::Idt,
        }
    }

    /// Dual-socket Xeon server: Fig. 7's host (2× 3.3 GHz 12-core) and the
    /// 16-CPU heartbeat platform of Fig. 3.
    pub fn xeon_server_2s() -> MachineConfig {
        MachineConfig {
            platform: Platform::XeonServer2S,
            name: "2-socket Xeon (24c, 3.3 GHz)".into(),
            freq: Freq::ghz(3.3),
            cores: 24,
            sockets: 2,
            cost: CostModel::x64_default(),
            delivery: DeliveryMode::Idt,
        }
    }

    /// The 8-socket, 192-core machine on which §V-A repeats the OpenMP study.
    pub fn big_server_8s() -> MachineConfig {
        let mut cost = CostModel::x64_default();
        // Cross-socket IPIs and scheduling get slower with 8 sockets.
        cost.ipi_latency = Cycles(900);
        cost.sched_pick_fair = Cycles(1300);
        MachineConfig {
            platform: Platform::BigServer8S,
            name: "8-socket x64 (192c, 2.1 GHz)".into(),
            freq: Freq::ghz(2.1),
            cores: 192,
            sockets: 8,
            cost,
            delivery: DeliveryMode::Idt,
        }
    }

    /// RISC-V on OpenPiton (§V-F: "By working on open hardware, we
    /// anticipate being able to more deeply explore hardware changes
    /// prompted by the interweaving model"). The cost structure differs
    /// from x64 in the directions that matter to interweaving: trap entry
    /// is lean (no microcoded IDT walk, no TSS stack switch), in-order
    /// cores carry no Spectre/Meltdown mitigation tax, and FP state is a
    /// fraction of AVX-512's — so the *relative* wins of compiler timing
    /// and pipeline interrupts shift, which is exactly what the port is
    /// for.
    pub fn riscv_openpiton() -> MachineConfig {
        let mut cost = CostModel::x64_default();
        cost.intr_dispatch = Cycles(350); // mtvec direct-mode trap entry
        cost.intr_return = Cycles(120); // mret
        cost.mitigation_flush = Cycles(0); // in-order, no transient leaks
        cost.fp_save = Cycles(150); // 32 × 64-bit F/D regs
        cost.fp_restore = Cycles(150);
        cost.signal_frame = Cycles(2600);
        cost.sigreturn = Cycles(900);
        cost.sched_pick_fair = Cycles(700);
        MachineConfig {
            platform: Platform::RiscvOpenPiton,
            name: "RISC-V OpenPiton (16c, 1 GHz)".into(),
            freq: Freq::ghz(1.0),
            cores: 16,
            sockets: 1,
            cost,
            delivery: DeliveryMode::Idt,
        }
    }

    /// A tiny machine for unit tests: `n` cores, 1 GHz (so µs = 1000 cycles).
    pub fn test(n: usize) -> MachineConfig {
        MachineConfig {
            platform: Platform::Test,
            name: format!("test machine ({n}c, 1 GHz)"),
            freq: Freq::ghz(1.0),
            cores: n,
            sockets: 1,
            cost: CostModel::x64_default(),
            delivery: DeliveryMode::Idt,
        }
    }

    /// Same machine with the pipeline-interrupt hardware extension enabled
    /// (§V-D). Used by the ablation benches.
    pub fn with_pipeline_interrupts(mut self) -> MachineConfig {
        self.delivery = DeliveryMode::PipelineBranch;
        self
    }

    /// Restrict the machine to `n` cores (parameter sweeps over scale).
    pub fn with_cores(mut self, n: usize) -> MachineConfig {
        assert!(n >= 1, "a machine needs at least one core");
        self.cores = n;
        self
    }

    /// Cost of dispatching an interrupt under this machine's delivery mode.
    pub fn dispatch_cost(&self) -> Cycles {
        match self.delivery {
            DeliveryMode::Idt => self.cost.intr_dispatch,
            DeliveryMode::PipelineBranch => self.cost.pipeline_branch_dispatch,
        }
    }

    /// Socket that owns a CPU (block distribution).
    pub fn socket_of(&self, cpu: CpuId) -> usize {
        let per = self.cores.div_ceil(self.sockets);
        (cpu / per).min(self.sockets - 1)
    }

    /// True when two CPUs share a socket (used for NUMA-aware costs).
    pub fn same_socket(&self, a: CpuId, b: CpuId) -> bool {
        self.socket_of(a) == self.socket_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shape() {
        let knl = MachineConfig::phi_knl();
        assert_eq!(knl.cores, 64);
        assert_eq!(knl.freq, Freq::ghz(1.4));
        let xs = MachineConfig::xeon_server_2s();
        assert_eq!(xs.sockets, 2);
        assert_eq!(xs.cores, 24);
        let big = MachineConfig::big_server_8s();
        assert_eq!(big.cores, 192);
        assert_eq!(big.sockets, 8);
    }

    #[test]
    fn pipeline_interrupts_change_dispatch_cost() {
        let m = MachineConfig::test(4);
        assert_eq!(m.dispatch_cost(), Cycles(1000));
        let m = m.with_pipeline_interrupts();
        assert_eq!(m.dispatch_cost(), Cycles(2));
        // The §V-D claim: 100–1000× better.
        let ratio = 1000.0 / 2.0;
        assert!((100.0..=1000.0).contains(&ratio));
    }

    #[test]
    fn socket_mapping_is_block_distributed() {
        let m = MachineConfig::xeon_server_2s();
        assert_eq!(m.socket_of(0), 0);
        assert_eq!(m.socket_of(11), 0);
        assert_eq!(m.socket_of(12), 1);
        assert_eq!(m.socket_of(23), 1);
        assert!(m.same_socket(0, 11));
        assert!(!m.same_socket(0, 12));
    }

    #[test]
    fn kernel_crossing_sums_components() {
        let c = CostModel::x64_default();
        assert_eq!(
            c.kernel_crossing(),
            c.syscall_entry + c.syscall_exit + c.mitigation_flush
        );
    }

    #[test]
    fn riscv_preset_reflects_open_hardware_costs() {
        let rv = MachineConfig::riscv_openpiton();
        let x64 = MachineConfig::xeon_server_2s();
        // Lean trap entry and no mitigation tax.
        assert!(rv.cost.intr_dispatch < x64.cost.intr_dispatch);
        assert_eq!(rv.cost.mitigation_flush, Cycles(0));
        // Small FP state (no AVX-512).
        assert!(rv.cost.fp_save < x64.cost.fp_save);
        // Pipeline interrupts still help, but by a smaller factor — open
        // hardware starts closer to the interwoven ideal.
        let ratio = rv.cost.intr_dispatch.as_f64() / rv.cost.pipeline_branch_dispatch.as_f64();
        assert!(ratio < 500.0 && ratio > 50.0, "ratio {ratio}");
    }

    #[test]
    fn with_cores_restricts_scale() {
        let m = MachineConfig::phi_knl().with_cores(16);
        assert_eq!(m.cores, 16);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = MachineConfig::test(4).with_cores(0);
    }
}
