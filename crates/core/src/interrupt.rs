//! Interrupt delivery modes.
//!
//! §V-D of the paper measures IDT-based interrupt dispatch at ~1000 cycles
//! and proposes *pipeline interrupts*: in an interwoven stack with no
//! privilege-level change, a simple interrupt can be injected into the
//! instruction-fetch logic like a predicted branch, making delivery
//! 100–1000× cheaper. Both modes are first-class here so every subsystem
//! (heartbeat signaling, fibers, device handling) can be re-run under the
//! proposed hardware as an ablation.

use crate::faults::FaultPlan;
use crate::telemetry::{Key, Layer, Sink, Unit};
use crate::time::Cycles;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Registry key: interrupts delivered on time.
pub const KEY_DELIVERED: Key = Key::new("core.irq.delivered", Layer::Hardware, Unit::Count);
/// Registry key: interrupts delivered late (fault plane delay).
pub const KEY_DELAYED: Key = Key::new("core.irq.delayed", Layer::Hardware, Unit::Count);
/// Registry key: interrupts dropped by the fabric.
pub const KEY_DROPPED: Key = Key::new("core.irq.dropped", Layer::Hardware, Unit::Count);

/// How the hardware delivers interrupts to a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeliveryMode {
    /// Conventional x64 IDT vectoring: microcoded dispatch, stack switch,
    /// full architectural serialization. ~1000 cycles on the machines the
    /// paper measured.
    Idt,
    /// The paper's proposed extension: delivery as a branch injected into
    /// instruction fetch, with an MSR-based return path akin to `sysret`.
    /// Latency comparable to a correctly predicted branch.
    PipelineBranch,
}

impl DeliveryMode {
    /// True for the interwoven-hardware extension.
    pub fn is_pipeline(self) -> bool {
        matches!(self, DeliveryMode::PipelineBranch)
    }
}

impl fmt::Display for DeliveryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliveryMode::Idt => write!(f, "IDT"),
            DeliveryMode::PipelineBranch => write!(f, "pipeline-branch"),
        }
    }
}

/// The interrupt classes §V-D calls out as candidates for pipeline delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IrqClass {
    /// LAPIC timer — "the first interrupt for consideration" (on-chip, next
    /// to the core).
    LapicTimer,
    /// Inter-processor interrupt (heartbeat broadcast, reschedule).
    Ipi,
    /// Device interrupt (NIC, block).
    Device,
    /// Math-fault style instruction exception (#MF/#XF) — would enable
    /// efficient FP-ISA virtualization.
    MathFault,
    /// General-protection style exception (#GP) — would support CARAT
    /// protection faults and transparent far memory.
    ProtectionFault,
}

impl IrqClass {
    /// Whether the paper's proposed hardware can deliver this class as a
    /// pipeline interrupt. All simple (no privilege change) classes qualify.
    pub fn pipeline_capable(self) -> bool {
        // In an interwoven stack there is no privilege change for any of
        // these, so all qualify; the enum exists so experiments can enable
        // the extension per class.
        true
    }
}

/// What the delivery fabric did with one interrupt once the fault plane had
/// its say. With no fault plan (or a quiet one) every interrupt is
/// [`DeliveryOutcome::Delivered`], bit-identically to the pre-fault-plane
/// behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// Delivered normally.
    Delivered,
    /// Delivered, but the given cycles later than asserted.
    Delayed(Cycles),
    /// Dropped by the fabric: the target core never sees it. Recovery is
    /// the layer above's job (the kernel watchdog, for kicks).
    Dropped,
}

/// Present an interrupt of `class` to the delivery fabric under `plan`.
///
/// Only fabric-crossing classes ([`IrqClass::Ipi`], [`IrqClass::Device`])
/// can be lost or delayed — core-local traps (timer, math/protection
/// faults) have no wire to drop them on, so they always deliver.
pub fn present(class: IrqClass, plan: &mut FaultPlan) -> DeliveryOutcome {
    match class {
        IrqClass::Ipi | IrqClass::Device => {
            if plan.drop_kick() {
                DeliveryOutcome::Dropped
            } else if let Some(d) = plan.kick_delay() {
                DeliveryOutcome::Delayed(d)
            } else {
                DeliveryOutcome::Delivered
            }
        }
        IrqClass::LapicTimer | IrqClass::MathFault | IrqClass::ProtectionFault => {
            DeliveryOutcome::Delivered
        }
    }
}

/// [`present`], publishing the outcome into `sink`'s registry under the
/// target CPU's shard, stamped at `now`. With the sink off this is exactly
/// `present`.
pub fn present_on(
    class: IrqClass,
    plan: &mut FaultPlan,
    sink: &Sink,
    cpu: usize,
    now: Cycles,
) -> DeliveryOutcome {
    let out = present(class, plan);
    let key = match out {
        DeliveryOutcome::Delivered => &KEY_DELIVERED,
        DeliveryOutcome::Delayed(_) => &KEY_DELAYED,
        DeliveryOutcome::Dropped => &KEY_DROPPED,
    };
    sink.count_at(key, cpu, 1, now);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultConfig;

    #[test]
    fn display_names() {
        assert_eq!(DeliveryMode::Idt.to_string(), "IDT");
        assert_eq!(DeliveryMode::PipelineBranch.to_string(), "pipeline-branch");
    }

    #[test]
    fn pipeline_predicate() {
        assert!(!DeliveryMode::Idt.is_pipeline());
        assert!(DeliveryMode::PipelineBranch.is_pipeline());
    }

    #[test]
    fn all_classes_pipeline_capable() {
        for c in [
            IrqClass::LapicTimer,
            IrqClass::Ipi,
            IrqClass::Device,
            IrqClass::MathFault,
            IrqClass::ProtectionFault,
        ] {
            assert!(c.pipeline_capable());
        }
    }

    #[test]
    fn quiet_plan_always_delivers() {
        let mut plan = FaultPlan::quiet(1);
        for c in [IrqClass::Ipi, IrqClass::Device, IrqClass::LapicTimer] {
            assert_eq!(present(c, &mut plan), DeliveryOutcome::Delivered);
        }
    }

    #[test]
    fn core_local_traps_cannot_be_dropped() {
        let mut cfg = FaultConfig::quiet(2);
        cfg.drop_ipi = 1.0;
        let mut plan = FaultPlan::new(cfg);
        assert_eq!(
            present(IrqClass::LapicTimer, &mut plan),
            DeliveryOutcome::Delivered
        );
        assert_eq!(
            present(IrqClass::ProtectionFault, &mut plan),
            DeliveryOutcome::Delivered
        );
        // The fabric-crossing class does get dropped at p=1.
        assert_eq!(present(IrqClass::Ipi, &mut plan), DeliveryOutcome::Dropped);
    }

    #[test]
    fn present_on_counts_each_outcome() {
        use crate::telemetry::{Level, Sink};
        let mut cfg = FaultConfig::quiet(4);
        cfg.drop_ipi = 0.5;
        cfg.delay_ipi = 0.5;
        let mut plan = FaultPlan::new(cfg);
        let sink = Sink::on(Level::Counters);
        let (mut delivered, mut delayed, mut dropped) = (0u64, 0u64, 0u64);
        for i in 0..200 {
            match present_on(IrqClass::Ipi, &mut plan, &sink, i % 4, Cycles(i as u64)) {
                DeliveryOutcome::Delivered => delivered += 1,
                DeliveryOutcome::Delayed(_) => delayed += 1,
                DeliveryOutcome::Dropped => dropped += 1,
            }
        }
        assert_eq!(sink.counter("core.irq.delivered"), delivered);
        assert_eq!(sink.counter("core.irq.delayed"), delayed);
        assert_eq!(sink.counter("core.irq.dropped"), dropped);
        assert_eq!(delivered + delayed + dropped, 200);
        assert!(dropped > 0 && delayed > 0, "p=0.5 must fire both ways");
    }

    #[test]
    fn delayed_delivery_carries_bounded_latency() {
        let mut cfg = FaultConfig::quiet(3);
        cfg.delay_ipi = 1.0;
        cfg.max_ipi_delay = Cycles(250);
        let mut plan = FaultPlan::new(cfg);
        for _ in 0..50 {
            match present(IrqClass::Ipi, &mut plan) {
                DeliveryOutcome::Delayed(d) => assert!(d.get() >= 1 && d.get() <= 250),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }
}
