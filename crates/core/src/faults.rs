//! Deterministic cross-layer fault injection: the fault plane.
//!
//! The paper's robustness argument is that an interwoven stack makes
//! *recovery* cheap: CARAT relocates a damaged allocation instead of killing
//! a process, a virtine restarts from its snapshot in ~10 µs instead of a
//! ~300 µs fork+exec, a kernel watchdog re-kicks a stalled CPU instead of
//! waiting for a coarse softlockup timer. Demonstrating that requires
//! *injecting* the faults — and doing so deterministically, because every
//! comparison in this workspace (interwoven vs. layered, run A vs. run B) is
//! only meaningful if a run is a pure function of its configuration.
//!
//! A [`FaultPlan`] is that injection plane. Each fault class draws from its
//! own [`SplitMix64`](crate::rng::SplitMix64) stream (seeded from one plan
//! seed), so the decision sequence of one class never perturbs another's,
//! and the same seed yields a bit-identical injection trace. A class with
//! probability zero never draws at all: a quiet plan is exactly equivalent
//! to no plan, which is how the no-fault golden outputs stay byte-stable.
//!
//! The plan only *decides*; each layer owns its injection point and its
//! recovery mechanism:
//!
//! | class | injected at | recovered by |
//! |---|---|---|
//! | [`FaultClass::LostIpi`] | kick/IPI dispatch | kernel watchdog re-kick (bounded backoff) |
//! | [`FaultClass::DelayedIpi`] | kick/IPI dispatch | absorbed (late dispatch, causality kept) |
//! | [`FaultClass::AllocFail`] | buddy allocator | typed `AllocError`; scheduler sheds the task |
//! | [`FaultClass::BitFlip`] | interpreter page memory | CARAT audit → quarantine-and-relocate |
//! | [`FaultClass::VirtineKill`] | virtine mid-call | snapshot restart by the microhypervisor |

use crate::rng::SplitMix64;
use crate::telemetry::{Key, Layer, Sink, Unit};
use crate::time::Cycles;

/// Registry keys for injected faults, indexed by [`FaultClass::index`].
const FAULT_KEYS: [Key; 5] = [
    Key::new("core.fault.lost_ipi", Layer::Hardware, Unit::Count),
    Key::new("core.fault.delayed_ipi", Layer::Hardware, Unit::Count),
    Key::new("core.fault.alloc_fail", Layer::Kernel, Unit::Count),
    Key::new("core.fault.bit_flip", Layer::Runtime, Unit::Count),
    Key::new("core.fault.virtine_kill", Layer::Virtine, Unit::Count),
];

/// The injectable fault classes — one per recovery story in the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// An IPI/kick dropped at the delivery fabric (lost wakeup).
    LostIpi,
    /// An IPI delayed by the fabric (late wakeup).
    DelayedIpi,
    /// A kernel buddy allocation forced to fail (out-of-memory).
    AllocFail,
    /// A single bit flipped in interpreter page memory (soft error).
    BitFlip,
    /// A running virtine killed mid-call (crashed guest).
    VirtineKill,
}

impl FaultClass {
    /// Every class, in a fixed order (indexes the plan's per-class streams).
    pub const ALL: [FaultClass; 5] = [
        FaultClass::LostIpi,
        FaultClass::DelayedIpi,
        FaultClass::AllocFail,
        FaultClass::BitFlip,
        FaultClass::VirtineKill,
    ];

    /// Display name used by reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::LostIpi => "lost IPI",
            FaultClass::DelayedIpi => "delayed IPI",
            FaultClass::AllocFail => "alloc failure",
            FaultClass::BitFlip => "memory bit-flip",
            FaultClass::VirtineKill => "virtine crash",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultClass::LostIpi => 0,
            FaultClass::DelayedIpi => 1,
            FaultClass::AllocFail => 2,
            FaultClass::BitFlip => 3,
            FaultClass::VirtineKill => 4,
        }
    }

    /// The registry key under which injections of this class are counted
    /// when the plan carries a telemetry sink.
    pub fn key(self) -> &'static Key {
        &FAULT_KEYS[self.index()]
    }
}

/// Per-class injection rates. A probability of zero disarms the class — it
/// then consumes no random draws, so a fully quiet config is bit-equivalent
/// to running with no plan at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for all per-class decision streams.
    pub seed: u64,
    /// Probability an IPI/kick is dropped at dispatch.
    pub drop_ipi: f64,
    /// Probability an IPI/kick is delayed (evaluated only if not dropped).
    pub delay_ipi: f64,
    /// Maximum injected IPI delay (uniform in `1..=max`).
    pub max_ipi_delay: Cycles,
    /// Probability a buddy allocation fails with `OutOfMemory`.
    pub alloc_fail: f64,
    /// Probability a bit flip is injected per scrub opportunity.
    pub bit_flip: f64,
    /// Probability a virtine invocation is killed mid-call.
    pub virtine_kill: f64,
}

impl FaultConfig {
    /// A fully disarmed config (no class ever fires) with the given seed.
    pub fn quiet(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop_ipi: 0.0,
            delay_ipi: 0.0,
            max_ipi_delay: Cycles(2_000),
            alloc_fail: 0.0,
            bit_flip: 0.0,
            virtine_kill: 0.0,
        }
    }
}

/// One injected fault, in injection order: the deterministic trace two runs
/// of the same seed must reproduce bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Which class fired.
    pub class: FaultClass,
    /// The class-local decision index (draw number) that fired.
    pub draw: u64,
}

/// The seeded fault-injection plane.
///
/// Layers consult the plan at their injection points ([`FaultPlan::drop_kick`]
/// at IPI dispatch, [`FaultPlan::fail_alloc`] in the buddy allocator, …);
/// the plan answers deterministically and records every injection in its
/// [trace](FaultPlan::trace).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    /// One decision stream per class, so classes never perturb each other.
    rng: [SplitMix64; 5],
    /// Decision draws consumed per class (fired or not).
    draws: [u64; 5],
    /// Injections per class.
    injected: [u64; 5],
    trace: Vec<FaultRecord>,
    /// Telemetry sink injections are published into (off by default, so a
    /// plan without a sink behaves bit-identically to one predating it).
    sink: Sink,
}

impl FaultPlan {
    /// A plan for `cfg`, with one independent stream per fault class.
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        // Distinct odd salts decorrelate the per-class streams.
        const SALTS: [u64; 5] = [
            0x9E37_79B9_7F4A_7C15,
            0xC2B2_AE3D_27D4_EB4F,
            0x1656_67B1_9E37_79F9,
            0xD6E8_FEB8_6659_FD93,
            0xA24B_AED4_963E_E407,
        ];
        let rng = std::array::from_fn(|i| SplitMix64::new(cfg.seed ^ SALTS[i]));
        FaultPlan {
            cfg,
            rng,
            draws: [0; 5],
            injected: [0; 5],
            trace: Vec::new(),
            sink: Sink::off(),
        }
    }

    /// A fully disarmed plan (useful as a placeholder; injects nothing).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan::new(FaultConfig::quiet(seed))
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Attach a telemetry sink: every injection is additionally counted
    /// under its class key ([`FaultClass::key`]). Decisions are unchanged —
    /// the sink observes, it never perturbs the decision streams.
    pub fn set_sink(&mut self, sink: Sink) {
        self.sink = sink;
    }

    /// Decide one class: burn a draw, record an injection if it fired.
    fn decide(&mut self, class: FaultClass, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let i = class.index();
        let draw = self.draws[i];
        self.draws[i] += 1;
        let fired = self.rng[i].chance(p);
        if fired {
            self.injected[i] += 1;
            self.trace.push(FaultRecord { class, draw });
            self.sink.count(class.key(), 0, 1);
        }
        fired
    }

    /// Should this IPI/kick be dropped at the delivery fabric?
    pub fn drop_kick(&mut self) -> bool {
        self.decide(FaultClass::LostIpi, self.cfg.drop_ipi)
    }

    /// Extra delivery latency injected into this IPI/kick, if any.
    pub fn kick_delay(&mut self) -> Option<Cycles> {
        if !self.decide(FaultClass::DelayedIpi, self.cfg.delay_ipi) {
            return None;
        }
        let max = self.cfg.max_ipi_delay.get().max(1);
        Some(Cycles(
            self.rng[FaultClass::DelayedIpi.index()].range(1, max),
        ))
    }

    /// Should this buddy allocation fail with `OutOfMemory`?
    pub fn fail_alloc(&mut self) -> bool {
        self.decide(FaultClass::AllocFail, self.cfg.alloc_fail)
    }

    /// One scrub-interval bit-flip decision over `n_sites` candidate words:
    /// `Some((site, bit))` picks the word index and the bit to flip.
    pub fn flip_spec(&mut self, n_sites: u64) -> Option<(u64, u32)> {
        if n_sites == 0 || !self.decide(FaultClass::BitFlip, self.cfg.bit_flip) {
            return None;
        }
        let r = &mut self.rng[FaultClass::BitFlip.index()];
        let site = r.below(n_sites);
        let bit = r.below(64) as u32;
        Some((site, bit))
    }

    /// Fuel point at which to kill this virtine invocation, if the class
    /// fires; always strictly inside `budget` so the kill lands mid-call.
    pub fn virtine_kill_at(&mut self, budget: u64) -> Option<u64> {
        if budget < 2 || !self.decide(FaultClass::VirtineKill, self.cfg.virtine_kill) {
            return None;
        }
        let r = &mut self.rng[FaultClass::VirtineKill.index()];
        Some(r.range(1, budget - 1))
    }

    /// Injections of `class` so far.
    pub fn injected(&self, class: FaultClass) -> u64 {
        self.injected[class.index()]
    }

    /// Total injections across all classes.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// The injection trace, in order. Two runs of the same seed over the
    /// same workload must produce identical traces (property-tested in the
    /// facade crate).
    pub fn trace(&self) -> &[FaultRecord] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop_ipi: 0.3,
            delay_ipi: 0.2,
            max_ipi_delay: Cycles(500),
            alloc_fail: 0.25,
            bit_flip: 0.4,
            virtine_kill: 0.35,
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let mut a = FaultPlan::new(noisy(7));
        let mut b = FaultPlan::new(noisy(7));
        for _ in 0..200 {
            assert_eq!(a.drop_kick(), b.drop_kick());
            assert_eq!(a.kick_delay(), b.kick_delay());
            assert_eq!(a.fail_alloc(), b.fail_alloc());
            assert_eq!(a.flip_spec(64), b.flip_spec(64));
            assert_eq!(a.virtine_kill_at(10_000), b.virtine_kill_at(10_000));
        }
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.total_injected(), b.total_injected());
        assert!(a.total_injected() > 0, "rates this high must fire");
    }

    #[test]
    fn classes_use_independent_streams() {
        // Consuming draws of one class must not change another's decisions.
        let mut a = FaultPlan::new(noisy(11));
        let mut b = FaultPlan::new(noisy(11));
        for _ in 0..50 {
            let _ = a.drop_kick(); // extra LostIpi draws in plan A only
        }
        for _ in 0..50 {
            assert_eq!(a.fail_alloc(), b.fail_alloc());
        }
    }

    #[test]
    fn quiet_plan_never_fires_and_never_draws() {
        let mut p = FaultPlan::quiet(99);
        for _ in 0..100 {
            assert!(!p.drop_kick());
            assert!(p.kick_delay().is_none());
            assert!(!p.fail_alloc());
            assert!(p.flip_spec(8).is_none());
            assert!(p.virtine_kill_at(1000).is_none());
        }
        assert_eq!(p.total_injected(), 0);
        assert!(p.trace().is_empty());
        assert_eq!(p.draws, [0; 5], "a disarmed class must not consume draws");
    }

    #[test]
    fn kill_point_lands_mid_call() {
        let mut cfg = FaultConfig::quiet(3);
        cfg.virtine_kill = 1.0;
        let mut p = FaultPlan::new(cfg);
        for _ in 0..100 {
            let k = p.virtine_kill_at(5_000).expect("p=1 must fire");
            assert!((1..5_000).contains(&k));
        }
    }

    #[test]
    fn sink_counts_injections_without_perturbing_decisions() {
        use crate::telemetry::{Level, Sink};
        let mut plain = FaultPlan::new(noisy(13));
        let mut wired = FaultPlan::new(noisy(13));
        let sink = Sink::on(Level::Counters);
        wired.set_sink(sink.clone());
        for _ in 0..200 {
            assert_eq!(plain.drop_kick(), wired.drop_kick());
            assert_eq!(plain.kick_delay(), wired.kick_delay());
            assert_eq!(plain.fail_alloc(), wired.fail_alloc());
            assert_eq!(plain.flip_spec(64), wired.flip_spec(64));
            assert_eq!(plain.virtine_kill_at(10_000), wired.virtine_kill_at(10_000));
        }
        assert_eq!(plain.trace(), wired.trace());
        for class in FaultClass::ALL {
            assert_eq!(sink.counter(class.key().name), wired.injected(class));
        }
    }

    #[test]
    fn flip_spec_within_bounds() {
        let mut cfg = FaultConfig::quiet(5);
        cfg.bit_flip = 1.0;
        let mut p = FaultPlan::new(cfg);
        for _ in 0..100 {
            let (site, bit) = p.flip_spec(17).expect("p=1 must fire");
            assert!(site < 17);
            assert!(bit < 64);
        }
        assert!(p.flip_spec(0).is_none(), "no sites, no flip");
    }
}
