//! A sharded deterministic discrete-event kernel with conservative
//! lookahead.
//!
//! [`EventQueue`] gives one simulator one totally-ordered timeline. This
//! module scales that to many timelines without giving up determinism:
//! a [`ShardedKernel`] holds one `EventQueue` *shard* per simulated CPU
//! (or CPU group), and each shard advances independently. The only
//! synchronization points are the events that genuinely cross shards —
//! IPIs, coherence/NoC messages, cross-NUMA executor kicks — and those
//! travel through a deterministic cross-shard [`Mailbox`].
//!
//! Two rules make the result a pure function of the configuration, at
//! every shard count:
//!
//! 1. **Total order.** The kernel's global event order is lexicographic
//!    `(time, shard id, per-shard sequence number)`. With one shard this
//!    degenerates to the plain `EventQueue` order `(time, seq)`, so a
//!    single-shard kernel is bit-identical to the unsharded simulator.
//! 2. **Conservative lookahead.** A cross-shard send posted at sender
//!    time `τ` may not be delivered before `τ + lookahead`. Within a
//!    window `[W, W + lookahead)` — `W` being the earliest pending event
//!    across all shards — every shard can therefore run *in parallel*
//!    without ever seeing a message from inside the window (the classic
//!    CMB/YAWNS argument). Mailbox envelopes are merged at window
//!    boundaries in the fixed order `(delivery time, sender shard,
//!    sender sequence)`, so delivery order never depends on scheduling
//!    races.
//!
//! [`ShardedKernel::pop_next`] is the merged sequential driver (used by
//! the kernel executor); [`ShardedKernel::run_window`] is the windowed
//! driver whose per-shard body is embarrassingly parallel (used by the
//! coherence engine's round phases).

use crate::event::{EventHandle, EventQueue, EvqStats};
use crate::telemetry::{FlightRecorder, Sink};
use crate::time::Cycles;

/// One cross-shard message in flight: posted by `from` with its
/// per-sender sequence number `seq`, to be delivered to shard `to` at
/// absolute time `at`.
#[derive(Debug, Clone)]
pub struct Envelope<E> {
    /// Absolute delivery time.
    pub at: Cycles,
    /// Sending shard.
    pub from: usize,
    /// Per-sender send sequence number (assigned at post time).
    pub seq: u64,
    /// Destination shard.
    pub to: usize,
    /// The event payload to deliver.
    pub payload: E,
}

/// Per-sender outbox lane: envelopes in post order.
#[derive(Debug, Clone, Default)]
struct Lane<E> {
    next_seq: u64,
    out: Vec<Envelope<E>>,
}

/// The deterministic cross-shard mailbox.
///
/// Each sender owns a lane (so concurrent shards never contend on a
/// shared queue), and [`Mailbox::drain_sorted`] merges all lanes in the
/// canonical order `(delivery time, sender shard, sender seq)` — the
/// fixed merge order that makes cross-shard delivery independent of the
/// order in which shards were executed.
#[derive(Debug, Clone)]
pub struct Mailbox<E> {
    lanes: Vec<Lane<E>>,
    pending: usize,
}

impl<E> Mailbox<E> {
    /// An empty mailbox with one lane per sender.
    pub fn new(senders: usize) -> Mailbox<E> {
        Mailbox {
            lanes: (0..senders)
                .map(|_| Lane {
                    next_seq: 0,
                    out: Vec::new(),
                })
                .collect(),
            pending: 0,
        }
    }

    /// Number of sender lanes.
    pub fn senders(&self) -> usize {
        self.lanes.len()
    }

    /// Envelopes posted but not yet drained.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Post an envelope from `from` to `to`, delivered at `at`. Sequence
    /// numbers are per-sender and monotonic, so a sender's envelopes can
    /// never reorder among themselves.
    pub fn post(&mut self, from: usize, to: usize, at: Cycles, payload: E) {
        let lane = &mut self.lanes[from];
        let seq = lane.next_seq;
        lane.next_seq += 1;
        lane.out.push(Envelope {
            at,
            from,
            seq,
            to,
            payload,
        });
        self.pending += 1;
    }

    /// Drain every pending envelope in the canonical merge order
    /// `(delivery time, sender shard, sender seq)`.
    ///
    /// Lanes are already sorted by `seq`, and within one barrier most
    /// traffic shares a delivery time, so the sort is near-linear; the
    /// key is unique (sender, seq never repeats), making the order — and
    /// everything downstream of it — fully deterministic.
    pub fn drain_sorted(&mut self) -> Vec<Envelope<E>> {
        let mut all: Vec<Envelope<E>> = Vec::with_capacity(self.pending);
        for lane in &mut self.lanes {
            all.append(&mut lane.out);
        }
        self.pending = 0;
        all.sort_unstable_by_key(|e| (e.at, e.from, e.seq));
        all
    }
}

/// A sharded discrete-event simulation kernel: one [`EventQueue`] per
/// shard, a cross-shard [`Mailbox`], and a conservative lookahead bound.
///
/// ```
/// use interweave_core::shard::ShardedKernel;
/// use interweave_core::Cycles;
///
/// let mut k: ShardedKernel<&str> = ShardedKernel::new(2);
/// k.schedule(0, Cycles(10), "a0");
/// k.schedule(1, Cycles(10), "b0");
/// k.schedule(0, Cycles(5), "early");
/// // Global order is (time, shard, seq): ties at t=10 resolve shard 0
/// // before shard 1.
/// assert_eq!(k.pop_next(), Some((0, Cycles(5), "early")));
/// assert_eq!(k.pop_next(), Some((0, Cycles(10), "a0")));
/// assert_eq!(k.pop_next(), Some((1, Cycles(10), "b0")));
/// assert_eq!(k.pop_next(), None);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedKernel<E> {
    shards: Vec<EventQueue<E>>,
    mailbox: Mailbox<E>,
    lookahead: Cycles,
    now: Cycles,
    /// Per-shard blackboxes, `None` (zero-cost) unless enabled.
    recorders: Option<Vec<FlightRecorder>>,
}

impl<E> ShardedKernel<E> {
    /// A kernel with `n` shards and the minimum lookahead of one cycle.
    pub fn new(n: usize) -> ShardedKernel<E> {
        ShardedKernel::with_lookahead(n, Cycles(1))
    }

    /// A kernel with `n` shards and an explicit conservative lookahead:
    /// the minimum latency of any cross-shard event (IPI wire latency,
    /// NoC hop latency, ...). Larger lookahead means wider windows and
    /// fewer barriers.
    pub fn with_lookahead(n: usize, lookahead: Cycles) -> ShardedKernel<E> {
        assert!(n > 0, "a kernel needs at least one shard");
        assert!(lookahead.get() > 0, "conservative lookahead must be ≥ 1");
        ShardedKernel {
            shards: (0..n).map(|_| EventQueue::new()).collect(),
            mailbox: Mailbox::new(n),
            lookahead,
            now: Cycles::ZERO,
            recorders: None,
        }
    }

    /// Turn on the per-shard flight recorders, each keeping the most
    /// recent `cap` events (cross-shard sends and deliveries). Off by
    /// default: a disabled kernel records nothing and pays one `None`
    /// check per hop.
    pub fn enable_flight_recorder(&mut self, cap: usize) {
        self.recorders = Some(
            (0..self.shards.len())
                .map(|_| FlightRecorder::new(cap))
                .collect(),
        );
    }

    /// Shard `s`'s blackbox, if recording is enabled.
    pub fn flight_recorder(&self, s: usize) -> Option<&FlightRecorder> {
        self.recorders.as_ref().map(|r| &r[s])
    }

    /// Deterministic dump of every shard's blackbox (shard order), for
    /// attachment to an invariant-failure report. Empty when disabled.
    pub fn blackbox(&self, header: &str) -> String {
        let Some(recs) = &self.recorders else {
            return String::new();
        };
        let mut out = String::new();
        for (s, r) in recs.iter().enumerate() {
            out.push_str(&r.dump(&format!("{header} / shard {s}")));
        }
        out
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The conservative lookahead bound.
    pub fn lookahead(&self) -> Cycles {
        self.lookahead
    }

    /// The merged clock: the time of the latest event popped through
    /// either driver.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Borrow one shard's queue.
    pub fn shard(&self, s: usize) -> &EventQueue<E> {
        &self.shards[s]
    }

    /// Mutably borrow one shard's queue (shard-local scheduling).
    pub fn shard_mut(&mut self, s: usize) -> &mut EventQueue<E> {
        &mut self.shards[s]
    }

    /// Schedule a shard-local event at absolute time `at`.
    pub fn schedule(&mut self, s: usize, at: Cycles, payload: E) {
        self.shards[s].schedule(at, payload);
    }

    /// Schedule a cancellable shard-local event; redeem the handle with
    /// [`ShardedKernel::cancel`] on the same shard.
    pub fn schedule_cancellable(&mut self, s: usize, at: Cycles, payload: E) -> EventHandle {
        self.shards[s].schedule_cancellable(at, payload)
    }

    /// Cancel a pending event on shard `s`.
    pub fn cancel(&mut self, s: usize, handle: EventHandle) -> bool {
        self.shards[s].cancel(handle)
    }

    /// Post a cross-shard event: delivered to shard `to` at time `at`,
    /// which must respect the conservative lookahead (`at ≥ sender's
    /// now + lookahead`). The event stays in the mailbox until the next
    /// [`ShardedKernel::flush_mailbox`] barrier.
    pub fn send(&mut self, from: usize, to: usize, at: Cycles, payload: E) {
        let horizon = self.shards[from].now() + self.lookahead;
        debug_assert!(
            at >= horizon,
            "cross-shard send violates lookahead: at={at}, sender now+lookahead={horizon}"
        );
        let at = at.max(horizon);
        if let Some(recs) = &mut self.recorders {
            recs[from].record(self.shards[from].now(), from, "mbox-send", to as u64, at.0);
        }
        self.mailbox.post(from, to, at, payload);
    }

    /// Cross-shard envelopes posted but not yet delivered.
    pub fn pending_sends(&self) -> usize {
        self.mailbox.pending()
    }

    /// Deliver every pending cross-shard envelope into its target shard,
    /// in the canonical `(delivery time, sender shard, sender seq)`
    /// order — so target-local sequence numbers (and therefore all
    /// downstream tie-breaks) are independent of execution interleaving.
    /// Returns the number of envelopes delivered.
    pub fn flush_mailbox(&mut self) -> usize {
        let envs = self.mailbox.drain_sorted();
        let n = envs.len();
        for env in envs {
            // A target that already advanced past `at` (merged driver)
            // receives the event at its local now; the canonical drain
            // order still fixes the tie-break deterministically.
            let at = env.at.max(self.shards[env.to].now());
            if let Some(recs) = &mut self.recorders {
                recs[env.to].record(at, env.to, "mbox-deliver", env.from as u64, env.at.0);
            }
            self.shards[env.to].schedule(at, env.payload);
        }
        n
    }

    /// Drain every pending cross-shard envelope in the canonical
    /// `(delivery time, sender shard, sender seq)` order *without*
    /// enqueueing them — for engines that apply cross-shard effects
    /// directly at a window barrier (e.g. region hand-offs whose cost
    /// folds into the round's critical path) rather than as future
    /// events. [`ShardedKernel::flush_mailbox`] is the enqueueing
    /// counterpart.
    pub fn drain_sends(&mut self) -> Vec<Envelope<E>> {
        self.mailbox.drain_sorted()
    }

    /// The earliest pending `(time, shard)` across all shards, in global
    /// `(time, shard)` order. Mailbox envelopes are invisible until
    /// flushed.
    pub fn peek_next(&self) -> Option<(usize, Cycles)> {
        let mut best: Option<(usize, Cycles)> = None;
        for (s, q) in self.shards.iter().enumerate() {
            if let Some(t) = q.peek_time() {
                // Strict < keeps the lowest shard id on time ties.
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((s, t));
                }
            }
        }
        best
    }

    /// Pop the globally earliest event in `(time, shard, seq)` order —
    /// the merged sequential driver. With one shard this is exactly
    /// [`EventQueue::pop`].
    pub fn pop_next(&mut self) -> Option<(usize, Cycles, E)> {
        let (s, _) = self.peek_next()?;
        let (t, e) = self.shards[s].pop().expect("peeked shard has an event");
        self.now = self.now.max(t);
        Some((s, t, e))
    }

    /// Live events pending across all shards (excluding mailbox
    /// envelopes).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|q| q.len()).sum()
    }

    /// True when no shard has a live pending event and no envelope is in
    /// flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0 && self.mailbox.pending() == 0
    }

    /// Run one conservative window: every shard independently fires all
    /// of its events in `[W, W + lookahead)` (`W` = earliest pending
    /// event anywhere), then the mailbox flushes at the barrier.
    ///
    /// The handler receives a [`ShardCtx`] (local scheduling + cross
    /// sends), the shard's slice of `states`, and the event. Within the
    /// window, shards touch only their own queue, lane, and state — the
    /// body is embarrassingly parallel, and running shards in any order
    /// (or concurrently) yields bit-identical results because cross
    /// traffic is deferred to the canonical mailbox merge.
    ///
    /// Returns the number of events fired; `0` means quiescent.
    pub fn run_window<S>(
        &mut self,
        states: &mut [S],
        mut handle: impl FnMut(&mut ShardCtx<'_, E>, &mut S, Cycles, E),
    ) -> usize {
        assert_eq!(states.len(), self.shards.len(), "one state per shard");
        let Some((_, w)) = self.peek_next() else {
            // No local events: deliver any in-flight envelopes and retry
            // once (a quiescent kernel with pending sends is not done).
            if self.mailbox.pending() == 0 {
                return 0;
            }
            self.flush_mailbox();
            return self.run_window(states, handle);
        };
        let deadline = w + self.lookahead - Cycles(1);
        let mut fired = 0;
        for (s, (queue, state)) in self.shards.iter_mut().zip(states.iter_mut()).enumerate() {
            let mut ctx = ShardCtx {
                shard: s,
                queue,
                mailbox: &mut self.mailbox,
                lookahead: self.lookahead,
            };
            while let Some((t, e)) = ctx.queue.pop_before(deadline) {
                fired += 1;
                handle(&mut ctx, state, t, e);
            }
        }
        self.now = self.now.max(deadline);
        self.flush_mailbox();
        fired
    }

    /// Aggregate lifetime stats across all shards.
    pub fn stats(&self) -> EvqStats {
        let mut total = EvqStats::default();
        for q in &self.shards {
            let s = q.stats();
            total.scheduled += s.scheduled;
            total.popped += s.popped;
            total.cancelled += s.cancelled;
            total.compactions += s.compactions;
        }
        total
    }

    /// Publish every shard's queue counters into `sink`, each under its
    /// own telemetry shard index — the registry's per-shard breakdown
    /// mirrors the kernel's sharding, and totals sum across shards.
    pub fn publish_telemetry(&self, sink: &Sink) {
        for (s, q) in self.shards.iter().enumerate() {
            q.publish_telemetry(sink, s);
        }
    }
}

/// One shard's view of the kernel inside [`ShardedKernel::run_window`]:
/// local scheduling plus lookahead-checked cross-shard sends. Holding a
/// `ShardCtx` borrows only this shard's queue and the mailbox's
/// per-sender lane, which is what makes the window body parallelizable.
pub struct ShardCtx<'a, E> {
    /// This shard's index.
    pub shard: usize,
    queue: &'a mut EventQueue<E>,
    mailbox: &'a mut Mailbox<E>,
    lookahead: Cycles,
}

impl<E> ShardCtx<'_, E> {
    /// This shard's local clock (time of its latest fired event).
    pub fn now(&self) -> Cycles {
        self.queue.now()
    }

    /// Schedule a shard-local event at absolute time `at`. Local events
    /// may land inside the current window — local causality needs no
    /// lookahead.
    pub fn schedule(&mut self, at: Cycles, payload: E) {
        self.queue.schedule(at, payload);
    }

    /// Schedule a shard-local event `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycles, payload: E) {
        self.queue.schedule_in(delay, payload);
    }

    /// Send a cross-shard event, delivered at `at` (clamped to the
    /// conservative horizon `now + lookahead`; an earlier request is a
    /// lookahead violation and panics in debug builds).
    pub fn send(&mut self, to: usize, at: Cycles, payload: E) {
        let horizon = self.queue.now() + self.lookahead;
        debug_assert!(
            at >= horizon,
            "cross-shard send violates lookahead: at={at}, horizon={horizon}"
        );
        self.mailbox.post(self.shard, to, at.max(horizon), payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Level;

    #[test]
    fn single_shard_kernel_matches_plain_queue_order() {
        let mut q = EventQueue::new();
        let mut k = ShardedKernel::new(1);
        for (t, id) in [(30u64, 0u32), (10, 1), (30, 2), (20, 3), (10, 4)] {
            q.schedule(Cycles(t), id);
            k.schedule(0, Cycles(t), id);
        }
        while let Some((t, id)) = q.pop() {
            assert_eq!(k.pop_next(), Some((0, t, id)));
        }
        assert_eq!(k.pop_next(), None);
    }

    #[test]
    fn merged_order_is_time_then_shard_then_seq() {
        let mut k = ShardedKernel::new(3);
        k.schedule(2, Cycles(5), "s2a");
        k.schedule(0, Cycles(5), "s0a");
        k.schedule(1, Cycles(5), "s1a");
        k.schedule(0, Cycles(5), "s0b");
        k.schedule(1, Cycles(3), "s1-early");
        let mut order = Vec::new();
        while let Some((s, t, e)) = k.pop_next() {
            order.push((s, t, e));
        }
        assert_eq!(
            order,
            vec![
                (1, Cycles(3), "s1-early"),
                (0, Cycles(5), "s0a"),
                (0, Cycles(5), "s0b"),
                (1, Cycles(5), "s1a"),
                (2, Cycles(5), "s2a"),
            ]
        );
    }

    #[test]
    fn mailbox_merges_by_time_sender_seq() {
        let mut mb = Mailbox::new(3);
        mb.post(2, 0, Cycles(10), "from2#0");
        mb.post(0, 1, Cycles(10), "from0#0");
        mb.post(2, 1, Cycles(7), "from2#1-earlier");
        mb.post(0, 2, Cycles(10), "from0#1");
        assert_eq!(mb.pending(), 4);
        let order: Vec<&str> = mb.drain_sorted().into_iter().map(|e| e.payload).collect();
        assert_eq!(
            order,
            vec!["from2#1-earlier", "from0#0", "from0#1", "from2#0"]
        );
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn flush_delivers_in_canonical_order_with_fifo_ties() {
        let mut k = ShardedKernel::new(2);
        // Both shards post to shard 0 at the same delivery time; sender 0
        // must land first regardless of post order.
        k.send(1, 0, Cycles(4), "from1");
        k.send(0, 0, Cycles(4), "from0");
        assert_eq!(k.pending_sends(), 2);
        assert_eq!(k.flush_mailbox(), 2);
        assert_eq!(k.pop_next(), Some((0, Cycles(4), "from0")));
        assert_eq!(k.pop_next(), Some((0, Cycles(4), "from1")));
    }

    #[test]
    fn flight_recorder_captures_cross_shard_hops() {
        let mut k = ShardedKernel::new(2);
        k.enable_flight_recorder(8);
        k.send(0, 1, Cycles(4), "hop");
        k.flush_mailbox();
        let sender = k.flight_recorder(0).unwrap();
        assert_eq!(sender.len(), 1);
        let e = sender.events().next().unwrap();
        assert_eq!((e.what, e.a, e.b), ("mbox-send", 1, 4));
        let receiver = k.flight_recorder(1).unwrap();
        assert_eq!(receiver.events().next().unwrap().what, "mbox-deliver");
        let bb = k.blackbox("test");
        assert!(bb.contains("shard 0") && bb.contains("shard 1"));
        assert!(bb.contains("mbox-send") && bb.contains("mbox-deliver"));
    }

    #[test]
    fn flight_recorder_off_by_default_and_identical_runs_dump_identically() {
        let k: ShardedKernel<u32> = ShardedKernel::new(2);
        assert!(k.flight_recorder(0).is_none());
        assert_eq!(k.blackbox("x"), "");
        let run = || {
            let mut k = ShardedKernel::new(3);
            k.enable_flight_recorder(4);
            for i in 0..10u64 {
                k.send((i % 3) as usize, ((i + 1) % 3) as usize, Cycles(i + 1), i);
                k.flush_mailbox();
                while k.pop_next().is_some() {}
            }
            k.blackbox("replay")
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "violates lookahead")]
    fn lookahead_violation_panics_in_debug() {
        let mut k: ShardedKernel<()> = ShardedKernel::with_lookahead(2, Cycles(10));
        k.schedule(0, Cycles(50), ());
        k.pop_next(); // shard 0 now at t=50
        k.send(0, 1, Cycles(55), ()); // 55 < 50 + 10
    }

    #[test]
    fn run_window_fires_only_within_the_lookahead_window() {
        let mut k: ShardedKernel<u32> = ShardedKernel::with_lookahead(2, Cycles(10));
        k.schedule(0, Cycles(0), 0);
        k.schedule(1, Cycles(9), 1); // same window as t=0 (width 10)
        k.schedule(0, Cycles(10), 2); // next window
        let mut states = [Vec::new(), Vec::new()];
        let fired = k.run_window(&mut states, |ctx, log, t, e| {
            log.push((ctx.shard, t, e));
        });
        assert_eq!(fired, 2);
        assert_eq!(states[0], vec![(0, Cycles(0), 0)]);
        assert_eq!(states[1], vec![(1, Cycles(9), 1)]);
        let fired = k.run_window(&mut states, |_, log, t, e| {
            log.push((9, t, e));
        });
        assert_eq!(fired, 1);
        assert_eq!(states[0].last(), Some(&(9, Cycles(10), 2)));
    }

    #[test]
    fn windowed_cross_sends_arrive_after_the_barrier_deterministically() {
        // A ping-pong over the mailbox: each shard, on receiving n,
        // sends n+1 to the other shard one lookahead later. The full
        // trajectory must be a pure function of the configuration.
        let mut k: ShardedKernel<u64> = ShardedKernel::with_lookahead(2, Cycles(5));
        k.schedule(0, Cycles(0), 0);
        let mut states = [0u64, 0u64];
        let mut hops = Vec::new();
        loop {
            let fired = k.run_window(&mut states, |ctx, seen, t, n| {
                *seen += 1;
                if n < 6 {
                    let to = 1 - ctx.shard;
                    ctx.send(to, t + Cycles(5), n + 1);
                }
            });
            if fired == 0 {
                break;
            }
            hops.push(fired);
        }
        // 7 deliveries (0..=6), strictly alternating shards, 5 cycles apart.
        assert_eq!(states[0] + states[1], 7);
        assert_eq!(states, [4, 3]);
        assert!(k.is_empty());
    }

    #[test]
    fn run_window_flushes_pending_sends_even_when_queues_are_empty() {
        let mut k: ShardedKernel<&str> = ShardedKernel::new(2);
        k.send(0, 1, Cycles(3), "late");
        let mut states = [0u32, 0u32];
        let fired = k.run_window(&mut states, |_, n, _, _| *n += 1);
        assert_eq!(fired, 1, "the envelope must be delivered and fired");
        assert_eq!(states, [0, 1]);
    }

    #[test]
    fn cancellation_works_per_shard() {
        let mut k = ShardedKernel::new(2);
        let h = k.schedule_cancellable(1, Cycles(5), "doomed");
        k.schedule(1, Cycles(6), "live");
        assert!(k.cancel(1, h));
        assert!(!k.cancel(1, h));
        assert_eq!(k.pop_next(), Some((1, Cycles(6), "live")));
    }

    #[test]
    fn stats_aggregate_and_publish_per_shard() {
        let mut k = ShardedKernel::new(3);
        k.schedule(0, Cycles(1), ());
        k.schedule(2, Cycles(1), ());
        k.schedule(2, Cycles(2), ());
        while k.pop_next().is_some() {}
        let st = k.stats();
        assert_eq!((st.scheduled, st.popped), (3, 3));
        let sink = Sink::on(Level::Counters);
        k.publish_telemetry(&sink);
        assert_eq!(sink.counter("core.evq.scheduled"), 3);
        let snap = sink.snapshot().expect("sink on");
        let sched = snap
            .counters
            .iter()
            .find(|c| c.name == "core.evq.scheduled")
            .expect("published");
        // Per-shard breakdown mirrors the kernel's sharding: shard 0
        // scheduled 1, shard 1 nothing, shard 2 two events.
        assert_eq!(sched.per_cpu, vec![1, 0, 2]);
    }
}
