//! Simulated time.
//!
//! All simulators in the workspace account time in *cycles* of a fixed-
//! frequency core clock. The paper's figures mix units (cycles for context
//! switches in Fig. 4, microseconds for heartbeat periods in Fig. 3 and
//! virtine start-up in §IV-D), so this module provides lossless conversion
//! through a [`Freq`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or instant measured in core clock cycles.
///
/// `Cycles` is the universal unit of simulated time. It is a thin wrapper
/// over `u64` with saturating subtraction (durations cannot go negative) and
/// checked-at-debug addition.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);
    /// The maximum representable time; used as an "infinitely far" deadline.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// The raw cycle count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is 0 if `b > a`.
    #[inline]
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, other: Cycles) -> Option<Cycles> {
        self.0.checked_sub(other.0).map(Cycles)
    }

    /// The minimum of two times.
    #[inline]
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }

    /// The maximum of two times.
    #[inline]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// Interpret this duration as a fraction of `total`, in percent.
    /// Returns 0.0 when `total` is zero.
    #[inline]
    pub fn percent_of(self, total: Cycles) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            100.0 * self.0 as f64 / total.0 as f64
        }
    }

    /// This duration as an `f64` cycle count (for statistics).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// Saturating by design: simulated durations never go negative.
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Cycles {
    #[inline]
    fn from(v: u64) -> Cycles {
        Cycles(v)
    }
}

/// A duration in microseconds (used where the paper reports µs: heartbeat
/// periods, virtine start-up latency).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct MicroSeconds(pub f64);

impl MicroSeconds {
    /// The raw value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for MicroSeconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} µs", self.0)
    }
}

/// A core clock frequency.
///
/// Converts between [`Cycles`] and wall-clock time. The platforms the paper
/// evaluates on run at 1.3–1.5 GHz (Xeon Phi KNL) and 3.3 GHz (dual-socket
/// Xeon, Fig. 7 caption).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Freq {
    /// Frequency in megahertz. A `u64` MHz count keeps conversions exact for
    /// the whole-MHz frequencies used by every preset.
    pub mhz: u64,
}

impl Freq {
    /// Construct from GHz (e.g., `Freq::ghz(1.4)` for KNL).
    pub fn ghz(g: f64) -> Freq {
        Freq {
            mhz: (g * 1000.0).round() as u64,
        }
    }

    /// Construct from MHz.
    pub fn mhz(m: u64) -> Freq {
        Freq { mhz: m }
    }

    /// Cycles elapsed in `us` microseconds at this frequency.
    #[inline]
    pub fn cycles_per_us(self, us: f64) -> Cycles {
        Cycles((us * self.mhz as f64).round() as u64)
    }

    /// Convert a cycle count to microseconds at this frequency.
    #[inline]
    pub fn us(self, c: Cycles) -> MicroSeconds {
        MicroSeconds(c.0 as f64 / self.mhz as f64)
    }

    /// Cycles per second (Hz × 1 — useful for rates).
    #[inline]
    pub fn hz(self) -> u64 {
        self.mhz * 1_000_000
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.mhz.is_multiple_of(1000) {
            write!(f, "{} GHz", self.mhz / 1000)
        } else {
            write!(f, "{:.1} GHz", self.mhz as f64 / 1000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles(100);
        let b = Cycles(40);
        assert_eq!(a + b, Cycles(140));
        assert_eq!(a - b, Cycles(60));
        // Subtraction saturates.
        assert_eq!(b - a, Cycles(0));
        assert_eq!(a * 3, Cycles(300));
        assert_eq!(a / 4, Cycles(25));
    }

    #[test]
    fn cycles_percent() {
        assert_eq!(Cycles(25).percent_of(Cycles(100)), 25.0);
        assert_eq!(Cycles(25).percent_of(Cycles(0)), 0.0);
    }

    #[test]
    fn cycles_sum() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
    }

    #[test]
    fn freq_conversion_roundtrip() {
        let f = Freq::ghz(1.4);
        assert_eq!(f.mhz, 1400);
        // 20 µs at 1.4 GHz = 28,000 cycles (the paper's smallest heartbeat).
        let c = f.cycles_per_us(20.0);
        assert_eq!(c, Cycles(28_000));
        let back = f.us(c);
        assert!((back.get() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn freq_display() {
        assert_eq!(Freq::ghz(3.0).to_string(), "3 GHz");
        assert_eq!(Freq::ghz(3.3).to_string(), "3.3 GHz");
    }

    #[test]
    fn min_max() {
        assert_eq!(Cycles(3).min(Cycles(5)), Cycles(3));
        assert_eq!(Cycles(3).max(Cycles(5)), Cycles(5));
    }
}
