//! Open-loop arrival processes for request-serving experiments.
//!
//! A closed-loop driver (issue, wait, issue again) can never observe
//! queueing collapse: when the server slows down, the load generator slows
//! down with it. Real datacenter traffic is *open-loop* — arrivals keep
//! coming whether or not earlier requests finished — and that is where an
//! interwoven stack's tail latency diverges from a layered one at
//! saturation. This module provides the arrival side of that experiment:
//! three seeded-deterministic arrival processes over a fixed duration, all
//! drawing from one [`SplitMix64`] stream so a run is a pure function of
//! `(kind, rate, duration, seed)`.
//!
//! - [`ArrivalKind::Poisson`] — memoryless arrivals at a constant rate; the
//!   M/G/1 baseline.
//! - [`ArrivalKind::Bursty`] — an MMPP-style on/off process: the rate
//!   switches between a high ("burst") and a low phase with exponentially
//!   distributed dwell times. Time-averaged rate equals the nominal rate,
//!   but arrivals clump — the queue-depth stress test.
//! - [`ArrivalKind::Diurnal`] — a piecewise-constant day cycle (eight
//!   phases, trough to peak and back) over the run's duration. The profile
//!   is a fixed multiplier table rather than a sinusoid so the generator
//!   uses no transcendental functions beyond the RNG's `ln` (which the
//!   pinned goldens already rely on being bit-stable).
//!
//! Piecewise-constant-rate streams are generated exactly: within a phase
//! the process is Poisson at the phase rate, and at a phase boundary the
//! pending gap is discarded and redrawn — valid by memorylessness, and
//! deterministic because the redraw consumes its draws in a fixed order.

use crate::rng::SplitMix64;

/// The eight-phase diurnal multiplier table (averages to exactly 1.0):
/// night trough, morning ramp, midday peak, evening decay.
const DIURNAL_PROFILE: [f64; 8] = [0.35, 0.55, 0.85, 1.25, 1.55, 1.45, 1.05, 0.95];

/// Burst-phase rate multiplier for [`ArrivalKind::Bursty`].
const BURST_HI: f64 = 1.7;
/// Quiet-phase rate multiplier for [`ArrivalKind::Bursty`] (averages with
/// [`BURST_HI`] to 1.0 under equal expected dwell).
const BURST_LO: f64 = 0.3;
/// Expected dwell time in each burst phase, as a fraction of the duration.
const BURST_DWELL_FRAC: f64 = 1.0 / 12.0;

/// Which open-loop arrival process drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrivalKind {
    /// Constant-rate memoryless arrivals.
    Poisson,
    /// MMPP-style on/off bursts (high/low rate, exponential dwells).
    Bursty,
    /// Eight-phase day cycle over the run duration (piecewise constant).
    Diurnal,
}

impl ArrivalKind {
    /// Every kind, in a fixed order (tables and sweeps iterate this).
    pub const ALL: [ArrivalKind; 3] = [
        ArrivalKind::Poisson,
        ArrivalKind::Bursty,
        ArrivalKind::Diurnal,
    ];

    /// Display / CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Bursty => "bursty",
            ArrivalKind::Diurnal => "diurnal",
        }
    }

    /// Parse a CLI name (the inverse of [`ArrivalKind::name`]).
    pub fn parse(s: &str) -> Option<ArrivalKind> {
        ArrivalKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// A seeded open-loop arrival-time generator over `[0, duration_us)`.
///
/// Iterates absolute arrival times in microseconds, strictly increasing,
/// ending when the duration is exhausted. Two generators with the same
/// configuration yield bit-identical streams.
///
/// ```
/// use interweave_core::arrivals::{ArrivalGen, ArrivalKind};
/// let mut g = ArrivalGen::new(ArrivalKind::Poisson, 50.0, 10_000.0, 7);
/// let times: Vec<f64> = g.by_ref().collect();
/// assert!(times.windows(2).all(|w| w[0] < w[1]));
/// assert!(times.iter().all(|&t| t < 10_000.0));
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    kind: ArrivalKind,
    rng: SplitMix64,
    /// Mean inter-arrival gap at the nominal (time-averaged) rate, µs.
    mean_gap_us: f64,
    duration_us: f64,
    /// Current absolute time, µs.
    t_us: f64,
    /// End of the current rate phase (bursty dwell / diurnal phase), µs.
    phase_until_us: f64,
    /// Current phase's rate multiplier.
    phase_mult: f64,
    /// Bursty: true while in the high-rate phase. Diurnal: unused.
    burst_on: bool,
    /// Diurnal: index of the current profile phase.
    diurnal_phase: usize,
}

impl ArrivalGen {
    /// A generator producing arrivals with mean gap `mean_gap_us` (at the
    /// time-averaged rate) over `[0, duration_us)`, seeded by `seed`.
    pub fn new(kind: ArrivalKind, mean_gap_us: f64, duration_us: f64, seed: u64) -> ArrivalGen {
        assert!(mean_gap_us > 0.0, "mean gap must be positive");
        assert!(duration_us > 0.0, "duration must be positive");
        let mut g = ArrivalGen {
            kind,
            rng: SplitMix64::new(seed),
            mean_gap_us,
            duration_us,
            t_us: 0.0,
            phase_until_us: duration_us,
            phase_mult: 1.0,
            burst_on: false,
            diurnal_phase: 0,
        };
        match kind {
            ArrivalKind::Poisson => {}
            ArrivalKind::Bursty => {
                // Start in the quiet phase; the first dwell draw is part of
                // the deterministic stream.
                g.burst_on = false;
                g.phase_mult = BURST_LO;
                g.phase_until_us = g.rng.exponential(duration_us * BURST_DWELL_FRAC);
            }
            ArrivalKind::Diurnal => {
                g.diurnal_phase = 0;
                g.phase_mult = DIURNAL_PROFILE[0];
                g.phase_until_us = duration_us / DIURNAL_PROFILE.len() as f64;
            }
        }
        g
    }

    /// The configured time-averaged rate, arrivals per microsecond.
    pub fn rate_per_us(&self) -> f64 {
        1.0 / self.mean_gap_us
    }

    /// Advance into the next rate phase starting at `self.t_us`.
    fn next_phase(&mut self) {
        match self.kind {
            ArrivalKind::Poisson => self.phase_until_us = f64::INFINITY,
            ArrivalKind::Bursty => {
                self.burst_on = !self.burst_on;
                self.phase_mult = if self.burst_on { BURST_HI } else { BURST_LO };
                self.phase_until_us =
                    self.t_us + self.rng.exponential(self.duration_us * BURST_DWELL_FRAC);
            }
            ArrivalKind::Diurnal => {
                self.diurnal_phase = (self.diurnal_phase + 1) % DIURNAL_PROFILE.len();
                self.phase_mult = DIURNAL_PROFILE[self.diurnal_phase];
                self.phase_until_us += self.duration_us / DIURNAL_PROFILE.len() as f64;
            }
        }
    }
}

impl Iterator for ArrivalGen {
    type Item = f64;

    /// The next absolute arrival time in µs, or `None` past the duration.
    fn next(&mut self) -> Option<f64> {
        loop {
            if self.t_us >= self.duration_us {
                return None;
            }
            let gap = self.rng.exponential(self.mean_gap_us / self.phase_mult);
            let candidate = self.t_us + gap;
            if candidate < self.phase_until_us {
                if candidate >= self.duration_us {
                    self.t_us = self.duration_us;
                    return None;
                }
                self.t_us = candidate;
                return Some(candidate);
            }
            // Phase boundary crossed before the candidate arrival: advance
            // to the boundary and redraw at the new rate (memorylessness
            // makes the discarded gap statistically free; determinism holds
            // because the redraw order is fixed).
            self.t_us = self.phase_until_us;
            self.next_phase();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(kind: ArrivalKind, seed: u64) -> Vec<f64> {
        ArrivalGen::new(kind, 100.0, 1_000_000.0, seed).collect()
    }

    #[test]
    fn deterministic_for_same_seed() {
        for kind in ArrivalKind::ALL {
            assert_eq!(collect(kind, 42), collect(kind, 42), "{kind:?}");
            assert_ne!(collect(kind, 42), collect(kind, 43), "{kind:?}");
        }
    }

    #[test]
    fn times_strictly_increase_and_stay_in_range() {
        for kind in ArrivalKind::ALL {
            let times = collect(kind, 7);
            assert!(times.windows(2).all(|w| w[0] < w[1]), "{kind:?}");
            assert!(
                times.iter().all(|&t| (0.0..1_000_000.0).contains(&t)),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn all_kinds_deliver_the_nominal_rate_on_average() {
        // 10k expected arrivals. Poisson and diurnal concentrate tightly
        // (many independent gaps / fixed phase schedule); a bursty run's
        // count is dominated by ~12 random dwells, so its per-seed variance
        // is inherently large — check it averaged over several seeds.
        for kind in [ArrivalKind::Poisson, ArrivalKind::Diurnal] {
            let n = collect(kind, 11).len() as f64;
            assert!(
                (n - 10_000.0).abs() < 600.0,
                "{kind:?} delivered {n} arrivals"
            );
        }
        let mean = (0..8)
            .map(|s| collect(ArrivalKind::Bursty, s).len())
            .sum::<usize>() as f64
            / 8.0;
        assert!(
            (mean - 10_000.0).abs() < 1_500.0,
            "Bursty delivered {mean} arrivals on average"
        );
    }

    #[test]
    fn bursty_gaps_are_more_variable_than_poisson() {
        use crate::stats::Summary;
        let cv = |kind| {
            let times = collect(kind, 13);
            let mut s = Summary::new();
            for w in times.windows(2) {
                s.add(w[1] - w[0]);
            }
            s.cv()
        };
        // Exponential gaps have CV 1; mixing two rates pushes it above.
        assert!(cv(ArrivalKind::Bursty) > 1.1 * cv(ArrivalKind::Poisson));
    }

    #[test]
    fn diurnal_peak_phase_outpaces_the_trough() {
        let times = collect(ArrivalKind::Diurnal, 17);
        let phase_len = 1_000_000.0 / 8.0;
        let in_phase = |p: usize| {
            times
                .iter()
                .filter(|&&t| (t / phase_len) as usize == p)
                .count()
        };
        // Phase 4 runs at 1.55x, phase 0 at 0.35x.
        assert!(in_phase(4) > 3 * in_phase(0));
    }

    #[test]
    fn parse_round_trips_and_rejects_unknown() {
        for kind in ArrivalKind::ALL {
            assert_eq!(ArrivalKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ArrivalKind::parse("uniform"), None);
        assert_eq!(ArrivalKind::parse(""), None);
    }
}
