//! Model-based property test for event-queue cancellation: the tombstoning
//! [`EventQueue`] must be observationally equivalent to a naive model queue
//! (a plain Vec popped by minimum `(time, seq)`, cancelled by direct
//! removal) under arbitrary interleavings of schedule, cancellable
//! schedule, handle cancel, batched handle cancels, and pop — including
//! FIFO tie-breaking at equal times, which the small time deltas here
//! force constantly.

use interweave_core::{Cycles, EventHandle, EventQueue};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Schedule at now + delta (plain, not cancellable).
    Schedule(u64),
    /// Schedule at now + delta, keeping the handle.
    ScheduleCancellable(u64),
    /// Cancel the i-th handle ever issued (mod count); stale handles
    /// must be rejected identically by queue and model.
    Cancel(usize),
    /// Pop the earliest event.
    Pop,
    /// Pop only if the earliest event is within now + delta.
    PopBefore(u64),
    /// Cancel every handle ever issued whose payload % 3 == r — a bulk
    /// retraction that piles up tombstones and stresses prune/compaction.
    CancelBatch(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..6).prop_map(Op::Schedule),
        (0u64..6).prop_map(Op::ScheduleCancellable),
        (0usize..64).prop_map(Op::Cancel),
        Just(Op::Pop),
        (0u64..8).prop_map(Op::PopBefore),
        (0u64..3).prop_map(Op::CancelBatch),
    ]
}

/// The reference: a flat list of pending `(time, seq, payload)` popped by
/// minimum `(time, seq)` — the specification of time-then-FIFO ordering.
#[derive(Default)]
struct ModelQueue {
    pending: Vec<(u64, u64, u64)>,
    next_seq: u64,
    now: u64,
}

impl ModelQueue {
    fn schedule(&mut self, at: u64, payload: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push((at.max(self.now), seq, payload));
        seq
    }

    fn earliest(&self) -> Option<usize> {
        self.pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(t, s, _))| (t, s))
            .map(|(i, _)| i)
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        let i = self.earliest()?;
        let (t, _, p) = self.pending.remove(i);
        self.now = t;
        Some((t, p))
    }

    fn peek_time(&self) -> Option<u64> {
        self.earliest().map(|i| self.pending[i].0)
    }

    fn cancel_seq(&mut self, seq: u64) -> bool {
        match self.pending.iter().position(|&(_, s, _)| s == seq) {
            Some(i) => {
                self.pending.remove(i);
                true
            }
            None => false,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tombstone_queue_equals_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut model = ModelQueue::default();
        // Handles issued so far, with the model's seq and the payload.
        let mut handles: Vec<(EventHandle, u64, u64)> = Vec::new();
        let mut next_payload = 0u64;

        for op in &ops {
            match *op {
                Op::Schedule(delta) => {
                    let payload = next_payload;
                    next_payload += 1;
                    q.schedule(q.now() + Cycles(delta), payload);
                    model.schedule(model.now + delta, payload);
                }
                Op::ScheduleCancellable(delta) => {
                    let payload = next_payload;
                    next_payload += 1;
                    let h = q.schedule_cancellable(q.now() + Cycles(delta), payload);
                    let seq = model.schedule(model.now + delta, payload);
                    handles.push((h, seq, payload));
                }
                Op::Cancel(i) => {
                    if !handles.is_empty() {
                        let (h, seq, _) = handles[i % handles.len()];
                        prop_assert_eq!(q.cancel(h), model.cancel_seq(seq));
                    }
                }
                Op::Pop => {
                    let got = q.pop().map(|(t, p)| (t.get(), p));
                    prop_assert_eq!(got, model.pop());
                }
                Op::PopBefore(delta) => {
                    let deadline = q.now() + Cycles(delta);
                    let want = match model.peek_time() {
                        Some(t) if t <= model.now + delta => model.pop(),
                        _ => None,
                    };
                    let got = q.pop_before(deadline).map(|(t, p)| (t.get(), p));
                    prop_assert_eq!(got, want);
                }
                Op::CancelBatch(r) => {
                    // Every cancel in the batch must agree with the model,
                    // fired or pending alike (stale handles return false).
                    for &(h, seq, payload) in &handles {
                        if payload % 3 == r {
                            prop_assert_eq!(q.cancel(h), model.cancel_seq(seq));
                        }
                    }
                }
            }
            // Observable state must agree after every operation.
            prop_assert_eq!(q.len(), model.pending.len());
            prop_assert_eq!(q.is_empty(), model.pending.is_empty());
            prop_assert_eq!(q.now().get(), model.now);
            prop_assert_eq!(q.peek_time().map(Cycles::get), model.peek_time());
        }

        // Drain: the survivors must come out in exactly the model's order
        // (time, then FIFO by schedule order).
        loop {
            let got = q.pop().map(|(t, p)| (t.get(), p));
            let want = model.pop();
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }
}
