//! Property tests for the streaming observability plane: the bounded
//! quantile [`Sketch`] must merge order- and shard-insensitively and track
//! the exact [`Samples`] reservoir within its documented relative-error
//! bound, and windowed [`TimeSeries`] roll-ups must concatenate across
//! arbitrary time splits exactly as if the whole range ran once.

use interweave_core::stats::{Samples, Sketch};
use interweave_core::telemetry::TimeSeries;
use interweave_core::Cycles;
use proptest::prelude::*;

/// Positive observations spanning the sketch's tracked latency range
/// (`for_latency_us` covers `[2^-10, 2^31)` µs — these stay inside it so
/// the in-range error bound applies; routing outside the range has its
/// own unit tests).
fn observations() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((1.0f64..1e9, 0u8..3), 1..400).prop_map(|raw| {
        raw.into_iter()
            // Mix magnitudes so values cross many exponent buckets.
            .map(|(x, scale)| x / 10f64.powi(scale as i32))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting the observations into any number of per-shard sketches
    /// and merging them back — in any order — is bit-identical to feeding
    /// one sketch directly. Counts are pure integers, so this is exact
    /// equality, not approximate.
    #[test]
    fn sketch_merge_is_shard_and_order_invariant(
        xs in observations(),
        shards in 1usize..8,
        reverse in any::<bool>(),
    ) {
        let mut whole = Sketch::for_latency_us();
        let mut parts: Vec<Sketch> = (0..shards).map(|_| Sketch::for_latency_us()).collect();
        for (i, &x) in xs.iter().enumerate() {
            whole.add(x);
            parts[i % shards].add(x);
        }
        let mut merged = Sketch::for_latency_us();
        if reverse {
            for p in parts.iter().rev() {
                merged.merge(p);
            }
        } else {
            for p in &parts {
                merged.merge(p);
            }
        }
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.count(), xs.len() as u64);
    }

    /// Every sketch quantile brackets the exact nearest-rank quantile from
    /// a full [`Samples`] reservoir within the documented one-sided bound:
    /// `exact <= sketch <= exact * (1 + relative_error())`.
    #[test]
    fn sketch_quantiles_track_exact_samples_within_the_bound(xs in observations()) {
        let mut sk = Sketch::for_latency_us();
        let mut exact = Samples::new();
        for &x in &xs {
            sk.add(x);
            exact.add(x);
        }
        let eps = sk.relative_error();
        for &q in &[0.1, 0.5, 0.9, 0.99, 1.0] {
            let want = exact.quantile(q).expect("non-empty");
            let got = sk.quantile(q).expect("non-empty");
            prop_assert!(
                want <= got && got <= want * (1.0 + eps) * (1.0 + 1e-12),
                "q={q}: exact {want} vs sketch {got} (eps {eps})"
            );
        }
    }

    /// A run split at an arbitrary (not necessarily window-aligned) time
    /// point into two series, merged, equals the whole-range series —
    /// counters, gauges, and per-window sketches alike.
    #[test]
    fn windowed_series_concatenates_exactly_across_any_split(
        stamps in prop::collection::vec(0u64..50_000, 1..300),
        width in 1u64..5_000,
        split in 0u64..50_000,
    ) {
        let mut whole = TimeSeries::new(Cycles(width));
        let mut lo = TimeSeries::new(Cycles(width));
        let mut hi = TimeSeries::new(Cycles(width));
        for &t in &stamps {
            let lat = (t % 977) as f64 + 0.25;
            whole.add(Cycles(t), "offered", 1);
            whole.gauge_max(Cycles(t), "depth", t % 13);
            whole.observe(Cycles(t), "latency_us", lat);
            let part = if t < split { &mut lo } else { &mut hi };
            part.add(Cycles(t), "offered", 1);
            part.gauge_max(Cycles(t), "depth", t % 13);
            part.observe(Cycles(t), "latency_us", lat);
        }
        lo.merge(&hi);
        prop_assert_eq!(&lo, &whole);
        let total: u64 = whole.iter().map(|(_, w)| w.counter("offered")).sum();
        prop_assert_eq!(total, stamps.len() as u64);
    }
}
