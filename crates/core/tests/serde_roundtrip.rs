//! Machine configurations and stack descriptions are serde-serializable so
//! experiments can persist exactly what they ran on; these tests pin the
//! round-trip.

use interweave_core::machine::MachineConfig;
use interweave_core::stack::StackConfig;
use interweave_core::Cycles;

#[test]
fn machine_configs_round_trip_through_json() {
    for mc in [
        MachineConfig::phi_knl(),
        MachineConfig::xeon_server_2s(),
        MachineConfig::big_server_8s(),
        MachineConfig::riscv_openpiton(),
        MachineConfig::test(3).with_pipeline_interrupts(),
    ] {
        let json = serde_json::to_string(&mc).expect("serialize");
        let back: MachineConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, mc);
    }
}

#[test]
fn stack_configs_round_trip_through_json() {
    for sc in [
        StackConfig::commodity(),
        StackConfig::interwoven(),
        StackConfig::nautilus(),
    ] {
        let json = serde_json::to_string(&sc).expect("serialize");
        let back: StackConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, sc);
    }
}

#[test]
fn cycles_serialize_as_plain_integers() {
    let json = serde_json::to_string(&Cycles(1234)).unwrap();
    assert_eq!(json, "1234");
    let back: Cycles = serde_json::from_str("777").unwrap();
    assert_eq!(back, Cycles(777));
}
