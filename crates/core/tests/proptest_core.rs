//! Property tests for the substrate: event-queue ordering, statistics
//! estimators against reference implementations, RNG distribution sanity.

use interweave_core::stats::{geomean, Histogram, Summary};
use interweave_core::{Cycles, EventQueue};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Popping yields events in nondecreasing time order, and FIFO within a
    /// time — exactly the order of a stable sort by time.
    #[test]
    fn event_queue_matches_stable_sort(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Cycles(t), i);
        }
        let mut reference: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        reference.sort_by_key(|&(t, _)| t); // stable: FIFO within ties
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.get(), i));
        }
        prop_assert_eq!(popped, reference);
    }

    /// `now` never goes backwards across any pop sequence.
    #[test]
    fn event_queue_time_is_monotone(times in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(Cycles(t), ());
        }
        let mut last = Cycles::ZERO;
        while let Some((t, ())) = q.pop() {
            prop_assert!(t >= last);
            prop_assert_eq!(q.now(), t);
            last = t;
        }
    }

    /// Welford summary agrees with the naive two-pass mean and variance.
    #[test]
    fn summary_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut s = Summary::new();
        for &x in &xs {
            s.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() <= 1e-4 * var.abs().max(1.0));
        prop_assert_eq!(s.count(), xs.len() as u64);
        prop_assert!(s.min() <= s.mean() + 1e-9 && s.mean() <= s.max() + 1e-9);
    }

    /// Geomean lies between min and max, and is exact for pairs.
    #[test]
    fn geomean_bounds(xs in prop::collection::vec(0.01f64..1e4, 1..64)) {
        let g = geomean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(0.0, f64::max);
        prop_assert!(g >= lo * (1.0 - 1e-9) && g <= hi * (1.0 + 1e-9), "g={g} lo={lo} hi={hi}");
    }

    /// Histogram percentiles are monotone in p and bracket the data range.
    #[test]
    fn histogram_percentiles_monotone(xs in prop::collection::vec(0.0f64..100.0, 1..200)) {
        let mut h = Histogram::new(1.0, 128);
        for &x in &xs {
            h.add(x);
        }
        let mut last = 0.0;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
            let v = h.percentile(p).unwrap();
            prop_assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    }

    /// SplitMix64 `below` is within bounds and `range` is inclusive.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..1000, lo in 0u64..100, span in 0u64..100) {
        let mut r = interweave_core::SplitMix64::new(seed);
        for _ in 0..100 {
            prop_assert!(r.below(bound) < bound);
            let v = r.range(lo, lo + span);
            prop_assert!(v >= lo && v <= lo + span);
            let f = r.f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }
}
